// Controller-wide metrics (the observability layer's counting half). The
// paper's evaluation (§VII) is entirely about measured overhead; this module
// makes those measurements first-class inside the controller instead of
// something only external benches can observe.
//
// Design (hot-path first):
//  * The process has one Registry (Registry::global()). Metrics are
//    registered once by name and handed back as tiny value-type handles
//    (Counter / Gauge / Histogram) holding a slot index.
//  * Recording writes to a fixed-size per-thread shard: one relaxed
//    atomic add into the thread's own cache lines. No locks, no
//    cross-thread contention, nothing shared on the write path — a metric
//    that is never read costs one TLS load and one relaxed add.
//  * Reading (Registry::snapshot()) merges every shard plus the retired
//    totals of exited threads under the registry mutex — merge-on-read, so
//    all cost lands on the (rare) reader.
//  * Shards are pooled, never freed: when a thread exits its shard's
//    totals are folded into the retired accumulator and the shard returns
//    to a free list for the next thread. A straggling write from a dying
//    thread (after its TLS owner ran) therefore lands in still-live memory
//    and is merged by a later snapshot instead of dangling.
//  * Gauges are delta-based (add/sub, merged by signed sum) so increments
//    and decrements may happen on different threads (e.g. a queue depth
//    where producers and consumers are distinct threads).
//  * Histograms use power-of-two nanosecond buckets: bucket b holds values
//    in [2^(b-1), 2^b); recording is two relaxed adds (bucket + sum).
//
// Recording can be globally disabled (setEnabled(false)) — used by the
// benches to price the instrumentation itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sdnshield::obs {

/// Histogram bucket count. Bucket 0 holds non-positive values, bucket b
/// (1..30) holds durations in [2^(b-1), 2^b) ns, the last bucket is the
/// overflow bucket (>= 2^30 ns ~= 1.07 s).
inline constexpr std::size_t kHistogramBuckets = 32;

/// Total metric slots the registry can hand out (counters and gauges take
/// one slot, histograms kHistogramBuckets + 1). Fixed so per-thread shards
/// never grow — growth would race with merge-on-read.
inline constexpr std::size_t kMaxSlots = 8192;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< Sum of recorded values (ns).
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound (inclusive, in ns) of the bucket holding the p-quantile
  /// (0 < p <= 1). Zero when the histogram is empty.
  std::uint64_t percentileNs(double p) const;
  /// Inclusive upper bound of bucket @p index in nanoseconds.
  static std::uint64_t bucketUpperNs(std::size_t index);
};

/// A point-in-time merged view of every registered metric.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* findCounter(std::string_view name) const;
  const GaugeSnapshot* findGauge(std::string_view name) const;
  const HistogramSnapshot* findHistogram(std::string_view name) const;
};

class Registry;

/// Monotonic counter handle. Cheap to copy; all handles with the same name
/// address the same slot of the global registry.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  void increment() const { add(1); }
  /// Merged value across all threads (reader-path cost; not for hot code).
  std::uint64_t value() const;

 private:
  friend class Registry;
  explicit Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// Delta gauge handle: add()/sub() may run on different threads; the merged
/// value is the signed sum of all deltas.
class Gauge {
 public:
  Gauge() = default;
  void add(std::int64_t n = 1) const;
  void sub(std::int64_t n = 1) const { add(-n); }
  std::int64_t value() const;

 private:
  friend class Registry;
  explicit Gauge(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// Fixed-bucket latency histogram handle (power-of-two ns buckets).
class Histogram {
 public:
  Histogram() = default;
  void record(std::int64_t ns) const;

  /// Bucket index a value lands in (exposed for tests).
  static std::size_t bucketFor(std::int64_t ns);

 private:
  friend class Registry;
  explicit Histogram(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;  ///< Base slot; sum lives at base+buckets.
};

/// The process-wide metric registry. Only the global() instance exists —
/// handles carry just a slot index, and every record lands in the calling
/// thread's shard of the global registry.
class Registry {
 public:
  static Registry& global();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registration is idempotent per name; a name registered under a
  /// different kind throws std::logic_error, as does exhausting kMaxSlots.
  /// Registration takes the registry mutex — do it once at startup (or via
  /// function-local static handles), not per record.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Merge-on-read: folds every shard and the totals of exited threads
  /// into one consistent-enough view (individual slots are read with
  /// relaxed loads; cross-slot skew is bounded by in-flight writes).
  Snapshot snapshot() const;

  /// Globally enables/disables recording (relaxed flag checked on every
  /// write path). Used by benches to price the instrumentation itself.
  static void setEnabled(bool enabled);
  static bool enabled();

  /// Number of registered metrics (tests).
  std::size_t metricCount() const;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
  };

 private:
  friend std::atomic<std::uint64_t>* obsLocalSlotBase();
  friend class Counter;
  friend class Gauge;

  Registry() = default;

  struct MetricInfo {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t slot = 0;
  };

  std::uint32_t registerMetric(std::string_view name, MetricKind kind,
                               std::uint32_t slotSpan);
  /// Claims a (pooled or fresh) shard for the calling thread.
  std::shared_ptr<Shard> claimShard();
  /// Folds @p shard into retired_ and returns it to the free pool.
  void retireShard(const std::shared_ptr<Shard>& shard);
  /// Merged value of one slot across retired totals and all shards.
  std::uint64_t mergedSlot(std::uint32_t slot) const;

  mutable std::mutex mutex_;
  std::vector<MetricInfo> metrics_;
  std::uint32_t nextSlot_ = 0;
  std::vector<std::shared_ptr<Shard>> active_;
  std::vector<std::shared_ptr<Shard>> free_;
  std::array<std::uint64_t, kMaxSlots> retired_{};
};

// --- inline hot paths -------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_metricsEnabled;
}  // namespace detail

/// First slot of the calling thread's shard (registering the shard on first
/// use). Out-of-line: the TLS bookkeeping is cold; callers cache the result
/// through a function-local thread_local below.
std::atomic<std::uint64_t>* obsLocalSlotBase();

/// Canonical per-shard metric name: "shard.s<index>.<leaf>". The shard
/// runtime registers one counter per (shard, leaf) under this scheme, so a
/// snapshot merges naturally: global totals stay in unprefixed names while
/// the per-loop breakdown is greppable as "shard.s*".
std::string shardMetricName(std::string_view leaf, std::size_t index);

namespace detail {
inline std::atomic<std::uint64_t>* slotPtr(std::uint32_t slot) {
  if (slot == UINT32_MAX ||
      !g_metricsEnabled.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  thread_local std::atomic<std::uint64_t>* base = obsLocalSlotBase();
  return base + slot;
}

/// Single-writer accumulate. A shard belongs to exactly one thread, so a
/// plain load+store pair replaces the far costlier atomic RMW (`lock xadd`)
/// while the atomic type keeps concurrent snapshot reads race-free. The one
/// exception — a straggler write racing a new owner after TLS teardown
/// returned the shard to the pool — can lose that single update, which is
/// an accepted trade for a lock-free sub-nanosecond record path.
inline void bump(std::atomic<std::uint64_t>* slot, std::uint64_t n) {
  slot->store(slot->load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
}
}  // namespace detail

inline void Counter::add(std::uint64_t n) const {
  if (auto* slot = detail::slotPtr(slot_)) detail::bump(slot, n);
}

inline void Gauge::add(std::int64_t n) const {
  if (auto* slot = detail::slotPtr(slot_)) {
    detail::bump(slot, static_cast<std::uint64_t>(n));
  }
}

inline std::size_t Histogram::bucketFor(std::int64_t ns) {
  if (ns <= 0) return 0;
  std::uint64_t value = static_cast<std::uint64_t>(ns);
  std::size_t width = 64 - static_cast<std::size_t>(__builtin_clzll(value));
  return width < kHistogramBuckets - 1 ? width : kHistogramBuckets - 1;
}

inline void Histogram::record(std::int64_t ns) const {
  if (auto* base = detail::slotPtr(slot_)) {
    detail::bump(base + bucketFor(ns), 1);
    detail::bump(base + kHistogramBuckets,
                 ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }
}

}  // namespace sdnshield::obs
