#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace sdnshield::obs {

namespace {

std::string formatDuration(std::int64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

std::string SpanSnapshot::toString() const {
  return name + "(" + formatDuration(durationNs) + ")";
}

Tracer& Tracer::global() {
  // Leaked like the metric registry: spans may be recorded while other
  // statics destruct.
  static Tracer* instance = new Tracer();
  return *instance;
}

std::int64_t Tracer::nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Ring& Tracer::localRing() {
  struct Owner {
    Tracer& tracer;
    std::shared_ptr<Ring> ring;
    explicit Owner(Tracer& tracer) : tracer(tracer) {
      std::lock_guard lock(tracer.mutex_);
      if (!tracer.free_.empty()) {
        ring = std::move(tracer.free_.back());
        tracer.free_.pop_back();
      } else {
        ring = std::make_shared<Ring>();
      }
      tracer.active_.push_back(ring);
    }
    ~Owner() {
      std::lock_guard lock(tracer.mutex_);
      auto it = std::find(tracer.active_.begin(), tracer.active_.end(), ring);
      if (it != tracer.active_.end()) tracer.active_.erase(it);
      // Pool the ring with its spans intact: a post-mortem dump taken after
      // the thread exited still sees its trailing spans.
      tracer.free_.push_back(ring);
    }
  };
  thread_local Owner owner(*this);
  return *owner.ring;
}

void Tracer::record(const char* name, std::int64_t startNs,
                    std::int64_t durationNs) {
  Ring& ring = localRing();
  std::uint32_t index =
      ring.next.fetch_add(1, std::memory_order_relaxed) % kSpanRingSize;
  Slot& slot = ring.slots[index];
  std::uint64_t seq = nextSeq_.fetch_add(1, std::memory_order_relaxed);
  // Publish seq last; a reader pairing a fresh seq with a stale name can
  // only happen on the wrap boundary and is tolerated (post-mortem data).
  slot.name.store(name, std::memory_order_relaxed);
  slot.startNs.store(startNs, std::memory_order_relaxed);
  slot.durationNs.store(durationNs, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<SpanSnapshot> Tracer::recentSpans(std::size_t maxSpans) const {
  std::vector<SpanSnapshot> spans;
  {
    std::lock_guard lock(mutex_);
    auto collect = [&spans](const std::vector<std::shared_ptr<Ring>>& rings) {
      for (const auto& ring : rings) {
        for (const Slot& slot : ring->slots) {
          std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
          const char* name = slot.name.load(std::memory_order_relaxed);
          if (seq == 0 || name == nullptr) continue;
          SpanSnapshot snap;
          snap.name = name;
          snap.startNs = slot.startNs.load(std::memory_order_relaxed);
          snap.durationNs = slot.durationNs.load(std::memory_order_relaxed);
          snap.seq = seq;
          spans.push_back(std::move(snap));
        }
      }
    };
    collect(active_);
    collect(free_);
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanSnapshot& a, const SpanSnapshot& b) {
              return a.seq < b.seq;
            });
  if (spans.size() > maxSpans) {
    spans.erase(spans.begin(),
                spans.end() - static_cast<std::ptrdiff_t>(maxSpans));
  }
  return spans;
}

std::string Tracer::formatTrail(const std::vector<SpanSnapshot>& spans,
                                std::size_t maxSpans) {
  std::string out;
  std::size_t start = spans.size() > maxSpans ? spans.size() - maxSpans : 0;
  for (std::size_t i = start; i < spans.size(); ++i) {
    if (!out.empty()) out += " > ";
    out += spans[i].toString();
  }
  return out;
}

}  // namespace sdnshield::obs
