#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace sdnshield::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                          sizeof(buf) - 1));
  }
}

/// JSON string escaping for metric names (conservative: names are
/// dot-separated identifiers, but stay correct for anything).
std::string escaped(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::size_t lastNonZeroBucket(const HistogramSnapshot& hist) {
  std::size_t last = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (hist.buckets[b] != 0) last = b;
  }
  return last;
}

}  // namespace

std::string renderText(const Snapshot& snapshot) {
  std::string out;
  for (const CounterSnapshot& c : snapshot.counters) {
    appendf(out, "counter %-32s %" PRIu64 "\n", c.name.c_str(), c.value);
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    appendf(out, "gauge   %-32s %" PRId64 "\n", g.name.c_str(), g.value);
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    appendf(out,
            "hist    %-32s count=%" PRIu64 " mean=%.0fns p50<=%" PRIu64
            "ns p99<=%" PRIu64 "ns\n",
            h.name.c_str(), h.count, h.mean(), h.percentileNs(0.5),
            h.percentileNs(0.99));
  }
  return out;
}

std::string renderJson(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& c : snapshot.counters) {
    appendf(out, "%s\"%s\":%" PRIu64, first ? "" : ",",
            escaped(c.name).c_str(), c.value);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& g : snapshot.gauges) {
    appendf(out, "%s\"%s\":%" PRId64, first ? "" : ",",
            escaped(g.name).c_str(), g.value);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    appendf(out,
            "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"mean\":%.1f,\"p50_ns\":%" PRIu64 ",\"p90_ns\":%" PRIu64
            ",\"p99_ns\":%" PRIu64 ",\"buckets\":[",
            first ? "" : ",", escaped(h.name).c_str(), h.count, h.sum,
            h.mean(), h.percentileNs(0.5), h.percentileNs(0.9),
            h.percentileNs(0.99));
    first = false;
    std::size_t last = lastNonZeroBucket(h);
    for (std::size_t b = 0; b <= last; ++b) {
      appendf(out, "%s%" PRIu64, b == 0 ? "" : ",", h.buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace sdnshield::obs
