// Span-style tracing (the observability layer's narrative half): named
// timed sections recorded into per-thread ring buffers, cheap enough to
// leave on in production and dumped post-mortem — e.g. the last spans
// before a quarantine land in the audit log's kSupervision record.
//
// Recording model:
//  * OBS_SPAN("ksd.call") opens an RAII span; destruction records
//    {name, start, duration, thread, seq} into the calling thread's ring.
//  * Rings are fixed-size; each slot's fields are relaxed atomics so a
//    concurrent reader (recentSpans) never races the writer. A torn slot
//    (rare: reader overlapping the writer on the exact wrap boundary) can
//    mix fields of two spans — acceptable for post-mortem trails, and the
//    seq field orders everything that wasn't torn.
//  * Span names must be string literals (static storage duration): only
//    the pointer is stored.
//
// Like metric shards, rings are pooled and never freed, so a straggling
// write during thread teardown stays memory-safe.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sdnshield::obs {

/// Spans kept per thread ring.
inline constexpr std::size_t kSpanRingSize = 256;

/// A span copied out of a ring by Tracer::recentSpans().
struct SpanSnapshot {
  std::string name;
  std::int64_t startNs = 0;     ///< steady_clock ns at open.
  std::int64_t durationNs = 0;  ///< Close - open.
  std::uint64_t seq = 0;        ///< Global record order (monotonic).

  std::string toString() const;
};

class Tracer {
 public:
  static Tracer& global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records a completed span into the calling thread's ring. @p name must
  /// have static storage duration (string literal).
  void record(const char* name, std::int64_t startNs, std::int64_t durationNs);

  /// The most recent spans across every thread, oldest first, capped at
  /// @p maxSpans. Safe to call from any thread at any time.
  std::vector<SpanSnapshot> recentSpans(std::size_t maxSpans = 64) const;

  /// One-line rendering of a span trail ("name(12.3us) > name(4ms)"),
  /// newest last. Empty string when @p spans is empty.
  static std::string formatTrail(const std::vector<SpanSnapshot>& spans,
                                 std::size_t maxSpans = 16);

  /// Current steady-clock time in nanoseconds (the span clock).
  static std::int64_t nowNs();

  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int64_t> startNs{0};
    std::atomic<std::int64_t> durationNs{0};
    std::atomic<std::uint64_t> seq{0};
  };
  struct Ring {
    std::array<Slot, kSpanRingSize> slots;
    std::atomic<std::uint32_t> next{0};
  };

 private:
  Tracer() = default;

  Ring& localRing();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Ring>> active_;
  std::vector<std::shared_ptr<Ring>> free_;
  std::atomic<std::uint64_t> nextSeq_{1};
};

/// RAII span: records on destruction. Use via OBS_SPAN.
class Span {
 public:
  explicit Span(const char* name) : name_(name), startNs_(Tracer::nowNs()) {}
  ~Span() {
    Tracer::global().record(name_, startNs_, Tracer::nowNs() - startNs_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t startNs_;
};

#define SDNSHIELD_OBS_CONCAT2(a, b) a##b
#define SDNSHIELD_OBS_CONCAT(a, b) SDNSHIELD_OBS_CONCAT2(a, b)
/// Opens a span covering the enclosing scope. @p name: string literal.
#define OBS_SPAN(name) \
  ::sdnshield::obs::Span SDNSHIELD_OBS_CONCAT(obsSpan_, __LINE__)(name)

}  // namespace sdnshield::obs
