#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace sdnshield::obs {

namespace detail {
std::atomic<bool> g_metricsEnabled{true};
}  // namespace detail

namespace {

std::string kindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

// The friend declared in the header; defined here so the TLS bookkeeping
// stays out of the inlined record path.
std::atomic<std::uint64_t>* obsLocalSlotBase() {
  struct Owner {
    std::shared_ptr<Registry::Shard> shard;
    Owner() : shard(Registry::global().claimShard()) {}
    ~Owner() { Registry::global().retireShard(shard); }
  };
  thread_local Owner owner;
  return owner.shard->slots.data();
}

Registry& Registry::global() {
  // Leaked on purpose: shards, spans and audit sinks may record during
  // static destruction of other objects; a destructed registry would
  // invalidate the cached slot pointers they hold.
  static Registry* instance = new Registry();
  return *instance;
}

std::uint32_t Registry::registerMetric(std::string_view name, MetricKind kind,
                                       std::uint32_t slotSpan) {
  std::lock_guard lock(mutex_);
  for (const MetricInfo& info : metrics_) {
    if (info.name == name) {
      if (info.kind != kind) {
        throw std::logic_error("obs metric '" + std::string(name) +
                               "' already registered as " +
                               kindName(info.kind));
      }
      return info.slot;
    }
  }
  if (nextSlot_ + slotSpan > kMaxSlots) {
    throw std::logic_error("obs registry slot capacity exhausted");
  }
  std::uint32_t slot = nextSlot_;
  nextSlot_ += slotSpan;
  metrics_.push_back(MetricInfo{std::string(name), kind, slot});
  return slot;
}

Counter Registry::counter(std::string_view name) {
  return Counter(registerMetric(name, MetricKind::kCounter, 1));
}

Gauge Registry::gauge(std::string_view name) {
  return Gauge(registerMetric(name, MetricKind::kGauge, 1));
}

Histogram Registry::histogram(std::string_view name) {
  return Histogram(registerMetric(
      name, MetricKind::kHistogram,
      static_cast<std::uint32_t>(kHistogramBuckets) + 1));
}

std::shared_ptr<Registry::Shard> Registry::claimShard() {
  std::lock_guard lock(mutex_);
  std::shared_ptr<Shard> shard;
  if (!free_.empty()) {
    shard = std::move(free_.back());
    free_.pop_back();
  } else {
    shard = std::make_shared<Shard>();
  }
  active_.push_back(shard);
  return shard;
}

void Registry::retireShard(const std::shared_ptr<Shard>& shard) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    // exchange(0) captures any write that landed before the fold; a
    // straggler arriving later stays in the pooled shard and is merged by
    // the next snapshot (shards in free_ are summed too).
    retired_[i] += shard->slots[i].exchange(0, std::memory_order_relaxed);
  }
  auto it = std::find(active_.begin(), active_.end(), shard);
  if (it != active_.end()) active_.erase(it);
  free_.push_back(shard);
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::array<std::uint64_t, kMaxSlots> merged = retired_;
  auto fold = [&merged](const std::vector<std::shared_ptr<Shard>>& shards) {
    for (const auto& shard : shards) {
      for (std::size_t i = 0; i < kMaxSlots; ++i) {
        merged[i] += shard->slots[i].load(std::memory_order_relaxed);
      }
    }
  };
  fold(active_);
  fold(free_);

  Snapshot out;
  for (const MetricInfo& info : metrics_) {
    switch (info.kind) {
      case MetricKind::kCounter:
        out.counters.push_back(CounterSnapshot{info.name, merged[info.slot]});
        break;
      case MetricKind::kGauge:
        out.gauges.push_back(GaugeSnapshot{
            info.name, static_cast<std::int64_t>(merged[info.slot])});
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot hist;
        hist.name = info.name;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          hist.buckets[b] = merged[info.slot + b];
          hist.count += hist.buckets[b];
        }
        hist.sum = merged[info.slot + kHistogramBuckets];
        out.histograms.push_back(std::move(hist));
        break;
      }
    }
  }
  return out;
}

void Registry::setEnabled(bool enabled) {
  detail::g_metricsEnabled.store(enabled, std::memory_order_relaxed);
}

bool Registry::enabled() {
  return detail::g_metricsEnabled.load(std::memory_order_relaxed);
}

std::size_t Registry::metricCount() const {
  std::lock_guard lock(mutex_);
  return metrics_.size();
}

std::string shardMetricName(std::string_view leaf, std::size_t index) {
  std::string name = "shard.s";
  name += std::to_string(index);
  name += '.';
  name += leaf;
  return name;
}

// --- handle reader paths ----------------------------------------------------

std::uint64_t Registry::mergedSlot(std::uint32_t slot) const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = retired_[slot];
  for (const auto& shard : active_) {
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  for (const auto& shard : free_) {
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Counter::value() const {
  return slot_ == UINT32_MAX ? 0 : Registry::global().mergedSlot(slot_);
}

std::int64_t Gauge::value() const {
  return slot_ == UINT32_MAX
             ? 0
             : static_cast<std::int64_t>(Registry::global().mergedSlot(slot_));
}

// --- snapshot helpers -------------------------------------------------------

std::uint64_t HistogramSnapshot::bucketUpperNs(std::size_t index) {
  if (index == 0) return 0;
  if (index >= kHistogramBuckets - 1) return UINT64_MAX;
  return (1ULL << index) - 1;
}

std::uint64_t HistogramSnapshot::percentileNs(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Ceiling rank: the p-quantile is the smallest value with at least
  // ceil(p * count) observations at or below it (truncation would report
  // p99 of 4 samples as the 3rd, not the 4th).
  std::uint64_t rank =
      static_cast<std::uint64_t>(p * static_cast<double>(count));
  if (static_cast<double>(rank) < p * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return bucketUpperNs(b);
  }
  return bucketUpperNs(kHistogramBuckets - 1);
}

const CounterSnapshot* Snapshot::findCounter(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* Snapshot::findGauge(std::string_view name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::findHistogram(std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace sdnshield::obs
