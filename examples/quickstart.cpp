// Quickstart: the full SDNShield workflow in one file.
//
//  1. an app developer ships a permission manifest with the app;
//  2. the administrator writes local security policies (stub values,
//     mutual exclusions, boundaries);
//  3. the reconciliation engine merges the two and reports violations;
//  4. the app is loaded into the SDNShield runtime under the reconciled
//     permissions — every API call it makes is mediated.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/l2_learning.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/lang/printer.h"
#include "core/reconcile/reconciler.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

using namespace sdnshield;

int main() {
  // --- 1. the app and its requested permissions --------------------------
  auto app = std::make_shared<apps::L2LearningSwitch>();
  std::printf("== App '%s' requests ==\n%s\n", app->name().c_str(),
              app->requestedManifest().c_str());
  lang::PermissionManifest manifest =
      lang::parseManifest(app->requestedManifest());

  // --- 2. the administrator's local security policy -----------------------
  const char* policyText =
      "ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }\n"
      "LET l2Bound = {\n"
      "PERM pkt_in_event\n"
      "PERM send_pkt_out LIMITING FROM_PKT_IN\n"
      "PERM insert_flow LIMITING ACTION FORWARD AND MAX_PRIORITY 100\n"
      "}\n"
      "LET appPerm = APP l2_learning\n"
      "ASSERT appPerm <= l2Bound\n";
  std::printf("== Administrator policy ==\n%s\n", policyText);

  // --- 3. reconciliation ---------------------------------------------------
  reconcile::Reconciler reconciler(lang::parsePolicy(policyText));
  reconcile::ReconcileResult result = reconciler.reconcile(manifest);
  for (const auto& violation : result.violations) {
    std::printf("violation: %s\n", violation.toString().c_str());
  }
  std::printf("== Reconciled permissions ==\n%s\n",
              lang::formatPermissions(result.finalPermissions).c_str());

  // --- 4. deploy under SDNShield ------------------------------------------
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(2);
  // Every transport (sim, wire, tcp) registers through the one seam,
  // Controller::attachSwitch(conn, ConnectionInfo); the descriptor is
  // queryable afterwards. A real deployment would show transport "tcp"
  // and the peer's address here (see `sdnshield serve`).
  if (auto info = controller.connectionInfo(1)) {
    std::printf("switch 1 attached via transport '%s' (peer %s)\n",
                info->transport.c_str(), info->peer.c_str());
  }
  iso::ShieldRuntime shield(controller);
  shield.loadApp(app, result.finalPermissions);

  // Drive a little traffic: h1 -> h2 across the two switches.
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h2 = network.hostByIp(of::Ipv4Address(10, 0, 0, 2));
  h1->send(of::Packet::makeTcp(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 40000,
                               80, of::tcpflags::kSyn));
  h2->waitForPackets(1, std::chrono::milliseconds(1000));
  h2->send(of::Packet::makeTcp(h2->mac(), h1->mac(), h2->ip(), h1->ip(), 80,
                               40000, of::tcpflags::kSyn | of::tcpflags::kAck));
  h1->waitForPackets(1, std::chrono::milliseconds(1000));

  std::printf("h2 received %zu packet(s); app installed %llu rule(s)\n",
              h2->receivedCount(),
              static_cast<unsigned long long>(app->rulesInstalled()));
  std::printf("audit log recorded %llu mediated call(s), %llu denied\n",
              static_cast<unsigned long long>(
                  controller.audit().totalRecorded()),
              static_cast<unsigned long long>(controller.audit().deniedCount()));
  return 0;
}
