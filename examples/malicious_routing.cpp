// Scenario 2 (paper §VII): a routing app with hidden malicious logic. Under
// `insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS` it routes traffic
// perfectly well, but its stealth attacks — leaking to the outside,
// overriding the firewall's rules, establishing a dynamic-flow tunnel — are
// all rejected, and everything it does is in the audit log.
//
// Build & run:  ./build/examples/malicious_routing
#include <chrono>
#include <cstdio>

#include "apps/firewall.h"
#include "apps/routing.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

using namespace sdnshield;
using namespace std::chrono_literals;

int main() {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h3 = network.hostByIp(of::Ipv4Address(10, 0, 0, 3));

  iso::ShieldRuntime shield(controller);

  // The firewall is deployed first and blocks telnet at the chokepoint.
  auto firewall = std::make_shared<apps::FirewallApp>();
  shield.loadApp(firewall,
                 lang::parsePermissions(firewall->requestedManifest()));
  firewall->blockTcpDstPort(2, 23);

  // The (secretly malicious) routing app gets exactly Scenario 2's grant.
  auto routing = std::make_shared<apps::ShortestPathRoutingApp>();
  of::AppId routingId = shield.loadApp(
      routing, lang::parsePermissions(routing->requestedManifest()));
  std::printf("routing app loaded with:\n%s\n",
              routing->requestedManifest().c_str());

  // Benign duty: HTTP flows end to end.
  h1->send(of::Packet::makeTcp(h1->mac(), h3->mac(), h1->ip(), h3->ip(), 40000,
                               80, of::tcpflags::kSyn));
  bool delivered = h3->waitForPackets(1, 2000ms);
  std::printf("legitimate HTTP h1->h3: %s (%llu path(s) installed)\n",
              delivered ? "DELIVERED" : "lost",
              static_cast<unsigned long long>(routing->pathsInstalled()));

  // Malicious phase: the app's hidden logic strikes. We drive it through
  // the app's own context, on its own thread, as the embedded logic would.
  std::printf("\n== Hidden malicious logic fires ==\n");
  shield.container(routingId)->postAndWait([&] {
    // Class 2: leak to the outside. The app never got host_network, so the
    // reference monitor stops it ("the routing app cannot communicate with
    // the outside world").
    bool leaked = shield.referenceMonitor().netSend(
        of::Ipv4Address(203, 0, 113, 66), 4444, "stolen state");
    std::printf("  exfiltration attempt: %s\n", leaked ? "LEAKED" : "blocked");
  });

  // Class 3/4: override the firewall's drop rule. The app issues it through
  // its own mediated API; OWN_FLOWS rejects the foreign-rule shadowing.
  of::FlowMod overrideRule;
  overrideRule.match.ipProto = 6;
  overrideRule.match.tpDst = 23;
  overrideRule.priority = 200;
  overrideRule.actions.push_back(of::OutputAction{2});
  auto compiled = shield.engine().compiled(routingId);
  perm::ApiCall overrideCall =
      perm::ApiCall::insertFlow(routingId, 2, overrideRule);
  overrideCall.ownFlow = !controller.ownership().overridesForeignFlow(
      routingId, 2, overrideRule.match, overrideRule.priority);
  std::printf("  firewall override attempt: %s\n",
              compiled->check(overrideCall).allowed ? "INSTALLED" : "blocked");

  // Dynamic-flow tunnel (Class 4): header rewriting violates ACTION FORWARD.
  of::FlowMod tunnelEntry;
  tunnelEntry.match.ipProto = 6;
  tunnelEntry.match.tpDst = 23;
  tunnelEntry.priority = 250;
  of::SetFieldAction rewrite;
  rewrite.field = of::MatchField::kTpDst;
  rewrite.intValue = 80;
  tunnelEntry.actions.push_back(rewrite);
  tunnelEntry.actions.push_back(of::OutputAction{2});
  perm::ApiCall tunnelCall =
      perm::ApiCall::insertFlow(routingId, 1, tunnelEntry);
  std::printf("  dynamic-flow tunnel attempt: %s\n",
              compiled->check(tunnelCall).allowed ? "INSTALLED" : "blocked");

  // Activity logging for forensics (the paper's third protection level).
  std::printf("\naudit log: %llu calls recorded for the routing app, %llu "
              "denied overall\n",
              static_cast<unsigned long long>(
                  controller.audit().entriesFor(routingId).size()),
              static_cast<unsigned long long>(controller.audit().deniedCount()));
  return 0;
}
