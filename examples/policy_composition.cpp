// High-level policy composition with ownership-aware enforcement (paper
// §VI-C): a firewall app and a routing app author declarative policies that
// are composed and compiled into OpenFlow rules. The compiler tracks which
// apps contributed to each rule; the permission engine then checks every
// owner — rules an owner may not install are *partially denied* while the
// rest of the classifier goes in.
//
// Build & run:  ./build/examples/policy_composition
#include <cstdio>

#include "core/lang/perm_parser.h"
#include "hll/install.h"
#include "switchsim/sim_network.h"

using namespace sdnshield;

int main() {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  auto server = network.addHost(1, 2, of::MacAddress::fromUint64(0xBB),
                                of::Ipv4Address(10, 0, 0, 99));

  engine::PermissionEngine engine;
  constexpr of::AppId kFirewallApp = 7;
  constexpr of::AppId kRoutingApp = 8;
  // The routing app may only install forwarding rules — no header rewrites.
  engine.install(kFirewallApp, lang::parsePermissions("PERM insert_flow\n"));
  engine.install(kRoutingApp,
                 lang::parsePermissions(
                     "PERM insert_flow LIMITING ACTION FORWARD\n"));

  auto tcpTo = [](std::uint16_t port) {
    of::FlowMatch m;
    m.ethType = 0x0800;
    m.ipProto = 6;
    m.tpDst = port;
    return m;
  };

  // The firewall app decides which traffic classes exist; the routing app
  // supplies the treatment for each class. Web traffic is delivered as-is;
  // telnet is (sneakily) port-rewritten — which the routing app's
  // ACTION FORWARD permission does not allow.
  of::SetFieldAction rewrite;
  rewrite.field = of::MatchField::kTpDst;
  rewrite.intValue = 8080;
  hll::PolicyPtr webLane =
      hll::seq(hll::owned(kFirewallApp, hll::match(tcpTo(80))),
               hll::owned(kRoutingApp, hll::fwd(2)));
  hll::PolicyPtr telnetLane =
      hll::seq(hll::owned(kFirewallApp, hll::match(tcpTo(23))),
               hll::owned(kRoutingApp,
                          hll::seq(hll::modify(rewrite), hll::fwd(2))));
  hll::PolicyPtr composite = hll::par(webLane, telnetLane);

  std::printf("== Compiled classifier (with per-rule ownership) ==\n");
  for (const hll::CompiledRule& rule : hll::compile(composite)) {
    std::printf("  %s\n", rule.toString().c_str());
  }

  hll::InstallReport report =
      hll::installPolicy(engine, controller, 1, composite, 300);
  std::printf("\ninstalled %zu rule(s); %zu partially denied\n",
              report.installed, report.denied.size());
  for (const auto& denied : report.denied) {
    std::printf("  rule #%zu denied for app %u: %s\n", denied.ruleIndex,
                denied.owner, denied.reason.c_str());
  }

  // Traffic check: web traffic flows, rewritten side-channel does not.
  network.switchAt(1)->receivePacket(
      1, of::Packet::makeTcp(of::MacAddress::fromUint64(1), server->mac(),
                             of::Ipv4Address(10, 0, 0, 1), server->ip(), 40000,
                             80, of::tcpflags::kSyn));
  std::printf("\nweb packet delivered to server: %s\n",
              server->receivedCount() > 0 ? "yes" : "no");
  bool sawRewritten = false;
  for (const of::Packet& packet : server->received()) {
    if (packet.tcp && packet.tcp->dstPort == 8080) sawRewritten = true;
  }
  std::printf("rewritten (denied) variant observed: %s\n",
              sawRewritten ? "yes (BUG)" : "no");
  return 0;
}
