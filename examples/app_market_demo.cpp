// App-market lifecycle demo: the full live install / policy-update /
// upgrade / revoke cycle on a running controller.
//
//  1. install monitoring + firewall through the market (manifest parsed,
//     reconciled against the administrator's policy, granted, container
//     spawned) — the firewall starts blocking TCP/80;
//  2. the administrator pushes a STRICTER policy live: every installed app
//     is re-reconciled and all grants swap in one atomic permission epoch —
//     the firewall's flow-mod scope is truncated (MIN_PRIORITY 150) and its
//     next low-priority insert is denied;
//  3. l2_learning is upgraded v1 -> v2 with a wider manifest — the
//     permission diff is computed and audited;
//  4. a malicious flow-tunneler is installed and revoked mid-traffic —
//     permissions uninstalled, subscriptions removed, container sealed;
//  5. the audit trail of the whole lifecycle is printed.
//
// Build & run:  ./build/examples/app_market_demo
#include <cstdio>
#include <memory>

#include "apps/firewall.h"
#include "apps/l2_learning.h"
#include "apps/malicious/flow_tunneler.h"
#include "apps/monitoring.h"
#include "core/lang/policy_parser.h"
#include "isolation/api_proxy.h"
#include "market/app_market.h"
#include "switchsim/sim_network.h"

using namespace sdnshield;

namespace {

/// l2_learning v2: same behaviour, wider manifest (adds read_statistics) —
/// the release the market upgrades to.
class L2LearningV2 final : public ctrl::App {
 public:
  std::string name() const override { return "l2_learning"; }
  std::string requestedManifest() const override {
    return inner_->requestedManifest() + "PERM read_statistics\n";
  }
  void init(ctrl::AppContext& context) override { inner_->init(context); }

 private:
  std::shared_ptr<apps::L2LearningSwitch> inner_ =
      std::make_shared<apps::L2LearningSwitch>();
};

constexpr const char* kStubBindings =
    "LET LocalTopo = {SWITCH 1,2,3 LINK {(1,2),(2,3)}}\n"
    "LET AdminRange = {IP_DST 10.9.0.0 MASK 255.255.0.0}\n";

void printLifecycleTrail(ctrl::Controller& controller) {
  std::printf("\n== Audit trail (lifecycle + denials) ==\n");
  for (const auto& entry : controller.audit().entries()) {
    if (entry.kind == engine::AuditKind::kLifecycle ||
        (entry.kind == engine::AuditKind::kApiCall && !entry.allowed)) {
      std::printf("  %s\n", entry.toString().c_str());
    }
  }
}

}  // namespace

int main() {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);
  iso::ShieldRuntime shield(controller);

  // --- 1. install monitoring + firewall through the market ----------------
  market::AppMarket market(shield, lang::parsePolicy(kStubBindings));
  auto monitoring =
      std::make_shared<apps::MonitoringApp>(of::Ipv4Address(10, 9, 0, 1));
  auto firewall = std::make_shared<apps::FirewallApp>(/*rulePriority=*/100);

  auto monitoringId = market.installApp(monitoring);
  auto firewallId = market.installApp(firewall);
  std::printf("installed monitoring as app %llu, firewall as app %llu\n",
              static_cast<unsigned long long>(monitoringId.value()),
              static_cast<unsigned long long>(firewallId.value()));

  bool blocked = firewall->blockTcpDstPort(2, 80);
  std::printf("firewall blocks TCP/80 at switch 2: %s\n",
              blocked ? "installed" : "denied");

  // --- 2. live policy update: truncate the firewall's flow-mod scope ------
  std::string stricter = std::string(kStubBindings) +
                         "LET fwBound = {\n"
                         "PERM insert_flow LIMITING MIN_PRIORITY 150\n"
                         "PERM delete_flow\nPERM flow_event\n"
                         "}\n"
                         "LET fwPerm = APP firewall\n"
                         "ASSERT fwPerm <= fwBound\n";
  std::uint64_t epochBefore = shield.engine().epoch();
  ctrl::ApiResult updated = market.updatePolicy(stricter);
  std::printf(
      "\npolicy update: %s (permission epoch %llu -> %llu, one swap)\n",
      updated.ok() ? "applied" : updated.error().toString().c_str(),
      static_cast<unsigned long long>(epochBefore),
      static_cast<unsigned long long>(shield.engine().epoch()));
  blocked = firewall->blockTcpDstPort(2, 443);
  std::printf("firewall blocks TCP/443 at priority 100 now: %s\n",
              blocked ? "installed (unexpected)" : "DENIED (scope truncated)");

  // --- 3. upgrade l2_learning v1 -> v2 with a wider manifest ---------------
  auto l2v1 = std::make_shared<apps::L2LearningSwitch>();
  auto l2Id = market.installApp(l2v1, /*version=*/1);
  ctrl::ApiResult upgraded =
      market.upgradeApp(l2Id.value(), std::make_shared<L2LearningV2>(),
                        /*version=*/2);
  std::printf("\nupgrade l2_learning v1->v2: %s\n",
              upgraded.ok() ? "ok" : upgraded.error().toString().c_str());

  // --- 4. revoke a malicious app mid-traffic -------------------------------
  auto tunneler = std::make_shared<apps::FlowTunnelerApp>(80, 8080);
  auto tunnelId = market.installApp(tunneler);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h3 = network.hostByIp(of::Ipv4Address(10, 0, 0, 3));
  h1->send(of::Packet::makeTcp(h1->mac(), h3->mac(), h1->ip(), h3->ip(), 40000,
                               80, of::tcpflags::kSyn));
  ctrl::ApiResult revoked =
      market.revokeApp(tunnelId.value(), "tunneling around the firewall");
  std::printf("\nrevoked flow_tunneler mid-traffic: %s\n",
              revoked.ok() ? "ok" : revoked.error().toString().c_str());
  bool tunnelAfter = tunneler->establishTunnel(of::Ipv4Address(10, 0, 0, 1),
                                               of::Ipv4Address(10, 0, 0, 3));
  std::printf("tunnel attempt after revoke: %s\n",
              tunnelAfter ? "succeeded (unexpected)" : "blocked");

  // --- 5. the lifecycle record ---------------------------------------------
  std::printf("\n== Market report ==\n%s", market.report().c_str());
  printLifecycleTrail(controller);
  shield.shutdown();
  return 0;
}
