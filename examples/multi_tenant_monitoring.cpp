// Scenario 1 (paper §VII): a vulnerable monitoring app in a multi-tenant
// network. The app's manifest leaves two stubs for the administrator and
// over-requests insert_flow; reconciliation fills the stubs and truncates
// the exclusive permission. We then *compromise* the app (its web-request
// hook executes attacker code) and watch SDNShield contain every attack
// class while the legitimate reporting keeps working.
//
// Build & run:  ./build/examples/multi_tenant_monitoring
#include <cstdio>

#include "apps/monitoring.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/lang/printer.h"
#include "core/reconcile/reconciler.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

using namespace sdnshield;

int main() {
  const of::Ipv4Address kAdminCollector(10, 1, 0, 10);
  const of::Ipv4Address kAttackerServer(203, 0, 113, 66);

  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);

  auto app = std::make_shared<apps::MonitoringApp>(kAdminCollector);
  std::printf("== Manifest shipped with the app ==\n%s\n",
              app->requestedManifest().c_str());

  // The administrator supplies the Scenario-1 policy: stub values plus the
  // network-access / insert-flow mutual exclusion.
  reconcile::Reconciler reconciler(lang::parsePolicy(
      "LET LocalTopo = {SWITCH 1,2,3 LINK {(1,2),(2,3)}}\n"
      "LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}\n"
      "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n"));
  auto result =
      reconciler.reconcile(lang::parseManifest(app->requestedManifest()));
  for (const auto& violation : result.violations) {
    std::printf("reconciliation: %s\n", violation.toString().c_str());
  }
  std::printf("\n== Final permissions ==\n%s\n",
              lang::formatPermissions(result.finalPermissions).c_str());

  iso::ShieldRuntime shield(controller);
  of::AppId id = shield.loadApp(app, result.finalPermissions);

  // Legitimate behaviour still works: report to the admin collector.
  bool reported = false;
  shield.container(id)->postAndWait(
      [&] { reported = app->collectAndReport(); });
  std::printf("legitimate report to %s: %s\n",
              kAdminCollector.toString().c_str(),
              reported ? "DELIVERED" : "blocked");

  // Now the attacker exploits the app's web vulnerability: arbitrary code
  // runs with the app's privileges. Each attempted attack class is blocked.
  std::printf("\n== Compromise: attacker payload runs inside the app ==\n");
  shield.container(id)->postAndWait([&] {
    app->onWebRequest([&](ctrl::AppContext& ctx) {
      // Class 2: exfiltrate the topology to the attacker's server.
      bool leaked = ctx.host().netSend(kAttackerServer, 4444, "stolen topo");
      std::printf("  exfiltration to %s: %s\n",
                  kAttackerServer.toString().c_str(),
                  leaked ? "LEAKED" : "blocked");
      // Class 3: insert a blackhole rule.
      of::FlowMod blackhole;
      blackhole.priority = 200;
      blackhole.actions.push_back(of::DropAction{});
      bool inserted = ctx.api().insertFlow(2, blackhole).ok();
      std::printf("  blackhole rule insertion: %s\n",
                  inserted ? "INSTALLED" : "blocked");
      // Class 1: inject a packet into the data plane.
      of::PacketOut inject;
      inject.dpid = 1;
      inject.packet = of::Packet::makeTcp(
          of::MacAddress::fromUint64(0xEE), of::MacAddress::fromUint64(1),
          of::Ipv4Address(10, 0, 0, 99), of::Ipv4Address(10, 0, 0, 1), 1, 80,
          of::tcpflags::kRst);
      inject.actions.push_back(of::OutputAction{1});
      bool sent = ctx.api().sendPacketOut(inject).ok();
      std::printf("  data-plane packet injection: %s\n",
                  sent ? "INJECTED" : "blocked");
    });
  });

  std::printf("\n== Forensics: audit trail of the compromised app ==\n");
  for (const auto& entry : controller.audit().entriesFor(id)) {
    std::printf("  %s\n", entry.toString().c_str());
  }
  return 0;
}
