// Abstract topology demo (paper §IV topology filters, §VI-B.1): a tenant app
// granted `visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH` sees the
// whole physical network as one big switch. Its flow rules are translated
// on the fly into per-hop physical rules along shortest paths, and its
// statistics reads aggregate the member switches.
//
// Build & run:  ./build/examples/virtual_big_switch
#include <cstdio>

#include "controller/api.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

using namespace sdnshield;

namespace {

class TenantApp final : public ctrl::App {
 public:
  std::string name() const override { return "tenant"; }
  std::string requestedManifest() const override {
    return "APP tenant\n"
           "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH "
           "LINK EXTERNAL_LINKS\n"
           "PERM insert_flow\n"
           "PERM read_statistics\n";
  }
  void init(ctrl::AppContext& context) override { context_ = &context; }
  ctrl::AppContext& context() { return *context_; }

 private:
  ctrl::AppContext* context_ = nullptr;
};

}  // namespace

int main() {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(4);  // s1 - s2 - s3 - s4, one host each.

  iso::ShieldRuntime shield(controller);
  auto tenant = std::make_shared<TenantApp>();
  shield.loadApp(tenant, lang::parsePermissions(tenant->requestedManifest()));

  // What the tenant sees: one switch.
  auto view = tenant->context().api().readTopology();
  std::printf("physical network : %s\n",
              controller.kernelReadTopology().toString().c_str());
  std::printf("tenant's view    : %s\n", view.value().toString().c_str());
  for (const net::Host& host : view.value().hosts()) {
    std::printf("  host %s at big-switch port %u\n", host.ip.toString().c_str(),
                host.port);
  }

  // The tenant installs one rule on the big switch: traffic to host 4.
  auto dst = view.value().hostByIp(of::Ipv4Address(10, 0, 0, 4));
  of::FlowMod vmod;
  vmod.match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
  vmod.match.ipDst = of::MaskedIpv4{dst->ip};
  vmod.priority = 40;
  vmod.actions.push_back(of::OutputAction{dst->port});
  bool ok = tenant->context().api().insertFlow(iso::kVirtualDpid, vmod).ok();
  std::printf("\nvirtual rule installed: %s\n", ok ? "yes" : "no");
  for (of::DatapathId dpid : controller.switchIds()) {
    auto flows = controller.kernelReadFlowTable(dpid);
    std::printf("  s%llu realises %zu physical rule(s)\n",
                static_cast<unsigned long long>(dpid), flows.value().size());
    for (const of::FlowEntry& entry : flows.value()) {
      std::printf("    %s\n", entry.toString().c_str());
    }
  }

  // Traffic actually flows along the translated rules.
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h4 = network.hostByIp(of::Ipv4Address(10, 0, 0, 4));
  h1->send(of::Packet::makeTcp(h1->mac(), h4->mac(), h1->ip(), h4->ip(), 40000,
                               80, of::tcpflags::kSyn));
  std::printf("\nh1 -> h4 across the big switch: %s\n",
              h4->waitForPackets(1, std::chrono::milliseconds(1000))
                  ? "DELIVERED"
                  : "lost");

  // Aggregated statistics for the virtual switch.
  of::StatsRequest request;
  request.level = of::StatsLevel::kSwitch;
  request.dpid = iso::kVirtualDpid;
  auto stats = tenant->context().api().readStatistics(request);
  std::printf("big-switch stats: %zu active flows, %llu lookups\n",
              stats.value().switchStats.activeFlows,
              static_cast<unsigned long long>(
                  stats.value().switchStats.lookupCount));
  return 0;
}
