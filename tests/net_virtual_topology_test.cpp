#include "net/virtual_topology.h"

#include <gtest/gtest.h>

namespace sdnshield::net {
namespace {

/// s1 -(2,3)- s2 -(2,3)- s3 with hosts on port 1 of s1 and s3.
Topology edgeHostsTopology() {
  Topology topo;
  topo.addSwitch(1);
  topo.addSwitch(2);
  topo.addSwitch(3);
  topo.addLink(1, 2, 2, 3);
  topo.addLink(2, 2, 3, 3);
  topo.attachHost(Host{of::MacAddress::fromUint64(0xA1),
                       of::Ipv4Address(10, 0, 0, 1), 1, 1});
  topo.attachHost(Host{of::MacAddress::fromUint64(0xA3),
                       of::Ipv4Address(10, 0, 0, 3), 3, 1});
  return topo;
}

TEST(VirtualTopology, SingleBigSwitchExposesHostPortsOnly) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  const VirtualSwitch& vsw = vtopo.virtualSwitch();
  EXPECT_EQ(vsw.vdpid, 99u);
  EXPECT_EQ(vsw.members.size(), 3u);
  ASSERT_EQ(vsw.ports.size(), 2u);  // Two host-facing endpoints.
  EXPECT_TRUE(vtopo.virtualPortFor(LinkEnd{1, 1}).has_value());
  EXPECT_TRUE(vtopo.virtualPortFor(LinkEnd{3, 1}).has_value());
  EXPECT_FALSE(vtopo.virtualPortFor(LinkEnd{1, 2}).has_value());  // Internal.
}

TEST(VirtualTopology, AbstractViewIsOneSwitchWithRemappedHosts) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  Topology view = vtopo.abstractView();
  EXPECT_EQ(view.switchCount(), 1u);
  EXPECT_TRUE(view.hasSwitch(99));
  EXPECT_EQ(view.links().size(), 0u);
  ASSERT_EQ(view.hosts().size(), 2u);
  for (const Host& host : view.hosts()) EXPECT_EQ(host.dpid, 99u);
}

TEST(VirtualTopology, BigSwitchOverSubsetExposesBorderPorts) {
  auto vtopo = VirtualTopology::bigSwitch(edgeHostsTopology(), {1, 2}, 50);
  // External endpoints: host port (1,1) and the border port (2,2) toward s3.
  EXPECT_TRUE(vtopo.virtualPortFor(LinkEnd{1, 1}).has_value());
  EXPECT_TRUE(vtopo.virtualPortFor(LinkEnd{2, 2}).has_value());
  EXPECT_FALSE(vtopo.virtualPortFor(LinkEnd{3, 1}).has_value());
}

TEST(VirtualTopology, BigSwitchRejectsUnknownMember) {
  EXPECT_THROW(VirtualTopology::bigSwitch(edgeHostsTopology(), {1, 9}, 50),
               std::invalid_argument);
}

TEST(VirtualTopology, TranslateWithIngressInstallsAlongPath) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::PortNo vIn = *vtopo.virtualPortFor(LinkEnd{1, 1});
  of::PortNo vOut = *vtopo.virtualPortFor(LinkEnd{3, 1});

  of::FlowMod vmod;
  vmod.command = of::FlowModCommand::kAdd;
  vmod.match.inPort = vIn;
  vmod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 3)};
  vmod.priority = 7;
  vmod.actions.push_back(of::OutputAction{vOut});

  auto physical = vtopo.translateFlowMod(vmod);
  ASSERT_EQ(physical.size(), 3u);  // One rule per hop s1, s2, s3.
  EXPECT_EQ(physical[0].first, 1u);
  EXPECT_EQ(physical[0].second.match.inPort, 1u);  // Physical host port.
  EXPECT_EQ(std::get<of::OutputAction>(physical[0].second.actions[0]).port, 2u);
  EXPECT_EQ(physical[1].first, 2u);
  EXPECT_EQ(physical[2].first, 3u);
  EXPECT_EQ(std::get<of::OutputAction>(physical[2].second.actions.back()).port,
            1u);  // Physical egress host port.
  for (const auto& [dpid, mod] : physical) {
    EXPECT_EQ(mod.priority, 7);  // Priority preserved on shards.
  }
}

TEST(VirtualTopology, TranslateDestinationBasedInstallsOnAllMembers) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::PortNo vOut = *vtopo.virtualPortFor(LinkEnd{3, 1});
  of::FlowMod vmod;
  vmod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 3)};
  vmod.actions.push_back(of::OutputAction{vOut});
  auto physical = vtopo.translateFlowMod(vmod);
  ASSERT_EQ(physical.size(), 3u);
  for (const auto& [dpid, mod] : physical) {
    ASSERT_FALSE(mod.actions.empty());
    of::PortNo port = std::get<of::OutputAction>(mod.actions.back()).port;
    if (dpid == 3) {
      EXPECT_EQ(port, 1u);  // Egress to host.
    } else {
      EXPECT_EQ(port, 2u);  // Toward s3 in the chain.
    }
  }
}

TEST(VirtualTopology, TranslateAppliesRewritesAtEgressOnly) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::PortNo vIn = *vtopo.virtualPortFor(LinkEnd{1, 1});
  of::PortNo vOut = *vtopo.virtualPortFor(LinkEnd{3, 1});
  of::FlowMod vmod;
  vmod.match.inPort = vIn;
  of::SetFieldAction rewrite;
  rewrite.field = of::MatchField::kIpDst;
  rewrite.ipValue = of::Ipv4Address(10, 0, 0, 3);
  vmod.actions.push_back(rewrite);
  vmod.actions.push_back(of::OutputAction{vOut});
  auto physical = vtopo.translateFlowMod(vmod);
  ASSERT_EQ(physical.size(), 3u);
  EXPECT_EQ(physical[0].second.actions.size(), 1u);  // Forward only.
  EXPECT_EQ(physical[2].second.actions.size(), 2u);  // Rewrite + output.
  EXPECT_TRUE(
      std::holds_alternative<of::SetFieldAction>(physical[2].second.actions[0]));
}

TEST(VirtualTopology, TranslateDropInstallsEverywhere) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::FlowMod drop;
  drop.match.tpDst = 23;
  drop.actions.push_back(of::DropAction{});
  auto physical = vtopo.translateFlowMod(drop);
  EXPECT_EQ(physical.size(), 3u);
}

TEST(VirtualTopology, TranslateRejectsFloodAndUnknownPorts) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::FlowMod flood;
  flood.actions.push_back(of::OutputAction{of::ports::kFlood});
  EXPECT_THROW(vtopo.translateFlowMod(flood), std::invalid_argument);
  of::FlowMod bad;
  bad.actions.push_back(of::OutputAction{12345});
  EXPECT_THROW(vtopo.translateFlowMod(bad), std::invalid_argument);
}

TEST(VirtualTopology, TranslatePacketOutResolvesPhysicalEndpoint) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::PortNo vOut = *vtopo.virtualPortFor(LinkEnd{3, 1});
  of::PacketOut vout;
  vout.dpid = 99;
  vout.actions.push_back(of::OutputAction{vOut});
  auto [dpid, pout] = vtopo.translatePacketOut(vout);
  EXPECT_EQ(dpid, 3u);
  EXPECT_EQ(std::get<of::OutputAction>(pout.actions[0]).port, 1u);
}

TEST(VirtualTopology, TranslatePacketOutWithoutOutputThrows) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::PacketOut vout;
  EXPECT_THROW(vtopo.translatePacketOut(vout), std::invalid_argument);
}

TEST(VirtualTopology, SwitchStatsAggregateSums) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  std::vector<of::SwitchStats> members{
      {1, 5, 100, 90}, {2, 3, 50, 40}, {3, 2, 10, 10}};
  of::SwitchStats agg = vtopo.aggregateSwitchStats(members);
  EXPECT_EQ(agg.dpid, 99u);
  EXPECT_EQ(agg.activeFlows, 10u);
  EXPECT_EQ(agg.lookupCount, 160u);
  EXPECT_EQ(agg.matchedCount, 140u);
}

TEST(VirtualTopology, FlowStatsAggregateTakesMaxAcrossShards) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::FlowMatch match;
  match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 3)};
  // The same virtual rule counted on three member switches: a packet
  // traversing all three must not be triple-counted.
  std::vector<of::FlowStatsEntry> shards{
      {match, 7, 10, 1000, 42}, {match, 7, 10, 1000, 42}, {match, 7, 9, 900, 42}};
  auto aggregated = vtopo.aggregateFlowStats(shards);
  ASSERT_EQ(aggregated.size(), 1u);
  EXPECT_EQ(aggregated[0].packetCount, 10u);
  EXPECT_EQ(aggregated[0].byteCount, 1000u);
}

TEST(VirtualTopology, FlowStatsAggregateKeepsDistinctRulesApart) {
  auto vtopo = VirtualTopology::singleBigSwitch(edgeHostsTopology(), 99);
  of::FlowMatch match;
  std::vector<of::FlowStatsEntry> shards{
      {match, 7, 10, 0, 42}, {match, 8, 3, 0, 42}, {match, 7, 5, 0, 43}};
  EXPECT_EQ(vtopo.aggregateFlowStats(shards).size(), 3u);
}

}  // namespace
}  // namespace sdnshield::net
