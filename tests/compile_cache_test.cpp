// Incremental compilation + reconcile memo correctness (DESIGN.md §14):
//
//  * differential — programs served by the CompiledProgramCache decide
//    EXACTLY like a cold, from-scratch compilation across randomized
//    manifests and behaviour traces;
//  * invalidation — a changed policy text, manifest text, or referenced
//    grant changes the reconcile-unit key, so the market can never serve a
//    stale memoized grant (proven by step-for-step digest equality against
//    a market running the PR 5 full-recompile path);
//  * the parallel reconcile fan-out and the serial loop produce identical
//    markets.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cbench/generator.h"
#include "controller/controller.h"
#include "core/engine/permission_engine.h"
#include "core/lang/policy_parser.h"
#include "isolation/api_proxy.h"
#include "market/app_market.h"
#include "market/reconcile_cache.h"

namespace sdnshield {
namespace {

using engine::CompiledPermissions;
using engine::CompiledProgramCache;

// --- engine-level differential: cached vs cold compilation -----------------

TEST(CompileCacheDifferential, CachedProgramsDecideLikeColdCompilation) {
  auto& cache = CompiledProgramCache::global();
  cache.clear();
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    auto manifest = cbench::makeSyntheticManifest(1 + seed % 15, seed);
    CompiledPermissions cold(manifest);
    auto cached = cache.obtain(manifest);
    ASSERT_NE(cached, nullptr);
    auto trace = cbench::makeSyntheticTrace(manifest, 512, 0.3, seed + 1);
    for (const auto& call : trace) {
      EXPECT_EQ(cold.check(call).allowed, cached->check(call).allowed)
          << "seed " << seed;
    }
  }
  cache.clear();
}

TEST(CompileCacheDifferential, RepeatObtainSharesOneProgram) {
  auto& cache = CompiledProgramCache::global();
  cache.clear();
  auto manifest = cbench::makeSyntheticManifest(5, 7);
  auto first = cache.obtain(manifest);
  auto hitsBefore = cache.stats().hits;
  auto second = cache.obtain(manifest);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().hits, hitsBefore + 1);
  cache.clear();
}

TEST(CompileCacheDifferential, DistinctSetsNeverShareAProgram) {
  auto& cache = CompiledProgramCache::global();
  cache.clear();
  auto a = cbench::makeSyntheticManifest(5, 11);
  auto b = cbench::makeSyntheticManifest(5, 12);  // Same shape, new filters.
  ASSERT_NE(a.toString(), b.toString());
  EXPECT_NE(cache.obtain(a).get(), cache.obtain(b).get());
  cache.clear();
}

TEST(CompileCacheDifferential, DisabledCacheCompilesFreshEveryCall) {
  auto& cache = CompiledProgramCache::global();
  cache.clear();
  cache.setEnabled(false);
  auto manifest = cbench::makeSyntheticManifest(3, 21);
  auto first = cache.obtain(manifest);
  auto second = cache.obtain(manifest);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.setEnabled(true);
  // Decisions still agree, of course.
  for (const auto& call :
       cbench::makeSyntheticTrace(manifest, 128, 0.3, 22)) {
    EXPECT_EQ(first->check(call).allowed, second->check(call).allowed);
  }
  cache.clear();
}

// --- LRU eviction: hot programs survive insert storms ------------------------

TEST(CompileCacheLru, HotProgramSurvivesAnInsertStorm) {
  auto& cache = CompiledProgramCache::global();
  cache.clear();
  const std::size_t restore = cache.maxEntries();
  cache.setMaxEntries(8);

  auto hot = cbench::makeSyntheticManifest(5, 1000);
  auto hotProgram = cache.obtain(hot);
  ASSERT_NE(hotProgram, nullptr);

  // Storm of distinct one-shot programs, far past capacity in total — but
  // the hot program is re-touched every 7 inserts (within the 8-entry
  // window), so the LRU must keep it while the cold storm entries cycle
  // out. The pre-LRU wholesale clear would have dropped it on overflow.
  for (std::uint64_t wave = 0; wave < 8; ++wave) {
    for (std::uint64_t i = 0; i < 7; ++i) {
      cache.obtain(cbench::makeSyntheticManifest(3, 2000 + wave * 7 + i));
    }
    auto hitsBefore = cache.stats().hits;
    EXPECT_EQ(cache.obtain(hot).get(), hotProgram.get())
        << "wave " << wave << ": the hot program was evicted";
    EXPECT_EQ(cache.stats().hits, hitsBefore + 1);
  }
  EXPECT_LE(cache.stats().entries, 8u);
  EXPECT_GT(cache.stats().evictions, 0u);

  cache.setMaxEntries(restore);
  cache.clear();
}

TEST(CompileCacheLru, EvictsTheColdestEntryOnly) {
  auto& cache = CompiledProgramCache::global();
  cache.clear();
  const std::size_t restore = cache.maxEntries();
  cache.setMaxEntries(3);

  auto a = cbench::makeSyntheticManifest(4, 3001);
  auto b = cbench::makeSyntheticManifest(4, 3002);
  auto c = cbench::makeSyntheticManifest(4, 3003);
  auto pa = cache.obtain(a);
  auto pb = cache.obtain(b);
  auto pc = cache.obtain(c);
  // Recency is now c > b > a; touching `a` moves it to the front.
  ASSERT_EQ(cache.obtain(a).get(), pa.get());

  auto evictionsBefore = cache.stats().evictions;
  auto d = cbench::makeSyntheticManifest(4, 3004);
  auto pd = cache.obtain(d);
  ASSERT_NE(pd, nullptr);
  EXPECT_EQ(cache.stats().evictions, evictionsBefore + 1);
  EXPECT_EQ(cache.stats().entries, 3u);

  // `b` was coldest, so only it recompiles; a/c/d are still cache hits.
  EXPECT_EQ(cache.obtain(a).get(), pa.get());
  EXPECT_EQ(cache.obtain(c).get(), pc.get());
  EXPECT_EQ(cache.obtain(d).get(), pd.get());
  auto pb2 = cache.obtain(b);
  EXPECT_NE(pb2.get(), pb.get());
  // The outstanding shared_ptr to the evicted program stays valid and
  // decides exactly like its recompilation.
  for (const auto& call : cbench::makeSyntheticTrace(b, 64, 0.3, 3005)) {
    EXPECT_EQ(pb->check(call).allowed, pb2->check(call).allowed);
  }

  cache.setMaxEntries(restore);
  cache.clear();
}

TEST(CompileCacheLru, ShrinkingCapacityEvictsDownToTheNewBound) {
  auto& cache = CompiledProgramCache::global();
  cache.clear();
  const std::size_t restore = cache.maxEntries();
  cache.setMaxEntries(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    cache.obtain(cbench::makeSyntheticManifest(3, 4000 + i));
  }
  EXPECT_EQ(cache.stats().entries, 8u);
  cache.setMaxEntries(2);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_GE(cache.stats().evictions, 6u);
  cache.setMaxEntries(restore);
  cache.clear();
}

// --- reconcile-unit key: what invalidates -----------------------------------

TEST(ReconcileKeyTest, CollectAppRefsWalksBindingsAndConstraints) {
  auto policy = lang::parsePolicy(
      "LET a = APP alpha\n"
      "LET bound = {\nPERM insert_flow\n}\n"
      "ASSERT a <= bound\n"
      "ASSERT APP beta <= APP gamma\n");
  EXPECT_EQ(market::collectAppRefs(policy),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(ReconcileKeyTest, PolicyWithoutAppRefsCollectsNothing) {
  auto policy = lang::parsePolicy(
      "LET bound = {\nPERM insert_flow\n}\n"
      "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n");
  EXPECT_TRUE(market::collectAppRefs(policy).empty());
}

TEST(ReconcileKeyTest, EveryKeyComponentChangesTheKey) {
  market::ReconcileKey base{1, 2, 3};
  EXPECT_EQ(base, (market::ReconcileKey{1, 2, 3}));
  EXPECT_FALSE(base == (market::ReconcileKey{9, 2, 3}));  // policy changed
  EXPECT_FALSE(base == (market::ReconcileKey{1, 9, 3}));  // manifest changed
  EXPECT_FALSE(base == (market::ReconcileKey{1, 2, 9}));  // context changed
}

TEST(ReconcileCacheTest, LookupInsertAndDisable) {
  market::ReconcileCache cache;
  market::ReconcileKey key{market::fnv1aHash("p"), market::fnv1aHash("m"), 0};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, perm::PermissionSet{});
  EXPECT_TRUE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.setEnabled(false);
  EXPECT_FALSE(cache.lookup(key).has_value());  // Disabled = always miss.
  cache.insert(key, perm::PermissionSet{});
  cache.setEnabled(true);
  EXPECT_FALSE(cache.lookup(key).has_value());  // Disable flushed the table.
}

// --- market-level differential: incremental vs PR 5 full recompile ----------

/// Market app with a configurable name + manifest (the grouping and the
/// APP-reference context both key on names).
class NamedApp final : public ctrl::App {
 public:
  NamedApp(std::string name, std::string manifest)
      : name_(std::move(name)), manifest_(std::move(manifest)) {}
  std::string name() const override { return name_; }
  std::string requestedManifest() const override { return manifest_; }
  void init(ctrl::AppContext&) override {}

 private:
  std::string name_;
  std::string manifest_;
};

std::string manifestFor(const std::string& name, int flavor) {
  std::string text = "APP " + name + "\nPERM insert_flow LIMITING MAX_PRIORITY " +
                     std::to_string(100 + flavor) + "\nPERM pkt_in_event\n";
  if (flavor % 2 == 0) text += "PERM read_statistics\n";
  return text;
}

constexpr const char* kBootPolicy =
    "LET Unused = {IP_DST 10.0.0.0 MASK 255.0.0.0}\n";

/// A policy that both trims (bound omits read_statistics) and reads another
/// app's grant (alpha's), so reconcile results depend on policy text,
/// manifest text AND referenced grants.
constexpr const char* kCrossAppPolicy =
    "LET bound = {\nPERM insert_flow\nPERM pkt_in_event\n}\n"
    "ASSERT APP beta <= bound\n"
    "ASSERT APP gamma <= APP alpha\n";

constexpr const char* kTrimOnlyPolicy =
    "LET bound = {\nPERM insert_flow\nPERM pkt_in_event\n"
    "PERM read_statistics\n}\n"
    "ASSERT APP beta <= bound\n"
    "ASSERT APP gamma <= bound\n";

struct MarketRig {
  explicit MarketRig(bool incremental) {
    market = std::make_unique<market::AppMarket>(
        shield, lang::parsePolicy(kBootPolicy));
    market->setReconcileCacheEnabled(incremental);
    market->setParallelReconcile(incremental);
  }

  of::AppId install(const std::string& name, int flavor) {
    auto result = market->installApp(
        std::make_shared<NamedApp>(name, manifestFor(name, flavor)), 1);
    EXPECT_TRUE(result.ok()) << name;
    return result.ok() ? result.value() : 0;
  }

  ctrl::Controller controller;
  iso::ShieldRuntime shield{controller};
  std::unique_ptr<market::AppMarket> market;
};

/// Runs one lifecycle scenario on an incremental market and a PR 5-style
/// market (memo off, serial) in lockstep, asserting digest equality after
/// every step — a stale memoized grant or a parallel-ordering difference
/// would diverge the digests immediately.
TEST(MarketIncrementalDifferential, LockstepDigestEqualityAcrossMutations) {
  MarketRig fast(true);
  MarketRig slow(false);

  auto step = [&](const char* what) {
    ASSERT_EQ(fast.market->digest(), slow.market->digest()) << what;
  };

  for (const std::string name : {"alpha", "beta", "gamma", "delta"}) {
    int flavor = static_cast<int>(name.size());
    fast.install(name, flavor);
    slow.install(name, flavor);
  }
  step("after installs");

  ASSERT_TRUE(fast.market->updatePolicy(kCrossAppPolicy).ok());
  ASSERT_TRUE(slow.market->updatePolicy(kCrossAppPolicy).ok());
  step("after cross-app policy");

  // Same policy text again: the incremental market answers every unit from
  // the memo; grants must not drift.
  ASSERT_TRUE(fast.market->updatePolicy(kCrossAppPolicy).ok());
  ASSERT_TRUE(slow.market->updatePolicy(kCrossAppPolicy).ok());
  step("after re-push");
  EXPECT_GT(fast.market->reconcileCacheStats().hits, 0u);

  // Manifest change: upgrading alpha changes its manifest hash (its own
  // unit) and its grant line (the context of gamma, which references APP
  // alpha). A re-push of the SAME policy text must re-reconcile both, not
  // serve the pre-upgrade memo entries.
  auto fastAlpha = fast.market->entry(1);
  ASSERT_TRUE(fastAlpha.has_value());
  ASSERT_TRUE(fast.market
                  ->upgradeApp(fastAlpha->id,
                               std::make_shared<NamedApp>(
                                   "alpha", manifestFor("alpha", 4)),
                               2)
                  .ok());
  ASSERT_TRUE(slow.market
                  ->upgradeApp(fastAlpha->id,
                               std::make_shared<NamedApp>(
                                   "alpha", manifestFor("alpha", 4)),
                               2)
                  .ok());
  ASSERT_TRUE(fast.market->updatePolicy(kCrossAppPolicy).ok());
  ASSERT_TRUE(slow.market->updatePolicy(kCrossAppPolicy).ok());
  step("after upgrade + re-push");

  // Policy text change: a different program with the same referenced apps.
  ASSERT_TRUE(fast.market->updatePolicy(kTrimOnlyPolicy).ok());
  ASSERT_TRUE(slow.market->updatePolicy(kTrimOnlyPolicy).ok());
  step("after policy change");

  // And back: the first cross-app push's entries are stale for alpha (it
  // was upgraded) but fresh for the rest — mixed hit/miss must still land
  // exactly where full recompilation does.
  ASSERT_TRUE(fast.market->updatePolicy(kCrossAppPolicy).ok());
  ASSERT_TRUE(slow.market->updatePolicy(kCrossAppPolicy).ok());
  step("after flip back");
}

TEST(MarketIncrementalDifferential, ParallelAndSerialReconcileAgree) {
  MarketRig parallel(true);
  MarketRig serial(true);
  serial.market->setParallelReconcile(false);
  for (const std::string name : {"alpha", "beta", "gamma", "delta", "eps"}) {
    int flavor = static_cast<int>(name.size()) % 3;
    parallel.install(name, flavor);
    serial.install(name, flavor);
  }
  ASSERT_TRUE(parallel.market->updatePolicy(kCrossAppPolicy).ok());
  ASSERT_TRUE(serial.market->updatePolicy(kCrossAppPolicy).ok());
  EXPECT_EQ(parallel.market->digest(), serial.market->digest());
  ASSERT_TRUE(parallel.market->updatePolicy(kTrimOnlyPolicy).ok());
  ASSERT_TRUE(serial.market->updatePolicy(kTrimOnlyPolicy).ok());
  EXPECT_EQ(parallel.market->digest(), serial.market->digest());
}

TEST(MarketIncrementalDifferential, RePushServesUnitsFromMemo) {
  MarketRig rig(true);
  for (const std::string name : {"alpha", "beta", "gamma"}) {
    rig.install(name, 2);
  }
  ASSERT_TRUE(rig.market->updatePolicy(kTrimOnlyPolicy).ok());
  auto cold = rig.market->reconcileCacheStats();
  ASSERT_TRUE(rig.market->updatePolicy(kTrimOnlyPolicy).ok());
  auto warm = rig.market->reconcileCacheStats();
  // Second push: every unit is a memo hit, nothing fresh.
  EXPECT_GT(warm.hits, cold.hits);
  EXPECT_EQ(warm.misses, cold.misses);
}

}  // namespace
}  // namespace sdnshield
