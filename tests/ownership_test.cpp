#include "core/engine/ownership.h"

#include <gtest/gtest.h>

#include <thread>

namespace sdnshield::engine {
namespace {

of::FlowMatch dstMatch(const char* ip) {
  of::FlowMatch match;
  match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ip)};
  return match;
}

TEST(OwnershipTracker, RecordsAndLooksUpOwner) {
  OwnershipTracker tracker;
  tracker.recordInsert(7, 1, dstMatch("10.0.0.1"), 10);
  EXPECT_EQ(tracker.ownerOf(1, dstMatch("10.0.0.1"), 10), 7u);
  EXPECT_FALSE(tracker.ownerOf(1, dstMatch("10.0.0.2"), 10).has_value());
  EXPECT_FALSE(tracker.ownerOf(2, dstMatch("10.0.0.1"), 10).has_value());
  EXPECT_FALSE(tracker.ownerOf(1, dstMatch("10.0.0.1"), 11).has_value());
}

TEST(OwnershipTracker, ReinsertTransfersOwnership) {
  OwnershipTracker tracker;
  tracker.recordInsert(7, 1, dstMatch("10.0.0.1"), 10);
  tracker.recordInsert(8, 1, dstMatch("10.0.0.1"), 10);
  EXPECT_EQ(tracker.ownerOf(1, dstMatch("10.0.0.1"), 10), 8u);
  EXPECT_EQ(tracker.totalTracked(), 1u);
}

TEST(OwnershipTracker, StrictDeleteRemovesExactEntry) {
  OwnershipTracker tracker;
  tracker.recordInsert(7, 1, dstMatch("10.0.0.1"), 10);
  tracker.recordDelete(1, dstMatch("10.0.0.1"), 11, /*strict=*/true);
  EXPECT_EQ(tracker.totalTracked(), 1u);  // Wrong priority: kept.
  tracker.recordDelete(1, dstMatch("10.0.0.1"), 10, /*strict=*/true);
  EXPECT_EQ(tracker.totalTracked(), 0u);
}

TEST(OwnershipTracker, NonStrictDeleteRemovesSubsumed) {
  OwnershipTracker tracker;
  tracker.recordInsert(7, 1, dstMatch("10.0.0.1"), 10);
  tracker.recordInsert(7, 1, dstMatch("10.0.0.2"), 20);
  tracker.recordInsert(7, 2, dstMatch("10.0.0.1"), 10);
  tracker.recordDelete(1, of::FlowMatch::any(), std::nullopt, false);
  EXPECT_EQ(tracker.totalTracked(), 1u);  // Only dpid 2 survives.
  EXPECT_EQ(tracker.countFor(7, 2), 1u);
}

TEST(OwnershipTracker, OwnsAllMatchingSemantics) {
  OwnershipTracker tracker;
  tracker.recordInsert(7, 1, dstMatch("10.0.0.1"), 10);
  tracker.recordInsert(8, 1, dstMatch("10.0.0.2"), 10);
  of::FlowMatch all = of::FlowMatch::any();
  EXPECT_FALSE(tracker.ownsAllMatching(7, 1, all));
  EXPECT_TRUE(tracker.ownsAllMatching(7, 1, dstMatch("10.0.0.1")));
  EXPECT_FALSE(tracker.ownsAllMatching(7, 1, dstMatch("10.0.0.2")));
  // Vacuously true when nothing matches.
  EXPECT_TRUE(tracker.ownsAllMatching(7, 1, dstMatch("10.0.0.9")));
  EXPECT_TRUE(tracker.ownsAllMatching(7, 9, all));
}

TEST(OwnershipTracker, OverridesForeignFlowDetection) {
  OwnershipTracker tracker;
  // Firewall (app 2) drops TCP:23 at priority 100.
  of::FlowMatch fw;
  fw.ipProto = 6;
  fw.tpDst = 23;
  tracker.recordInsert(2, 1, fw, 100);
  // A same-or-higher-priority overlapping insert by app 3 overrides it.
  of::FlowMatch overlap;
  overlap.tpDst = 23;
  EXPECT_TRUE(tracker.overridesForeignFlow(3, 1, overlap, 120));
  // Lower priority does not shadow the firewall rule.
  EXPECT_FALSE(tracker.overridesForeignFlow(3, 1, overlap, 50));
  // Disjoint traffic does not override.
  of::FlowMatch disjoint;
  disjoint.tpDst = 80;
  EXPECT_FALSE(tracker.overridesForeignFlow(3, 1, disjoint, 120));
  // The firewall app itself may refresh its own rule.
  EXPECT_FALSE(tracker.overridesForeignFlow(2, 1, overlap, 120));
  // Other switches are unaffected.
  EXPECT_FALSE(tracker.overridesForeignFlow(3, 2, overlap, 120));
}

TEST(OwnershipTracker, CountsPerAppPerSwitch) {
  OwnershipTracker tracker;
  tracker.recordInsert(7, 1, dstMatch("10.0.0.1"), 10);
  tracker.recordInsert(7, 1, dstMatch("10.0.0.2"), 10);
  tracker.recordInsert(7, 2, dstMatch("10.0.0.3"), 10);
  tracker.recordInsert(8, 1, dstMatch("10.0.0.4"), 10);
  EXPECT_EQ(tracker.countFor(7, 1), 2u);
  EXPECT_EQ(tracker.countFor(7, 2), 1u);
  EXPECT_EQ(tracker.countFor(8, 1), 1u);
  EXPECT_EQ(tracker.countFor(9, 1), 0u);
}

TEST(OwnershipTracker, ClearResets) {
  OwnershipTracker tracker;
  tracker.recordInsert(7, 1, dstMatch("10.0.0.1"), 10);
  tracker.clear();
  EXPECT_EQ(tracker.totalTracked(), 0u);
}

TEST(OwnershipTracker, ConcurrentInsertsAndQueries) {
  OwnershipTracker tracker;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracker, t] {
      for (int i = 0; i < 500; ++i) {
        of::FlowMatch match;
        match.tpDst = static_cast<std::uint16_t>(t * 1000 + i);
        tracker.recordInsert(static_cast<of::AppId>(t + 1), 1, match, 10);
        tracker.countFor(static_cast<of::AppId>(t + 1), 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracker.totalTracked(), 2000u);
}

}  // namespace
}  // namespace sdnshield::engine
