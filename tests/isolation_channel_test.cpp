#include "isolation/channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace sdnshield::iso {
namespace {

TEST(BoundedMpmcQueue, FifoOrderSingleThread) {
  BoundedMpmcQueue<int> queue;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  for (int i = 0; i < 5; ++i) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedMpmcQueue, TryPushRespectsCapacity) {
  BoundedMpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.tryPush(1));
  EXPECT_TRUE(queue.tryPush(2));
  EXPECT_FALSE(queue.tryPush(3));
  queue.pop();
  EXPECT_TRUE(queue.tryPush(3));
}

TEST(BoundedMpmcQueue, TryPopReturnsEmptyWhenDrained) {
  BoundedMpmcQueue<int> queue;
  EXPECT_FALSE(queue.tryPop().has_value());
  queue.push(7);
  EXPECT_EQ(queue.tryPop(), 7);
}

TEST(BoundedMpmcQueue, CloseWakesBlockedConsumer) {
  BoundedMpmcQueue<int> queue;
  std::atomic<bool> gotEmpty{false};
  std::thread consumer([&] {
    auto item = queue.pop();  // Blocks until close.
    gotEmpty = !item.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_TRUE(gotEmpty.load());
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedMpmcQueue, CloseWakesBlockedProducer) {
  BoundedMpmcQueue<int> queue(1);
  queue.push(1);
  std::atomic<bool> pushRejected{false};
  std::thread producer([&] { pushRejected = !queue.push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_TRUE(pushRejected.load());
}

TEST(BoundedMpmcQueue, DrainsRemainingItemsAfterClose) {
  BoundedMpmcQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedMpmcQueue, MpmcStressDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  BoundedMpmcQueue<int> queue(64);
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum.fetch_add(*item);
        received.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  queue.close();
  for (std::thread& consumer : consumers) consumer.join();

  constexpr long long kTotal = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

TEST(BoundedMpmcQueue, MoveOnlyPayloadsWork) {
  BoundedMpmcQueue<std::unique_ptr<int>> queue;
  queue.push(std::make_unique<int>(42));
  auto item = queue.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 42);
}

}  // namespace
}  // namespace sdnshield::iso
