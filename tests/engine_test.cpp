// Permission engine: compiled checking, token gating, filter programs,
// topology-projection extraction, kernel bypass and concurrent checking.
#include "core/engine/permission_engine.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "core/lang/perm_parser.h"

namespace sdnshield::engine {
namespace {

using lang::parsePermissions;
using perm::ApiCall;
using perm::Token;

of::FlowMod modTo(const char* ipDst, std::uint16_t priority = 10) {
  of::FlowMod mod;
  mod.match.ethType = 0x0800;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ipDst)};
  mod.priority = priority;
  mod.actions.push_back(of::OutputAction{1});
  return mod;
}

TEST(CompiledPermissions, MissingTokenIsDenied) {
  CompiledPermissions compiled(parsePermissions("PERM read_statistics\n"));
  Decision decision = compiled.check(ApiCall::insertFlow(1, 1, modTo("10.0.0.1")));
  EXPECT_FALSE(decision.allowed);
  EXPECT_NE(decision.reason.find("insert_flow"), std::string::npos);
}

TEST(CompiledPermissions, UnrestrictedGrantAllows) {
  CompiledPermissions compiled(parsePermissions("PERM insert_flow\n"));
  EXPECT_TRUE(compiled.check(ApiCall::insertFlow(1, 1, modTo("10.0.0.1"))).allowed);
}

TEST(CompiledPermissions, FilterProgramEnforcesPredicates) {
  CompiledPermissions compiled(parsePermissions(
      "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0 "
      "AND MAX_PRIORITY 100\n"));
  EXPECT_TRUE(
      compiled.check(ApiCall::insertFlow(1, 1, modTo("10.13.2.3", 50))).allowed);
  EXPECT_FALSE(
      compiled.check(ApiCall::insertFlow(1, 1, modTo("10.14.2.3", 50))).allowed);
  Decision denied =
      compiled.check(ApiCall::insertFlow(1, 1, modTo("10.13.2.3", 200)));
  EXPECT_FALSE(denied.allowed);
  EXPECT_NE(denied.reason.find("filter"), std::string::npos);
}

TEST(CompiledPermissions, DisjunctionAndNegationPrograms) {
  CompiledPermissions compiled(parsePermissions(
      "PERM insert_flow LIMITING NOT OWN_FLOWS OR MAX_PRIORITY 10\n"));
  ApiCall lowPriority = ApiCall::insertFlow(1, 1, modTo("10.0.0.1", 5));
  lowPriority.ownFlow = true;
  EXPECT_TRUE(compiled.check(lowPriority).allowed);
  ApiCall highOwned = ApiCall::insertFlow(1, 1, modTo("10.0.0.1", 50));
  highOwned.ownFlow = true;
  EXPECT_FALSE(compiled.check(highOwned).allowed);
  ApiCall highForeign = ApiCall::insertFlow(1, 1, modTo("10.0.0.1", 50));
  highForeign.ownFlow = false;
  EXPECT_TRUE(compiled.check(highForeign).allowed);
}

TEST(CompiledPermissions, HasTokenReflectsGrants) {
  CompiledPermissions compiled(
      parsePermissions("PERM pkt_in_event\nPERM read_payload\n"));
  EXPECT_TRUE(compiled.hasToken(Token::kPktInEvent));
  EXPECT_TRUE(compiled.hasToken(Token::kReadPayload));
  EXPECT_FALSE(compiled.hasToken(Token::kSendPktOut));
}

TEST(CompiledPermissions, ExtractsTopologyProjection) {
  CompiledPermissions compiled(parsePermissions(
      "PERM visible_topology LIMITING SWITCH {1,2} LINK {(1,2)}\n"));
  ASSERT_NE(compiled.topologyProjection(), nullptr);
  EXPECT_EQ(compiled.topologyProjection()->switches().size(), 2u);
  EXPECT_FALSE(compiled.virtualTopology().has_value());
}

TEST(CompiledPermissions, ExtractsVirtualTopologyMarker) {
  CompiledPermissions compiled(parsePermissions(
      "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH\n"));
  ASSERT_TRUE(compiled.virtualTopology().has_value());
  EXPECT_TRUE(compiled.virtualTopology()->empty());  // Whole network.
}

TEST(CompiledPermissions, EventSubscriptionGatedByEventTokens) {
  CompiledPermissions compiled(parsePermissions("PERM pkt_in_event\n"));
  EXPECT_TRUE(
      compiled
          .check(ApiCall::subscribe(1, perm::ApiCallType::kSubscribePacketIn))
          .allowed);
  EXPECT_FALSE(
      compiled
          .check(ApiCall::subscribe(1, perm::ApiCallType::kSubscribeFlowEvent))
          .allowed);
}

TEST(CompiledPermissions, HostCallsGatedByHostTokens) {
  CompiledPermissions compiled(parsePermissions(
      "PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0\n"));
  EXPECT_TRUE(
      compiled.check(ApiCall::hostNetwork(1, of::Ipv4Address(10, 1, 5, 5), 80))
          .allowed);
  EXPECT_FALSE(
      compiled.check(ApiCall::hostNetwork(1, of::Ipv4Address(8, 8, 8, 8), 80))
          .allowed);
  EXPECT_FALSE(compiled.check(ApiCall::fileSystem(1, "/etc/passwd")).allowed);
}

TEST(PermissionEngine, KernelAppBypassesChecks) {
  PermissionEngine engine;
  ApiCall call = ApiCall::insertFlow(of::kKernelAppId, 1, modTo("10.0.0.1"));
  EXPECT_TRUE(engine.check(call).allowed);
}

TEST(PermissionEngine, UnknownAppIsDeniedEverything) {
  PermissionEngine engine;
  EXPECT_FALSE(engine.check(ApiCall::readTopology(7)).allowed);
}

TEST(PermissionEngine, InstallUninstallLifecycle) {
  PermissionEngine engine;
  engine.install(3, parsePermissions("PERM visible_topology\n"));
  EXPECT_TRUE(engine.check(ApiCall::readTopology(3)).allowed);
  ASSERT_NE(engine.compiled(3), nullptr);
  engine.uninstall(3);
  EXPECT_FALSE(engine.check(ApiCall::readTopology(3)).allowed);
  EXPECT_EQ(engine.compiled(3), nullptr);
}

TEST(PermissionEngine, ReinstallReplacesPermissions) {
  PermissionEngine engine;
  engine.install(3, parsePermissions("PERM visible_topology\n"));
  engine.install(3, parsePermissions("PERM read_statistics\n"));
  EXPECT_FALSE(engine.check(ApiCall::readTopology(3)).allowed);
  of::StatsRequest request;
  EXPECT_TRUE(engine.check(ApiCall::readStatistics(3, request)).allowed);
}

TEST(PermissionEngine, PerAppIsolationOfGrants) {
  PermissionEngine engine;
  engine.install(1, parsePermissions("PERM insert_flow\n"));
  engine.install(2, parsePermissions("PERM read_statistics\n"));
  EXPECT_TRUE(engine.check(ApiCall::insertFlow(1, 1, modTo("10.0.0.1"))).allowed);
  EXPECT_FALSE(engine.check(ApiCall::insertFlow(2, 1, modTo("10.0.0.1"))).allowed);
}

TEST(PermissionEngine, ConcurrentChecksAreSafe) {
  PermissionEngine engine;
  engine.install(1, parsePermissions(
                        "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK "
                        "255.255.0.0\n"));
  std::atomic<int> denials{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&engine, &denials, t] {
      for (int i = 0; i < 2000; ++i) {
        const char* ip = (t % 2 == 0) ? "10.13.0.5" : "10.99.0.5";
        Decision decision =
            engine.check(ApiCall::insertFlow(1, 1, modTo(ip)));
        if (!decision.allowed) denials.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(denials.load(), 4 * 2000);  // Odd threads always denied.
}

TEST(PermissionEngine, SourcePermissionsAreIntrospectable) {
  PermissionEngine engine;
  auto perms = parsePermissions("PERM insert_flow\nPERM read_statistics\n");
  engine.install(9, perms);
  EXPECT_TRUE(engine.compiled(9)->source().equivalent(perms));
}

// --- depth bounds (regression for the former unchecked stack[64]) ----------

perm::FilterExprPtr tpDstLeaf(std::uint16_t port) {
  return perm::FilterExpr::singleton(perm::FilterPtr{
      new perm::FieldPredicateFilter(of::MatchField::kTpDst, port)});
}

TEST(CompiledPermissions, AlternatingDepth70ExpressionIsRejectedNotOverflowed) {
  // Alternating AND/OR with distinct leaves cannot be flattened, so the
  // program would need ~70 nesting levels — beyond kMaxProgramDepth. The
  // seed engine indexed past its fixed stack[64] here (UB); now the
  // constructor must refuse cleanly.
  perm::FilterExprPtr expr = tpDstLeaf(0);
  for (std::uint16_t i = 1; i <= 70; ++i) {
    expr = i % 2 == 0 ? perm::FilterExpr::conj(tpDstLeaf(i), expr)
                      : perm::FilterExpr::disj(tpDstLeaf(i), expr);
  }
  perm::PermissionSet set;
  set.grant(perm::Token::kInsertFlow, expr);
  EXPECT_THROW(CompiledPermissions{set}, std::length_error);
}

TEST(CompiledPermissions, SameOpDepth70ChainFlattensAndEvaluates) {
  // A right-leaning 70-deep OR chain (what repeated FilterExpr::disj in a
  // loop builds) also overflowed the seed's stack. The optimizer flattens
  // and rebalances it, so it must compile and answer correctly.
  perm::FilterExprPtr expr = tpDstLeaf(0);
  for (std::uint16_t i = 1; i <= 70; ++i) {
    expr = perm::FilterExpr::disj(tpDstLeaf(i), expr);
  }
  perm::PermissionSet set;
  set.grant(perm::Token::kInsertFlow, expr);
  CompiledPermissions compiled(set);

  auto callWithTpDst = [](std::uint16_t port) {
    ApiCall call;
    call.type = perm::ApiCallType::kInsertFlow;
    call.app = 1;
    of::FlowMatch match;
    match.tpDst = port;
    call.match = match;
    return call;
  };
  EXPECT_TRUE(compiled.check(callWithTpDst(0)).allowed);
  EXPECT_TRUE(compiled.check(callWithTpDst(35)).allowed);
  EXPECT_TRUE(compiled.check(callWithTpDst(70)).allowed);
  EXPECT_FALSE(compiled.check(callWithTpDst(71)).allowed);
}

TEST(CompiledPermissions, AbsurdlyDeepExpressionIsRejectedBeforeRecursing) {
  // 5000 stacked NOTs exceed kMaxExpressionDepth; the guard must fire from
  // an iterative scan, before any recursive optimizer pass can blow the
  // real call stack.
  perm::FilterExprPtr expr = tpDstLeaf(80);
  for (int i = 0; i < 5000; ++i) expr = perm::FilterExpr::negate(expr);
  perm::PermissionSet set;
  set.grant(perm::Token::kInsertFlow, expr);
  EXPECT_THROW(CompiledPermissions{set}, std::length_error);
}

TEST(CompiledPermissions, OptimizerFoldsConstantsAndDuplicates) {
  // STUB literals are constant-false, duplicated literals collapse: the
  // whole program folds to a single constant instruction.
  perm::FilterExprPtr stub = perm::FilterExpr::singleton(
      perm::FilterPtr{new perm::StubFilter("X")});
  perm::PermissionSet set;
  set.grant(perm::Token::kInsertFlow,
            perm::FilterExpr::conj(tpDstLeaf(80),
                                   perm::FilterExpr::conj(stub, tpDstLeaf(80))));
  CompiledPermissions compiled(set);
  EXPECT_EQ(compiled.programLength(perm::Token::kInsertFlow), 1u);
  EXPECT_FALSE(compiled.check(ApiCall::insertFlow(1, 1, modTo("10.0.0.1"))).allowed);
}

}  // namespace
}  // namespace sdnshield::engine
