// App-market lifecycle subsystem tests: the install/upgrade/revoke/uninstall
// state machine, the write-ahead journal (replay equality after a simulated
// crash at every market fault site), the atomic permission-epoch swap under
// concurrent readers, and the no-leak guarantee for repeated
// install/uninstall cycles.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "controller/controller.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "isolation/api_proxy.h"
#include "isolation/fault_injector.h"
#include "market/app_market.h"
#include "market/journal.h"

namespace sdnshield {
namespace {

using iso::FaultInjector;

constexpr const char* kOpenPolicy =
    "LET Unused = {IP_DST 10.0.0.0 MASK 255.0.0.0}\n";

// A policy whose boundary omits read_statistics: reconciliation repairs the
// swapper manifest by truncating that grant away.
constexpr const char* kRestrictPolicy =
    "LET bound = {\nPERM insert_flow\nPERM pkt_in_event\n}\n"
    "LET sw = APP swapper\n"
    "ASSERT sw <= bound\n";

constexpr const char* kSwapperManifest =
    "APP swapper\n"
    "PERM read_statistics\n"
    "PERM insert_flow LIMITING MAX_PRIORITY 100\n"
    "PERM pkt_in_event\n";

constexpr const char* kSwapperManifestV2 =
    "APP swapper\n"
    "PERM read_statistics\n"
    "PERM insert_flow LIMITING MAX_PRIORITY 100\n"
    "PERM pkt_in_event\n"
    "PERM visible_topology\n";

/// Minimal market app: fixed manifest, optional packet-in subscription (so
/// uninstall/revoke leak tests have a subscription to release).
class StubApp final : public ctrl::App {
 public:
  StubApp(std::string manifest, bool subscribe)
      : manifest_(std::move(manifest)), subscribe_(subscribe) {}

  std::string name() const override { return "swapper"; }
  std::string requestedManifest() const override { return manifest_; }
  void init(ctrl::AppContext& context) override {
    if (subscribe_) {
      (void)context.subscribePacketIn([](const ctrl::PacketInEvent&) {});
    }
  }

 private:
  std::string manifest_;
  bool subscribe_;
};

std::shared_ptr<StubApp> makeStub(bool subscribe = false,
                                  const char* manifest = kSwapperManifest) {
  return std::make_shared<StubApp>(manifest, subscribe);
}

/// A journal whose backing store fails on the Nth persist call — drives the
/// commit-record failure paths (the rollback after the runtime already
/// mutated), which the fault sites (firing before the append) cannot reach.
class FlakyJournal final : public market::MarketJournal {
 public:
  std::atomic<int> failAfter{-1};  ///< -1 = never; 0 = fail the next persist.

 protected:
  void persist(const market::JournalRecord&) override {
    int remaining = failAfter.load();
    if (remaining == 0) {
      failAfter.store(-1);
      throw std::runtime_error("simulated disk full");
    }
    if (remaining > 0) failAfter.store(remaining - 1);
  }
};

/// One controller + runtime + market, wired the way production boots them.
struct Rig {
  explicit Rig(std::shared_ptr<market::MarketJournal> journal = nullptr)
      : market(shield, lang::parsePolicy(kOpenPolicy), std::move(journal)) {}

  ctrl::Controller controller;
  iso::ShieldRuntime shield{controller};
  market::AppMarket market;
};

struct Counts {
  std::size_t engineApps = 0;
  std::size_t loadedApps = 0;
  std::size_t windows = 0;
  std::size_t subscriptions = 0;

  bool operator==(const Counts& other) const {
    return engineApps == other.engineApps && loadedApps == other.loadedApps &&
           windows == other.windows && subscriptions == other.subscriptions;
  }
};

Counts countsOf(Rig& rig) {
  return Counts{rig.shield.engine().installedCount(),
                rig.shield.loadedAppCount(), rig.shield.windowCount(),
                rig.controller.subscriptionCount()};
}

market::AppFactory stubFactory() {
  return [](const std::string& name, std::uint32_t version)
             -> std::shared_ptr<ctrl::App> {
    if (name != "swapper") return nullptr;
    return makeStub(false,
                    version >= 2 ? kSwapperManifestV2 : kSwapperManifest);
  };
}

/// Replays @p source's journal onto a fresh runtime and returns the
/// recovered market's digest (the journal-equality surface).
std::string recoveredDigest(Rig& source) {
  ctrl::Controller controller;
  iso::ShieldRuntime shield(controller);
  auto copy =
      std::make_shared<market::MemoryJournal>(source.market.journal()->records());
  auto recovered = market::AppMarket::recover(
      shield, lang::parsePolicy(kOpenPolicy), stubFactory(), copy);
  std::string digest = recovered->digest();
  recovered.reset();
  shield.shutdown();
  return digest;
}

class MarketTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(MarketTest, LifecycleStateMachine) {
  Rig rig;
  auto installed = rig.market.installApp(makeStub(), 1);
  ASSERT_TRUE(installed.ok());
  of::AppId id = installed.value();

  auto entry = rig.market.entry(id);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->name, "swapper");
  EXPECT_EQ(entry->version, 1u);
  EXPECT_EQ(entry->state, market::AppState::kRunning);
  EXPECT_TRUE(entry->granted.has(perm::Token::kReadStatistics));

  // Upgrade to the wider v2 manifest: version bumps, grant widens, and the
  // audit trail records the token-level diff.
  ASSERT_TRUE(
      rig.market.upgradeApp(id, makeStub(false, kSwapperManifestV2), 2).ok());
  entry = rig.market.entry(id);
  EXPECT_EQ(entry->version, 2u);
  EXPECT_TRUE(entry->granted.has(perm::Token::kVisibleTopology));
  bool diffAudited = false;
  for (const auto& record : rig.controller.audit().entriesFor(id)) {
    if (record.kind == engine::AuditKind::kLifecycle &&
        record.toString().find("+visible_topology") != std::string::npos) {
      diffAudited = true;
    }
  }
  EXPECT_TRUE(diffAudited);

  // Revoke: entry survives (audit trail) but transitions to kRevoked, and
  // further lifecycle ops on the app are rejected.
  ASSERT_TRUE(rig.market.revokeApp(id, "test revoke").ok());
  EXPECT_EQ(rig.market.entry(id)->state, market::AppState::kRevoked);
  EXPECT_EQ(rig.market.revokeApp(id, "again").error().code,
            ctrl::ApiErrc::kInvalidArgument);
  EXPECT_EQ(rig.market.upgradeApp(id, makeStub(), 3).error().code,
            ctrl::ApiErrc::kInvalidArgument);

  // Uninstall removes the entry entirely; unknown ids are rejected.
  ASSERT_TRUE(rig.market.uninstallApp(id).ok());
  EXPECT_FALSE(rig.market.entry(id).has_value());
  EXPECT_EQ(rig.market.uninstallApp(id).error().code,
            ctrl::ApiErrc::kInvalidArgument);
  EXPECT_EQ(rig.market.installedCount(), 0u);
  rig.shield.shutdown();
}

TEST_F(MarketTest, InstallRejectsUnparsableManifest) {
  Rig rig;
  auto bad = std::make_shared<StubApp>("PERM no_such_token !!!", false);
  auto result = rig.market.installApp(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ctrl::ApiErrc::kInvalidArgument);
  // Rejected before the intent record: the journal stays empty and nothing
  // was loaded.
  EXPECT_EQ(rig.market.journal()->size(), 0u);
  EXPECT_EQ(rig.shield.loadedAppCount(), 0u);
  rig.shield.shutdown();
}

// --- crash simulation at every market fault site ---------------------------

struct FaultCase {
  const char* op;
  std::string_view site;
};

/// Runs the canonical prefix (two installed apps + one policy update), arms
/// @p site for one firing, attempts @p op, and requires: a typed
/// kTransactionAborted failure, the site actually fired, live state
/// (digest + engine/runtime/controller counts) unchanged, and — the replay
/// guarantee — a market recovered from the journal matching the live one.
void runFaultCase(const FaultCase& fc) {
  SCOPED_TRACE(std::string(fc.op) + " @ " + std::string(fc.site));
  Rig rig;
  auto a = rig.market.installApp(makeStub(true), 1);
  auto b = rig.market.installApp(makeStub(true), 1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(rig.market.updatePolicy(kRestrictPolicy).ok());

  std::string digestBefore = rig.market.digest();
  Counts before = countsOf(rig);
  std::uint64_t epochBefore = rig.shield.engine().epoch();

  // fired() counts cumulatively across the per-op loop in each TEST_F, so
  // assert the delta produced by this one armed window.
  std::uint64_t firedBefore = FaultInjector::instance().fired(fc.site);
  {
    iso::ScopedFault fault(fc.site, FaultInjector::Fault::kThrow, 1);
    ctrl::ApiErrc code = ctrl::ApiErrc::kOk;
    std::string opName = fc.op;
    if (opName == "install") {
      code = rig.market.installApp(makeStub(true), 1).error().code;
    } else if (opName == "upgrade") {
      code = rig.market
                 .upgradeApp(b.value(), makeStub(false, kSwapperManifestV2), 2)
                 .error()
                 .code;
    } else if (opName == "revoke") {
      code = rig.market.revokeApp(b.value(), "fault test").error().code;
    } else if (opName == "uninstall") {
      code = rig.market.uninstallApp(b.value()).error().code;
    } else {
      code = rig.market.updatePolicy(kOpenPolicy).error().code;
    }
    EXPECT_EQ(code, ctrl::ApiErrc::kTransactionAborted);
    EXPECT_EQ(FaultInjector::instance().fired(fc.site), firedBefore + 1);
  }

  // Nothing partial survived the abort: same digest, same engine grants,
  // same containers, same async windows, same subscriptions, same epoch.
  EXPECT_EQ(rig.market.digest(), digestBefore);
  EXPECT_TRUE(countsOf(rig) == before);
  EXPECT_EQ(rig.shield.engine().epoch(), epochBefore);

  // The journal (intent and abort records included) replays to the exact
  // live state; the ScopedFault guard disarmed the site at scope exit, so
  // the replay itself runs fault-free.
  EXPECT_EQ(recoveredDigest(rig), rig.market.digest());
  rig.shield.shutdown();
}

TEST_F(MarketTest, AbortAtJournalSiteLeavesNoPartialState) {
  for (const char* op :
       {"install", "upgrade", "revoke", "uninstall", "policy"}) {
    runFaultCase({op, iso::sites::kMarketJournal});
  }
}

TEST_F(MarketTest, AbortAtReconcileSiteLeavesNoPartialState) {
  // revoke/uninstall do not reconcile; the site would never fire for them.
  for (const char* op : {"install", "upgrade", "policy"}) {
    runFaultCase({op, iso::sites::kMarketReconcile});
  }
}

TEST_F(MarketTest, AbortAtSwapSiteLeavesNoPartialState) {
  for (const char* op :
       {"install", "upgrade", "revoke", "uninstall", "policy"}) {
    runFaultCase({op, iso::sites::kMarketSwap});
  }
}

// The fault sites fire before their append; a failing backing store instead
// fails the COMMIT record after the runtime has already mutated — the op
// must roll the live runtime back and the journal must replay to the
// pre-op state.
TEST_F(MarketTest, CommitPersistFailureRollsBackInstall) {
  auto journal = std::make_shared<FlakyJournal>();
  Rig rig(journal);
  ASSERT_TRUE(rig.market.installApp(makeStub(true)).ok());
  std::string digestBefore = rig.market.digest();
  Counts before = countsOf(rig);

  journal->failAfter.store(1);  // intent persists, commit fails
  auto result = rig.market.installApp(makeStub(true));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ctrl::ApiErrc::kTransactionAborted);
  EXPECT_EQ(rig.market.digest(), digestBefore);
  EXPECT_TRUE(countsOf(rig) == before);
  EXPECT_EQ(recoveredDigest(rig), rig.market.digest());
  rig.shield.shutdown();
}

TEST_F(MarketTest, CommitPersistFailureRollsBackPolicyUpdate) {
  auto journal = std::make_shared<FlakyJournal>();
  Rig rig(journal);
  auto id = rig.market.installApp(makeStub());
  ASSERT_TRUE(id.ok());
  std::string digestBefore = rig.market.digest();

  // intent + one policy_grant persist, the policy_commit fails.
  journal->failAfter.store(2);
  auto result = rig.market.updatePolicy(kRestrictPolicy);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ctrl::ApiErrc::kTransactionAborted);
  EXPECT_EQ(rig.market.digest(), digestBefore);

  // The restore swap re-published the OLD grants: read_statistics (absent
  // under the restricting policy) must still be allowed.
  perm::ApiCall call;
  call.type = perm::ApiCallType::kReadStatistics;
  call.app = id.value();
  call.statsLevel = of::StatsLevel::kSwitch;
  EXPECT_TRUE(rig.shield.engine().check(call).allowed);
  EXPECT_EQ(recoveredDigest(rig), rig.market.digest());
  rig.shield.shutdown();
}

// --- journal replay of a full mixed lifecycle ------------------------------

TEST_F(MarketTest, JournalReplaysFullLifecycleToIdenticalState) {
  Rig rig;
  auto a = rig.market.installApp(makeStub(true), 1);
  auto b = rig.market.installApp(makeStub(true), 1);
  auto c = rig.market.installApp(makeStub(true), 1);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(rig.market.updatePolicy(kRestrictPolicy).ok());
  ASSERT_TRUE(
      rig.market.upgradeApp(b.value(), makeStub(false, kSwapperManifestV2), 2)
          .ok());
  ASSERT_TRUE(rig.market.revokeApp(c.value(), "misbehaved").ok());
  ASSERT_TRUE(rig.market.uninstallApp(a.value()).ok());
  ASSERT_TRUE(rig.market.updatePolicy(kOpenPolicy).ok());

  EXPECT_EQ(recoveredDigest(rig), rig.market.digest());
  rig.shield.shutdown();
}

TEST_F(MarketTest, FileJournalRoundTripsAndSkipsTornTrailingLine) {
  std::string path = ::testing::TempDir() + "market_journal_test.log";
  std::remove(path.c_str());
  {
    auto journal = std::make_shared<market::FileJournal>(path);
    market::JournalRecord record;
    record.op = market::JournalOp::kInstallCommit;
    record.app = 7;
    record.version = 2;
    record.name = "swapper";
    record.manifestText = "APP swapper\nPERM read_statistics\n";
    record.detail = "tab\ttext";
    journal->append(record);
  }
  {
    // Simulate a crash mid-append: a torn, undecodable trailing line.
    std::ofstream torn(path, std::ios::app);
    torn << "install_commit\t9\tgar";
  }
  auto records = market::FileJournal::load(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].op, market::JournalOp::kInstallCommit);
  EXPECT_EQ(records[0].app, 7u);
  EXPECT_EQ(records[0].manifestText, "APP swapper\nPERM read_statistics\n");
  EXPECT_EQ(records[0].detail, "tab\ttext");
  std::remove(path.c_str());
}

// recover() must be idempotent: replaying one journal onto two fresh
// runtimes yields identical digests, replay never mutates the journal it
// reads, and a market recovered from a recovered market's journal converges
// to the same state again (second-generation recovery).
TEST_F(MarketTest, RecoverTwiceFromSameJournalIsIdempotent) {
  Rig rig;
  auto a = rig.market.installApp(makeStub(true), 1);
  auto b = rig.market.installApp(makeStub(), 1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(
      rig.market.upgradeApp(b.value(), makeStub(false, kSwapperManifestV2), 2)
          .ok());
  ASSERT_TRUE(rig.market.updatePolicy(kRestrictPolicy).ok());
  ASSERT_TRUE(rig.market.revokeApp(a.value(), "idempotency").ok());

  std::string live = rig.market.digest();
  std::size_t journalSize = rig.market.journal()->size();
  EXPECT_EQ(recoveredDigest(rig), live);
  EXPECT_EQ(recoveredDigest(rig), live);
  EXPECT_EQ(rig.market.journal()->size(), journalSize);

  // Second generation: recover from a recovered market's own journal.
  ctrl::Controller controller1;
  iso::ShieldRuntime shield1(controller1);
  auto copy1 =
      std::make_shared<market::MemoryJournal>(rig.market.journal()->records());
  auto gen1 = market::AppMarket::recover(
      shield1, lang::parsePolicy(kOpenPolicy), stubFactory(), copy1);
  EXPECT_EQ(gen1->digest(), live);
  EXPECT_EQ(copy1->size(), journalSize);  // replay appended nothing

  ctrl::Controller controller2;
  iso::ShieldRuntime shield2(controller2);
  auto copy2 =
      std::make_shared<market::MemoryJournal>(gen1->journal()->records());
  auto gen2 = market::AppMarket::recover(
      shield2, lang::parsePolicy(kOpenPolicy), stubFactory(), copy2);
  EXPECT_EQ(gen2->digest(), live);

  gen2.reset();
  shield2.shutdown();
  gen1.reset();
  shield1.shutdown();
  rig.shield.shutdown();
}

// A torn trailing line must not poison the journal for FUTURE appends: after
// recovering from the torn file the market keeps operating, and those new
// appends must start on a fresh line (the FileJournal constructor completes
// the newline-less remnant) instead of merging into the torn bytes. A third
// generation then replays pre-crash AND post-recovery records to the same
// digest.
TEST_F(MarketTest, TornTrailingLineThenNewAppendsStaysReplayable) {
  std::string path = ::testing::TempDir() + "market_journal_torn_append.log";
  std::remove(path.c_str());
  {
    Rig rig(std::make_shared<market::FileJournal>(path));
    ASSERT_TRUE(rig.market.installApp(makeStub(), 1).ok());
    rig.shield.shutdown();
  }
  {
    // Crash mid-append: torn, newline-less, undecodable trailing bytes.
    std::ofstream torn(path, std::ios::app);
    torn << "revoke_commit\t9\tgar";
  }
  std::string postDigest;
  {
    ctrl::Controller controller;
    iso::ShieldRuntime shield(controller);
    auto journal = std::make_shared<market::FileJournal>(path);
    auto recovered = market::AppMarket::recover(
        shield, lang::parsePolicy(kOpenPolicy), stubFactory(), journal);
    ASSERT_TRUE(recovered->installApp(makeStub(), 1).ok());
    ASSERT_TRUE(recovered->updatePolicy(kRestrictPolicy).ok());
    postDigest = recovered->digest();
    recovered.reset();
    shield.shutdown();
  }
  {
    ctrl::Controller controller;
    iso::ShieldRuntime shield(controller);
    auto journal = std::make_shared<market::FileJournal>(path);
    auto recovered = market::AppMarket::recover(
        shield, lang::parsePolicy(kOpenPolicy), stubFactory(), journal);
    EXPECT_EQ(recovered->digest(), postDigest);
    recovered.reset();
    shield.shutdown();
  }
  std::remove(path.c_str());
}

// --- leak regression: repeated install/uninstall ---------------------------

// 100 install/uninstall cycles of a subscribing app must return the engine
// grant table, the container registry, the async-window registry and the
// controller subscription lists to their baselines (the historical leak:
// window slots and subscriptions survived unload).
TEST_F(MarketTest, HundredInstallUninstallCyclesLeaveNoResidue) {
  Rig rig;
  Counts baseline = countsOf(rig);
  for (int i = 0; i < 100; ++i) {
    auto id = rig.market.installApp(makeStub(true));
    ASSERT_TRUE(id.ok());
    ASSERT_GT(rig.controller.subscriptionCount(), baseline.subscriptions);
    ASSERT_TRUE(rig.market.uninstallApp(id.value()).ok());
  }
  rig.shield.reclaimRetired();
  EXPECT_TRUE(countsOf(rig) == baseline);
  EXPECT_EQ(rig.shield.retiredCount(), 0u);
  EXPECT_EQ(rig.market.installedCount(), 0u);
  rig.shield.shutdown();
}

// Quarantine-path variant: revoke (no container join) must release the
// subscriptions and window slot just like a full uninstall does.
TEST_F(MarketTest, RevokeReleasesSubscriptions) {
  Rig rig;
  Counts baseline = countsOf(rig);
  auto id = rig.market.installApp(makeStub(true));
  ASSERT_TRUE(id.ok());
  ASSERT_GT(rig.controller.subscriptionCount(), baseline.subscriptions);
  ASSERT_TRUE(rig.market.revokeApp(id.value(), "leak test").ok());
  EXPECT_EQ(rig.controller.subscriptionCount(), baseline.subscriptions);
  EXPECT_EQ(rig.shield.engine().installedCount(), baseline.engineApps);
  EXPECT_EQ(rig.shield.windowCount(), baseline.windows);
  rig.shield.shutdown();
}

// --- atomic epoch swap under concurrent readers (TSan-covered) -------------

// 8 reader threads hammer check() across all installed apps while the
// market alternates between a permitting and a restricting policy. Every
// observation bracketed by an unchanged epoch must see ONE grant set across
// every app — all-old or all-new, never a mixture — and each successful
// updatePolicy bumps the epoch exactly once.
TEST_F(MarketTest, PolicySwapIsAtomicUnderConcurrentCheckers) {
  constexpr int kApps = 64;
  constexpr int kReaders = 8;
  constexpr int kUpdates = 10;

  Rig rig;
  std::vector<of::AppId> ids;
  for (int i = 0; i < kApps; ++i) {
    auto id = rig.market.installApp(makeStub());
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  engine::PermissionEngine& engine = rig.shield.engine();

  std::atomic<bool> stop{false};
  std::atomic<bool> mixedObserved{false};
  std::atomic<std::uint64_t> consistentObservations{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  // Scans every app; returns the epoch if it was stable across the whole
  // scan (0 otherwise) and reports whether the allow/deny verdicts mixed.
  auto scan = [&](bool* mixedOut) -> std::uint64_t {
    std::uint64_t epochBefore = engine.epoch();
    bool first = true;
    bool expected = false;
    bool mixed = false;
    for (of::AppId id : ids) {
      perm::ApiCall call;
      call.type = perm::ApiCallType::kReadStatistics;
      call.app = id;
      call.statsLevel = of::StatsLevel::kSwitch;
      bool allowed = engine.check(call).allowed;
      if (first) {
        expected = allowed;
        first = false;
      } else if (allowed != expected) {
        mixed = true;
      }
    }
    if (engine.epoch() != epochBefore) return 0;
    *mixedOut = mixed;
    return epochBefore;
  };
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        bool mixed = false;
        std::uint64_t epoch = scan(&mixed);
        if (epoch == 0) continue;  // swap raced the scan; resample
        if (!mixed) {
          consistentObservations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // installAll publishes the map pointer before bumping the version,
        // so a scan can straddle that window and look mixed at a "stable"
        // epoch. A genuinely torn grant set would PERSIST: rescan at the
        // same epoch — only a still-mixed verdict is a real violation
        // (every app shares one manifest and one policy).
        bool mixedAgain = false;
        if (scan(&mixedAgain) == epoch && mixedAgain) {
          mixedObserved.store(true);
        }
      }
    });
  }

  std::uint64_t epochStart = engine.epoch();
  for (int u = 0; u < kUpdates; ++u) {
    std::uint64_t before = engine.epoch();
    ASSERT_TRUE(rig.market
                    .updatePolicy(u % 2 == 0 ? kRestrictPolicy : kOpenPolicy)
                    .ok());
    EXPECT_EQ(engine.epoch(), before + 1);  // ONE bump per policy push
  }
  EXPECT_EQ(engine.epoch(), epochStart + kUpdates);
  // The incremental-reconcile cache makes the update loop finish in
  // microseconds, so on a loaded single-core host the readers may not have
  // completed a single stable-epoch scan yet. Give them a bounded window to
  // observe the settled table before stopping — the assertion is that
  // consistent observations ARE possible, not that they happened mid-churn.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consistentObservations.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_FALSE(mixedObserved.load());
  EXPECT_GT(consistentObservations.load(), 0u);
  rig.shield.shutdown();
}

}  // namespace
}  // namespace sdnshield
