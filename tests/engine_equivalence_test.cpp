// Compiled-checker fidelity: the permission engine's flat postfix programs
// must agree with direct AST evaluation of the same filter expressions, for
// every token, on randomized manifests and call traces. This pins the
// engine's compilation step (the part the Figure-5 hot path rides on).
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "cbench/generator.h"
#include "core/engine/permission_engine.h"

namespace sdnshield::engine {
namespace {

/// Direct (uncompiled) check: token lookup + AST evaluation.
Decision referenceCheck(const perm::PermissionSet& permissions,
                        const perm::ApiCall& call) {
  perm::Token token = perm::requiredToken(call.type);
  auto filter = permissions.filterFor(token);
  if (!filter) return Decision::deny("missing token");
  if (*filter && !(*filter)->evaluate(call)) {
    return Decision::deny("filter rejected");
  }
  return Decision::allow();
}

class EquivalenceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EquivalenceTest, CompiledProgramsMatchAstEvaluation) {
  std::uint64_t seed = GetParam();
  perm::PermissionSet manifest = cbench::makeSyntheticManifest(15, seed);
  CompiledPermissions compiled(manifest);
  auto trace = cbench::makeSyntheticTrace(manifest, 500, 0.3, seed + 1);
  for (const perm::ApiCall& call : trace) {
    EXPECT_EQ(compiled.check(call).allowed,
              referenceCheck(manifest, call).allowed)
        << call.toString();
  }
}

TEST_P(EquivalenceTest, HoldsForRandomHandWrittenExpressions) {
  std::mt19937 rng(GetParam());
  using perm::FilterExpr;
  using perm::FilterExprPtr;
  using perm::FilterPtr;

  // Random expression over priority/ownership/pkt-out filters (attributes
  // every call below carries).
  std::function<FilterExprPtr(int)> build = [&](int depth) -> FilterExprPtr {
    if (depth == 0 || rng() % 3 == 0) {
      switch (rng() % 3) {
        case 0:
          return FilterExpr::singleton(FilterPtr{new perm::PriorityFilter(
              rng() % 2 == 0, static_cast<std::uint16_t>(rng() % 100))});
        case 1:
          return FilterExpr::singleton(
              FilterPtr{new perm::OwnershipFilter(rng() % 2 == 0)});
        default:
          return FilterExpr::singleton(FilterPtr{new perm::TableSizeFilter(
              static_cast<std::size_t>(rng() % 20))});
      }
    }
    switch (rng() % 3) {
      case 0:
        return FilterExpr::conj(build(depth - 1), build(depth - 1));
      case 1:
        return FilterExpr::disj(build(depth - 1), build(depth - 1));
      default:
        return FilterExpr::negate(build(depth - 1));
    }
  };
  FilterExprPtr expr = build(5);
  perm::PermissionSet manifest;
  manifest.grant(perm::Token::kInsertFlow, expr);
  CompiledPermissions compiled(manifest);

  for (int i = 0; i < 300; ++i) {
    of::FlowMod mod;
    mod.match.tpDst = 80;
    mod.priority = static_cast<std::uint16_t>(rng() % 100);
    mod.actions.push_back(of::OutputAction{1});
    perm::ApiCall call = perm::ApiCall::insertFlow(1, 1, mod);
    call.ownFlow = rng() % 2 == 0;
    call.ruleCountAfter = rng() % 20;
    EXPECT_EQ(compiled.check(call).allowed, expr->evaluate(call))
        << expr->toString() << " on " << call.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest, ::testing::Range(0u, 25u));

}  // namespace
}  // namespace sdnshield::engine
