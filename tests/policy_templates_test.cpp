// Distributable policy templates (§III): each per-class template must parse,
// catch the corresponding over-privileged manifest, and leave benign
// manifests alone.
#include "core/reconcile/policy_templates.h"

#include <gtest/gtest.h>

#include "apps/l2_learning.h"
#include "apps/malicious/flow_tunneler.h"
#include "apps/malicious/info_leaker.h"
#include "apps/malicious/route_hijacker.h"
#include "apps/malicious/rst_injector.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/reconcile/reconciler.h"

namespace sdnshield::reconcile {
namespace {

using lang::parseManifest;
using lang::parsePolicy;
using perm::Token;

TEST(PolicyTemplates, AllTemplatesParse) {
  EXPECT_NO_THROW(parsePolicy(templates::class1DataPlaneIntrusion()));
  EXPECT_NO_THROW(parsePolicy(
      templates::class2InformationLeakage("app", of::Ipv4Address(10, 1, 0, 0), 16)));
  EXPECT_NO_THROW(parsePolicy(templates::class3RuleManipulation("app")));
  EXPECT_NO_THROW(parsePolicy(templates::class4AppInterference("app")));
  EXPECT_NO_THROW(parsePolicy(templates::baselineProfile(
      "app", of::Ipv4Address(10, 1, 0, 0), 16)));
}

TEST(PolicyTemplates, Class1SplitsSniffingFromNetworkAccess) {
  // An app asking for both packet-in visibility and outside network access
  // — the remote-sniffer pattern — loses one side.
  auto manifest = parseManifest(
      "APP spy\nPERM pkt_in_event\nPERM read_payload\nPERM network_access\n");
  Reconciler reconciler(parsePolicy(templates::class1DataPlaneIntrusion()));
  auto result = reconciler.reconcile(manifest);
  EXPECT_FALSE(result.clean());
  bool bothSidesHeld = result.finalPermissions.has(Token::kPktInEvent) &&
                       result.finalPermissions.has(Token::kHostNetwork);
  EXPECT_FALSE(bothSidesHeld);
}

TEST(PolicyTemplates, Class1SplitsInjectionFromNetworkAccess) {
  auto manifest = parseManifest(
      "APP injector\nPERM send_pkt_out\nPERM network_access\n");
  Reconciler reconciler(parsePolicy(templates::class1DataPlaneIntrusion()));
  auto result = reconciler.reconcile(manifest);
  bool bothSidesHeld = result.finalPermissions.has(Token::kSendPktOut) &&
                       result.finalPermissions.has(Token::kHostNetwork);
  EXPECT_FALSE(bothSidesHeld);
}

TEST(PolicyTemplates, Class2SeparatesVisibilityFromHostEscapes) {
  auto manifest = parseManifest(
      "APP exfil\nPERM visible_topology\nPERM file_system\n");
  Reconciler reconciler(parsePolicy(
      templates::class2InformationLeakage("app", of::Ipv4Address(10, 1, 0, 0), 16)));
  auto result = reconciler.reconcile(manifest);
  bool bothSidesHeld = result.finalPermissions.has(Token::kVisibleTopology) &&
                       result.finalPermissions.has(Token::kFileSystem);
  EXPECT_FALSE(bothSidesHeld);
}

TEST(PolicyTemplates, Class2ProvidesAdminRangeStub) {
  // The template's AdminRange binding resolves the classic manifest stub.
  auto manifest = parseManifest(
      "APP monitor\nPERM network_access LIMITING AdminRange\n");
  Reconciler reconciler(parsePolicy(
      templates::class2InformationLeakage("app", of::Ipv4Address(10, 1, 0, 0), 16)));
  auto result = reconciler.reconcile(manifest);
  perm::FilterExprPtr filter =
      *result.finalPermissions.filterFor(Token::kHostNetwork);
  ASSERT_NE(filter, nullptr);
  EXPECT_TRUE(filter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(10, 1, 9, 9), 80)));
  EXPECT_FALSE(filter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(203, 0, 113, 66), 80)));
}

TEST(PolicyTemplates, Class3ConfinesTheRouteHijacker) {
  apps::RouteHijackerApp attacker(of::Ipv4Address(10, 0, 0, 3),
                                  of::Ipv4Address(10, 0, 0, 2));
  auto manifest = parseManifest(attacker.requestedManifest());
  Reconciler reconciler(
      parsePolicy(templates::class3RuleManipulation("route_hijacker")));
  auto result = reconciler.reconcile(manifest);
  EXPECT_FALSE(result.clean());
  // insert_flow survives but confined to own, forward-only flows: the
  // hijack (overriding the routing app's rules) becomes impossible.
  perm::FilterExprPtr filter =
      *result.finalPermissions.filterFor(Token::kInsertFlow);
  ASSERT_NE(filter, nullptr);
  of::FlowMod overriding;
  overriding.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 3)};
  overriding.priority = 50;
  overriding.actions.push_back(of::OutputAction{1});
  perm::ApiCall call = perm::ApiCall::insertFlow(1, 1, overriding);
  call.ownFlow = false;  // Overrides a foreign rule.
  EXPECT_FALSE(filter->evaluate(call));
  call.ownFlow = true;
  EXPECT_TRUE(filter->evaluate(call));
}

TEST(PolicyTemplates, Class4StopsTheFlowTunneler) {
  apps::FlowTunnelerApp attacker(23, 80);
  auto manifest = parseManifest(attacker.requestedManifest());
  Reconciler reconciler(
      parsePolicy(templates::class4AppInterference("flow_tunneler")));
  auto result = reconciler.reconcile(manifest);
  perm::FilterExprPtr filter =
      *result.finalPermissions.filterFor(Token::kInsertFlow);
  ASSERT_NE(filter, nullptr);
  of::FlowMod rewriting;
  of::SetFieldAction rewrite;
  rewrite.field = of::MatchField::kTpDst;
  rewrite.intValue = 80;
  rewriting.match.tpDst = 23;
  rewriting.actions.push_back(rewrite);
  rewriting.actions.push_back(of::OutputAction{2});
  EXPECT_FALSE(filter->evaluate(perm::ApiCall::insertFlow(1, 1, rewriting)));
  of::FlowMod forwarding;
  forwarding.match.tpDst = 80;
  forwarding.actions.push_back(of::OutputAction{2});
  EXPECT_TRUE(filter->evaluate(perm::ApiCall::insertFlow(1, 1, forwarding)));
}

TEST(PolicyTemplates, BenignL2AppPassesTheBaselineProfile) {
  apps::L2LearningSwitch app;
  auto manifest = parseManifest(app.requestedManifest());
  Reconciler reconciler(parsePolicy(templates::baselineProfile(
      "l2_learning", of::Ipv4Address(10, 1, 0, 0), 16)));
  auto result = reconciler.reconcile(manifest);
  // The L2 app keeps everything it needs to function.
  EXPECT_TRUE(result.finalPermissions.has(Token::kPktInEvent));
  EXPECT_TRUE(result.finalPermissions.has(Token::kSendPktOut));
  EXPECT_TRUE(result.finalPermissions.has(Token::kInsertFlow));
}

TEST(PolicyTemplates, InfoLeakerUnderBaselineProfileCannotExfiltrate) {
  apps::InfoLeakerApp attacker(of::Ipv4Address(203, 0, 113, 66));
  auto manifest = parseManifest(attacker.requestedManifest());
  Reconciler reconciler(parsePolicy(templates::baselineProfile(
      "info_leaker", of::Ipv4Address(10, 1, 0, 0), 16)));
  auto result = reconciler.reconcile(manifest);
  // Either network access is gone entirely, or it survives unconstrained
  // visibility-wise — in which case the leaker keeps its grant but class-1
  // exclusions have stripped data-plane access. Check the concrete attack:
  // sending to the evil collector must not be possible via a granted,
  // unrestricted network permission *and* topology visibility together.
  bool canSee = result.finalPermissions.has(Token::kVisibleTopology);
  bool canSendAnywhere = false;
  if (auto grant = result.finalPermissions.filterFor(Token::kHostNetwork)) {
    canSendAnywhere =
        !*grant ||
        (*grant)->evaluate(perm::ApiCall::hostNetwork(
            1, of::Ipv4Address(203, 0, 113, 66), 4444));
  }
  EXPECT_FALSE(canSee && canSendAnywhere)
      << result.finalPermissions.toString();
}

}  // namespace
}  // namespace sdnshield::reconcile
