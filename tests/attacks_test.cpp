// Effectiveness tests (paper §IX-B.1): the four proof-of-concept attacks
// succeed on the baseline monolithic controller and are all blocked under
// SDNShield with the Scenario-1-style reconciled permissions.
#include <gtest/gtest.h>

#include <chrono>

#include "apps/firewall.h"
#include "apps/malicious/flow_tunneler.h"
#include "apps/malicious/info_leaker.h"
#include "apps/malicious/route_hijacker.h"
#include "apps/malicious/rst_injector.h"
#include "apps/routing.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/reconcile/reconciler.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace sdnshield::apps {
namespace {

using namespace std::chrono_literals;

const of::Ipv4Address kEvilIp(203, 0, 113, 66);

/// The Scenario-1 permissions after reconciliation (§VII): limited topology
/// view, statistics, network access to the admin range only — and no
/// insert_flow, pkt-in or pkt-out privileges at all.
perm::PermissionSet scenario1Permissions() {
  return lang::parsePermissions(
      "PERM visible_topology LIMITING SWITCH {1,2,3} LINK {(1,2),(2,3)}\n"
      "PERM read_statistics\n"
      "PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0\n");
}

struct Testbed {
  Testbed() : network(controller) {
    network.buildLinear(3);
    h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
    h2 = network.hostByIp(of::Ipv4Address(10, 0, 0, 2));
    h3 = network.hostByIp(of::Ipv4Address(10, 0, 0, 3));
  }

  ctrl::Controller controller;
  sim::SimNetwork network;
  std::shared_ptr<sim::SimHost> h1, h2, h3;
};

// --- Class 1: RST injection -----------------------------------------------------

TEST(Attack1RstInjection, SucceedsOnBaseline) {
  Testbed bed;
  iso::BaselineRuntime runtime(bed.controller);
  auto routing = std::make_shared<ShortestPathRoutingApp>();
  auto attacker = std::make_shared<RstInjectorApp>(80);
  runtime.loadApp(routing);
  runtime.loadApp(attacker);

  // h1 opens an HTTP session to h3: the first packet punts, the attacker
  // sees it and injects a RST back at h1.
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40000, 80, of::tcpflags::kSyn));
  EXPECT_GE(attacker->rstsSent(), 1u);
  bool rstDelivered = false;
  for (const of::Packet& packet : bed.h1->received()) {
    if (packet.tcp && (packet.tcp->flags & of::tcpflags::kRst)) {
      rstDelivered = true;
    }
  }
  EXPECT_TRUE(rstDelivered);
}

TEST(Attack1RstInjection, BlockedBySdnShield) {
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto routing = std::make_shared<ShortestPathRoutingApp>();
  shield.loadApp(routing, lang::parsePermissions(routing->requestedManifest()));
  auto attacker = std::make_shared<RstInjectorApp>(80);
  shield.loadApp(attacker, scenario1Permissions());

  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40000, 80, of::tcpflags::kSyn));
  ASSERT_TRUE(bed.h3->waitForPackets(1, 2000ms));  // Legit traffic flows.
  // The attacker could not even subscribe to packet-ins, let alone inject.
  EXPECT_EQ(attacker->rstsSent(), 0u);
  for (const of::Packet& packet : bed.h1->received()) {
    EXPECT_FALSE(packet.tcp && (packet.tcp->flags & of::tcpflags::kRst));
  }
}

TEST(Attack1RstInjection, FromPktInFilterAloneStopsFabrication) {
  // Even with pkt-in visibility granted, the FROM_PKT_IN pkt-out filter
  // stops the forged RST (defence in depth).
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto attacker = std::make_shared<RstInjectorApp>(80);
  shield.loadApp(attacker, lang::parsePermissions(
                               "PERM pkt_in_event\nPERM read_payload\n"
                               "PERM send_pkt_out LIMITING FROM_PKT_IN\n"));
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40000, 80, of::tcpflags::kSyn));
  // Drain the attacker's event processing.
  auto container = shield.container(1);
  ASSERT_NE(container, nullptr);
  container->postAndWait([] {});
  EXPECT_EQ(attacker->rstsSent(), 0u);
  EXPECT_GE(attacker->sendsDenied(), 1u);
}

// --- Class 2: information leakage --------------------------------------------------

TEST(Attack2InfoLeak, SucceedsOnBaseline) {
  Testbed bed;
  iso::BaselineRuntime runtime(bed.controller);
  auto attacker = std::make_shared<InfoLeakerApp>(kEvilIp);
  runtime.loadApp(attacker);
  EXPECT_TRUE(attacker->leak());
  auto leaked = runtime.hostSystem().netMessagesTo(kEvilIp);
  ASSERT_EQ(leaked.size(), 1u);
  // The stolen payload really contains network internals.
  EXPECT_NE(leaked[0].data.find("links:"), std::string::npos);
  EXPECT_NE(leaked[0].data.find("hosts:"), std::string::npos);
}

TEST(Attack2InfoLeak, BlockedBySdnShield) {
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto attacker = std::make_shared<InfoLeakerApp>(kEvilIp);
  of::AppId id = shield.loadApp(attacker, scenario1Permissions());
  // Run the leak inside the sandbox, as the compromised app would.
  shield.container(id)->postAndWait([&] { attacker->leak(); });
  EXPECT_EQ(attacker->leaksSucceeded(), 0u);
  EXPECT_EQ(attacker->leaksBlocked(), 1u);
  EXPECT_TRUE(shield.hostSystem().netMessagesTo(kEvilIp).empty());
}

TEST(Attack2InfoLeak, AdminRangeReportingStillWorks) {
  // The same permissions allow the legitimate admin-range reporting path —
  // minimum privilege, not total lockdown.
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto attacker = std::make_shared<InfoLeakerApp>(of::Ipv4Address(10, 1, 0, 9));
  of::AppId id = shield.loadApp(attacker, scenario1Permissions());
  shield.container(id)->postAndWait([&] { attacker->leak(); });
  EXPECT_EQ(attacker->leaksSucceeded(), 1u);
}

// --- Class 3: route hijacking -------------------------------------------------------

TEST(Attack3RouteHijack, SucceedsOnBaseline) {
  Testbed bed;
  iso::BaselineRuntime runtime(bed.controller);
  auto routing = std::make_shared<ShortestPathRoutingApp>();
  runtime.loadApp(routing);
  // Attacker controls h2 (middle); victims talk h1 -> h3.
  auto attacker =
      std::make_shared<RouteHijackerApp>(bed.h3->ip(), bed.h2->ip());
  runtime.loadApp(attacker);

  // Legitimate path first.
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40000, 80, of::tcpflags::kSyn));
  ASSERT_EQ(bed.h3->receivedCount(), 1u);

  ASSERT_TRUE(attacker->hijack());
  EXPECT_GT(attacker->rulesInstalled(), 0u);
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40001, 80, of::tcpflags::kSyn));
  // The packet destined to h3 was delivered to the attacker's host instead.
  ASSERT_EQ(bed.h2->receivedCount(), 1u);
  EXPECT_EQ(bed.h2->received()[0].ipv4->dst, bed.h3->ip());
  EXPECT_EQ(bed.h3->receivedCount(), 1u);  // No new delivery to the victim.
}

TEST(Attack3RouteHijack, BlockedBySdnShield) {
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto routing = std::make_shared<ShortestPathRoutingApp>();
  shield.loadApp(routing, lang::parsePermissions(routing->requestedManifest()));
  auto attacker =
      std::make_shared<RouteHijackerApp>(bed.h3->ip(), bed.h2->ip());
  shield.loadApp(attacker, scenario1Permissions());

  EXPECT_FALSE(attacker->hijack());
  EXPECT_EQ(attacker->rulesInstalled(), 0u);
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40000, 80, of::tcpflags::kSyn));
  ASSERT_TRUE(bed.h3->waitForPackets(1, 2000ms));
  EXPECT_EQ(bed.h2->receivedCount(), 0u);  // Nothing diverted.
}

TEST(Attack3RouteHijack, OwnFlowsFilterAloneStopsOverride) {
  // Even granted insert_flow, an OWN_FLOWS filter stops rewriting the
  // routing app's paths.
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto routing = std::make_shared<ShortestPathRoutingApp>();
  shield.loadApp(routing, lang::parsePermissions(routing->requestedManifest()));
  auto attacker =
      std::make_shared<RouteHijackerApp>(bed.h3->ip(), bed.h2->ip());
  shield.loadApp(attacker,
                 lang::parsePermissions(
                     "PERM visible_topology\n"
                     "PERM insert_flow LIMITING OWN_FLOWS\n"));

  // Establish the legitimate route first.
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40000, 80, of::tcpflags::kSyn));
  ASSERT_TRUE(bed.h3->waitForPackets(1, 2000ms));
  // The hijack rules overlap the routing app's rules at higher priority:
  // every one of them is rejected by the ownership filter.
  EXPECT_FALSE(attacker->hijack());
  EXPECT_EQ(attacker->rulesInstalled(), 0u);
  EXPECT_GT(attacker->rulesDenied(), 0u);
}

// --- Class 4: dynamic-flow tunneling ---------------------------------------------------

struct TunnelBed : Testbed {
  TunnelBed() {
    // Routing + firewall: TCP/23 blocked at the chokepoint s2.
  }
};

TEST(Attack4FlowTunnel, SucceedsOnBaseline) {
  Testbed bed;
  iso::BaselineRuntime runtime(bed.controller);
  auto routing = std::make_shared<ShortestPathRoutingApp>();
  auto firewall = std::make_shared<FirewallApp>();
  runtime.loadApp(routing);
  runtime.loadApp(firewall);
  ASSERT_TRUE(firewall->blockTcpDstPort(2, 23));

  // Warm the routing path with allowed traffic.
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40000, 80, of::tcpflags::kSyn));
  ASSERT_EQ(bed.h3->receivedCount(), 1u);
  // Telnet is blocked by the firewall.
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40001, 23, of::tcpflags::kSyn));
  ASSERT_EQ(bed.h3->receivedCount(), 1u);

  // The tunneler rewrites 23 -> 80 at s1 and back at s3: firewall evaded.
  auto attacker = std::make_shared<FlowTunnelerApp>(23, 80);
  runtime.loadApp(attacker);
  ASSERT_TRUE(attacker->establishTunnel(bed.h1->ip(), bed.h3->ip()));
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40002, 23, of::tcpflags::kSyn));
  ASSERT_EQ(bed.h3->receivedCount(), 2u);
  EXPECT_EQ(bed.h3->received()[1].tcp->dstPort, 23);  // Restored at egress.
}

TEST(Attack4FlowTunnel, BlockedBySdnShield) {
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto routing = std::make_shared<ShortestPathRoutingApp>();
  auto firewall = std::make_shared<FirewallApp>();
  shield.loadApp(routing, lang::parsePermissions(routing->requestedManifest()));
  shield.loadApp(firewall, lang::parsePermissions(firewall->requestedManifest()));
  ASSERT_TRUE(firewall->blockTcpDstPort(2, 23));

  auto attacker = std::make_shared<FlowTunnelerApp>(23, 80);
  shield.loadApp(attacker, scenario1Permissions());
  EXPECT_FALSE(attacker->establishTunnel(bed.h1->ip(), bed.h3->ip()));
  EXPECT_EQ(attacker->rulesInstalled(), 0u);

  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h3->mac(), bed.h1->ip(),
                                   bed.h3->ip(), 40001, 23, of::tcpflags::kSyn));
  // Give the async pipeline time: the packet must NOT arrive.
  EXPECT_FALSE(bed.h3->waitForPackets(1, 300ms));
}

TEST(Attack4FlowTunnel, ActionForwardFilterAloneStopsRewriting) {
  // Scenario 2's ACTION FORWARD filter: even with insert_flow, header
  // rewriting (the tunnel's mechanism) is rejected.
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto attacker = std::make_shared<FlowTunnelerApp>(23, 80);
  shield.loadApp(attacker,
                 lang::parsePermissions(
                     "PERM visible_topology\n"
                     "PERM insert_flow LIMITING ACTION FORWARD\n"));
  EXPECT_FALSE(attacker->establishTunnel(bed.h1->ip(), bed.h3->ip()));
  EXPECT_EQ(attacker->rulesInstalled(), 0u);
  EXPECT_EQ(attacker->rulesDenied(), 2u);
}

// --- Forensics --------------------------------------------------------------------------

TEST(Forensics, DeniedAttackCallsAreAudited) {
  Testbed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto attacker = std::make_shared<InfoLeakerApp>(kEvilIp);
  of::AppId id = shield.loadApp(attacker, scenario1Permissions());
  shield.container(id)->postAndWait([&] { attacker->leak(); });
  auto entries = bed.controller.audit().entriesFor(id);
  ASSERT_FALSE(entries.empty());
  bool sawDeniedHostCall = false;
  for (const auto& entry : entries) {
    if (!entry.allowed &&
        entry.callType == perm::ApiCallType::kHostNetworkAccess) {
      sawDeniedHostCall = true;
    }
  }
  EXPECT_TRUE(sawDeniedHostCall);
}

}  // namespace
}  // namespace sdnshield::apps
