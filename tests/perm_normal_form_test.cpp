// CNF/DNF conversion and Algorithm 1 (filter inclusion): unit cases from the
// paper plus property tests — normal forms must preserve semantics on random
// expressions, and a positive inclusion verdict must never contradict
// observed evaluation (soundness).
#include "core/perm/normal_form.h"

#include <gtest/gtest.h>

#include <random>

namespace sdnshield::perm {
namespace {

FilterExprPtr ipDst(std::uint8_t b, int bits) {
  return FilterExpr::singleton(FilterPtr{new FieldPredicateFilter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, b, 0, 0),
                     of::Ipv4Address::prefixMask(bits)})});
}

FilterExprPtr maxPriority(std::uint16_t bound) {
  return FilterExpr::singleton(FilterPtr{new PriorityFilter(true, bound)});
}

FilterExprPtr ownFlows() {
  return FilterExpr::singleton(FilterPtr{new OwnershipFilter(true)});
}

ApiCall makeCall(std::uint8_t subnet, std::uint8_t host,
                 std::uint16_t priority, bool own) {
  of::FlowMod mod;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, subnet, 0, host)};
  mod.priority = priority;
  mod.actions.push_back(of::OutputAction{1});
  ApiCall call = ApiCall::insertFlow(1, 1, mod);
  call.ownFlow = own;
  return call;
}

TEST(NormalForm, CnfOfSingletonIsOneUnitClause) {
  Cnf cnf = toCnf(ipDst(1, 16));
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].size(), 1u);
  EXPECT_FALSE(cnf.clauses[0][0].negated);
}

TEST(NormalForm, CnfDistributesOrOverAnd) {
  // (a AND b) OR c -> (a OR c) AND (b OR c).
  FilterExprPtr expr = FilterExpr::disj(
      FilterExpr::conj(ipDst(1, 16), maxPriority(10)), ownFlows());
  Cnf cnf = toCnf(expr);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[1].size(), 2u);
}

TEST(NormalForm, DnfDistributesAndOverOr) {
  // (a OR b) AND c -> (a AND c) OR (b AND c).
  FilterExprPtr expr = FilterExpr::conj(
      FilterExpr::disj(ipDst(1, 16), ipDst(2, 16)), maxPriority(10));
  Dnf dnf = toDnf(expr);
  ASSERT_EQ(dnf.clauses.size(), 2u);
  EXPECT_EQ(dnf.clauses[0].size(), 2u);
}

TEST(NormalForm, NegationPushesToLiterals) {
  // NOT (a AND b) -> (!a OR !b): one CNF clause of two negated literals.
  FilterExprPtr expr =
      FilterExpr::negate(FilterExpr::conj(ipDst(1, 16), maxPriority(10)));
  Cnf cnf = toCnf(expr);
  ASSERT_EQ(cnf.clauses.size(), 1u);
  ASSERT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_TRUE(cnf.clauses[0][0].negated);
  EXPECT_TRUE(cnf.clauses[0][1].negated);
}

TEST(NormalForm, DoubleNegationCancels) {
  FilterExprPtr expr = FilterExpr::negate(FilterExpr::negate(ipDst(1, 16)));
  Dnf dnf = toDnf(expr);
  ASSERT_EQ(dnf.clauses.size(), 1u);
  EXPECT_FALSE(dnf.clauses[0][0].negated);
}

TEST(NormalForm, ContradictoryDnfClauseIsPruned) {
  // a AND NOT a is unsatisfiable.
  FilterExprPtr a = ipDst(1, 16);
  FilterExprPtr expr = FilterExpr::conj(a, FilterExpr::negate(ipDst(1, 16)));
  Dnf dnf = toDnf(expr);
  EXPECT_TRUE(dnf.clauses.empty());
}

TEST(NormalForm, TautologicalCnfClauseIsPruned) {
  FilterExprPtr expr = FilterExpr::disj(ipDst(1, 16),
                                        FilterExpr::negate(ipDst(1, 16)));
  Cnf cnf = toCnf(expr);
  EXPECT_TRUE(cnf.clauses.empty());  // Empty CNF = true.
}

TEST(LiteralInclusion, PositivePairsUseFilterInclusion) {
  Literal wide{FilterPtr{new FieldPredicateFilter(
                   of::MatchField::kIpDst,
                   of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 0),
                                  of::Ipv4Address::prefixMask(8)})},
               false};
  Literal narrow{FilterPtr{new FieldPredicateFilter(
                     of::MatchField::kIpDst,
                     of::MaskedIpv4{of::Ipv4Address(10, 1, 0, 0),
                                    of::Ipv4Address::prefixMask(16)})},
                 false};
  EXPECT_TRUE(literalIncludes(wide, narrow));
  EXPECT_FALSE(literalIncludes(narrow, wide));
}

TEST(LiteralInclusion, NegatedPairsReverse) {
  Literal wide{FilterPtr{new FieldPredicateFilter(
                   of::MatchField::kIpDst,
                   of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 0),
                                  of::Ipv4Address::prefixMask(8)})},
               true};
  Literal narrow{FilterPtr{new FieldPredicateFilter(
                     of::MatchField::kIpDst,
                     of::MaskedIpv4{of::Ipv4Address(10, 1, 0, 0),
                                    of::Ipv4Address::prefixMask(16)})},
                 true};
  // ¬(10.0/8) ⊆ ¬(10.1/16), so inclusion holds with narrow as superset.
  EXPECT_TRUE(literalIncludes(narrow, wide));
  EXPECT_FALSE(literalIncludes(wide, narrow));
}

TEST(LiteralInclusion, MixedPolarityIsConservativelyFalse) {
  Literal pos{FilterPtr{new OwnershipFilter(false)}, false};
  Literal neg{FilterPtr{new OwnershipFilter(true)}, true};
  EXPECT_FALSE(literalIncludes(pos, neg));
  EXPECT_FALSE(literalIncludes(neg, pos));
}

TEST(FilterIncludes, PaperExampleSlash24InsideSlash16) {
  // An insert_flow on 10.13/16 includes the same permission on 10.13.1/24.
  FilterExprPtr wide = ipDst(13, 16);
  FilterExprPtr narrow = FilterExpr::singleton(
      FilterPtr{new FieldPredicateFilter(
          of::MatchField::kIpDst,
          of::MaskedIpv4{of::Ipv4Address(10, 13, 1, 0),
                         of::Ipv4Address::prefixMask(24)})});
  EXPECT_TRUE(filterIncludes(wide, narrow));
  EXPECT_FALSE(filterIncludes(narrow, wide));
}

TEST(FilterIncludes, NullSupersetIsUnrestricted) {
  EXPECT_TRUE(filterIncludes(nullptr, ipDst(1, 16)));
  EXPECT_TRUE(filterIncludes(nullptr, nullptr));
  EXPECT_FALSE(filterIncludes(ipDst(1, 16), nullptr));
}

TEST(FilterIncludes, DisjunctionWidensConjunctionNarrows) {
  FilterExprPtr base = ipDst(1, 16);
  FilterExprPtr wider = FilterExpr::disj(ipDst(1, 16), ipDst(2, 16));
  FilterExprPtr narrower = FilterExpr::conj(ipDst(1, 16), maxPriority(10));
  EXPECT_TRUE(filterIncludes(wider, base));
  EXPECT_TRUE(filterIncludes(base, narrower));
  EXPECT_TRUE(filterIncludes(wider, narrower));
  EXPECT_FALSE(filterIncludes(narrower, wider));
}

TEST(FilterIncludes, CrossDimensionIsIncomparable) {
  EXPECT_FALSE(filterIncludes(ipDst(1, 16), maxPriority(10)));
  EXPECT_FALSE(filterIncludes(maxPriority(10), ipDst(1, 16)));
}

TEST(FilterIncludes, MultiClauseCase) {
  // (A16 AND P100) OR (B16 AND P100)  includes  (A24 AND P50).
  auto a16 = ipDst(1, 16);
  auto b16 = ipDst(2, 16);
  FilterExprPtr super = FilterExpr::disj(
      FilterExpr::conj(a16, maxPriority(100)),
      FilterExpr::conj(b16, maxPriority(100)));
  FilterExprPtr a24 = FilterExpr::singleton(
      FilterPtr{new FieldPredicateFilter(
          of::MatchField::kIpDst,
          of::MaskedIpv4{of::Ipv4Address(10, 1, 5, 0),
                         of::Ipv4Address::prefixMask(24)})});
  FilterExprPtr sub = FilterExpr::conj(a24, maxPriority(50));
  EXPECT_TRUE(filterIncludes(super, sub));
  EXPECT_FALSE(filterIncludes(sub, super));
}

TEST(FilterEquivalent, CommutedOperandsAreEquivalent) {
  FilterExprPtr a = FilterExpr::conj(ipDst(1, 16), maxPriority(10));
  FilterExprPtr b = FilterExpr::conj(maxPriority(10), ipDst(1, 16));
  EXPECT_TRUE(filterEquivalent(a, b));
  EXPECT_TRUE(filterEquivalent(nullptr, nullptr));
  EXPECT_FALSE(filterEquivalent(a, nullptr));
}

// --- property tests ------------------------------------------------------------

class NormalFormPropertyTest : public ::testing::TestWithParam<unsigned> {};

FilterExprPtr randomExpr(std::mt19937& rng, int depth) {
  if (depth == 0 || rng() % 3 == 0) {
    switch (rng() % 3) {
      case 0:
        return ipDst(static_cast<std::uint8_t>(rng() % 3), 16);
      case 1:
        return maxPriority(static_cast<std::uint16_t>((rng() % 3) * 50));
      default:
        return ownFlows();
    }
  }
  switch (rng() % 3) {
    case 0:
      return FilterExpr::conj(randomExpr(rng, depth - 1),
                              randomExpr(rng, depth - 1));
    case 1:
      return FilterExpr::disj(randomExpr(rng, depth - 1),
                              randomExpr(rng, depth - 1));
    default:
      return FilterExpr::negate(randomExpr(rng, depth - 1));
  }
}

ApiCall randomCall(std::mt19937& rng) {
  return makeCall(static_cast<std::uint8_t>(rng() % 4),
                  static_cast<std::uint8_t>(rng() % 250 + 1),
                  static_cast<std::uint16_t>(rng() % 200), rng() % 2 == 0);
}

TEST_P(NormalFormPropertyTest, CnfPreservesSemantics) {
  std::mt19937 rng(GetParam());
  FilterExprPtr expr = randomExpr(rng, 4);
  Cnf cnf = toCnf(expr);
  for (int i = 0; i < 100; ++i) {
    ApiCall call = randomCall(rng);
    EXPECT_EQ(cnf.evaluate(call), expr->evaluate(call))
        << "expr=" << expr->toString() << " cnf=" << cnf.toString();
  }
}

TEST_P(NormalFormPropertyTest, DnfPreservesSemantics) {
  std::mt19937 rng(GetParam() + 500);
  FilterExprPtr expr = randomExpr(rng, 4);
  Dnf dnf = toDnf(expr);
  for (int i = 0; i < 100; ++i) {
    ApiCall call = randomCall(rng);
    EXPECT_EQ(dnf.evaluate(call), expr->evaluate(call))
        << "expr=" << expr->toString() << " dnf=" << dnf.toString();
  }
}

TEST_P(NormalFormPropertyTest, InclusionVerdictIsSound) {
  // Algorithm 1 answering "includes" must never be contradicted by an
  // observed call that the subset allows and the superset rejects.
  std::mt19937 rng(GetParam() + 1000);
  FilterExprPtr super = randomExpr(rng, 3);
  FilterExprPtr sub = randomExpr(rng, 3);
  if (!filterIncludes(super, sub)) GTEST_SKIP() << "pair not in relation";
  for (int i = 0; i < 200; ++i) {
    ApiCall call = randomCall(rng);
    if (sub->evaluate(call)) {
      ASSERT_TRUE(super->evaluate(call))
          << "super=" << super->toString() << " sub=" << sub->toString();
    }
  }
}

TEST_P(NormalFormPropertyTest, InclusionIsReflexive) {
  std::mt19937 rng(GetParam() + 2000);
  FilterExprPtr expr = randomExpr(rng, 3);
  EXPECT_TRUE(filterIncludes(expr, expr)) << expr->toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormPropertyTest,
                         ::testing::Range(0u, 30u));

}  // namespace
}  // namespace sdnshield::perm
