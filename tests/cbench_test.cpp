// CBench-style generator: the measurement harness itself must behave —
// rounds produce responses on both deployments, and the Figure-5 synthetic
// workload has the advertised shape (token counts, filter counts, violation
// ratio).
#include "cbench/generator.h"

#include <gtest/gtest.h>

#include "apps/l2_learning.h"
#include "core/engine/permission_engine.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "isolation/fault_injector.h"

namespace sdnshield::cbench {
namespace {

using namespace std::chrono_literals;

TEST(Generator, LatencyRoundsRespondOnBaseline) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(2);
  iso::BaselineRuntime runtime(controller);
  runtime.loadApp(std::make_shared<apps::L2LearningSwitch>());

  Generator generator(network);
  generator.setup();
  LatencyStats stats = generator.runLatency(20, 1000ms);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.samples, 20u);
  EXPECT_GT(stats.medianUs, 0.0);
  EXPECT_LE(stats.p10Us, stats.medianUs);
  EXPECT_LE(stats.medianUs, stats.p90Us);
}

TEST(Generator, LatencyRoundsRespondUnderShield) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(2);
  iso::ShieldRuntime shield(controller);
  auto app = std::make_shared<apps::L2LearningSwitch>();
  shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));

  Generator generator(network);
  generator.setup();
  LatencyStats stats = generator.runLatency(20, 2000ms);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.samples, 20u);
}

TEST(Generator, ThroughputModeCountsResponses) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(2);
  iso::BaselineRuntime runtime(controller);
  runtime.loadApp(std::make_shared<apps::L2LearningSwitch>());

  Generator generator(network);
  generator.setup();
  ThroughputStats stats = generator.runThroughput(200ms);
  EXPECT_GT(stats.totalResponses, 0u);
  EXPECT_GT(stats.responsesPerSec, 0.0);
}

TEST(Fig5Workload, ManifestSizesMatchThePaper) {
  for (std::size_t tokens : {1u, 5u, 15u}) {
    perm::PermissionSet manifest = makeSyntheticManifest(tokens, 42);
    EXPECT_EQ(manifest.size(), tokens);
    EXPECT_TRUE(manifest.has(perm::Token::kInsertFlow));
    if (tokens >= 2) {
      EXPECT_TRUE(manifest.has(perm::Token::kReadStatistics));
    }
    for (const perm::Permission& grant : manifest.permissions()) {
      ASSERT_NE(grant.filter, nullptr);
      EXPECT_GE(grant.filter->leafCount(), 10u);
      EXPECT_LE(grant.filter->leafCount(), 20u);
    }
  }
}

TEST(Fig5Workload, ManifestIsDeterministicPerSeed) {
  auto a = makeSyntheticManifest(5, 7);
  auto b = makeSyntheticManifest(5, 7);
  EXPECT_TRUE(a.equivalent(b));
}

TEST(Fig5Workload, TraceViolationRatioIsHonoured) {
  perm::PermissionSet manifest = makeSyntheticManifest(5, 42);
  engine::CompiledPermissions compiled(manifest);
  auto trace = makeSyntheticTrace(manifest, 4000, 0.05, 1);
  ASSERT_EQ(trace.size(), 4000u);
  std::size_t denied = 0;
  std::size_t inserts = 0;
  for (const perm::ApiCall& call : trace) {
    if (!compiled.check(call).allowed) ++denied;
    if (call.type == perm::ApiCallType::kInsertFlow) ++inserts;
  }
  double ratio = static_cast<double>(denied) / static_cast<double>(trace.size());
  EXPECT_NEAR(ratio, 0.05, 0.02);
  EXPECT_NEAR(static_cast<double>(inserts), 2000.0, 1.0);
}

TEST(Fig5Workload, InRangeCallsPassAllManifestSizes) {
  // The small (1-token) manifest grants exactly the benched call type, so
  // test each call type against a manifest built for it.
  const std::pair<perm::Token, perm::ApiCallType> benched[] = {
      {perm::Token::kInsertFlow, perm::ApiCallType::kInsertFlow},
      {perm::Token::kReadStatistics, perm::ApiCallType::kReadStatistics},
  };
  for (const auto& [primary, callType] : benched) {
    for (std::size_t tokens : {1u, 5u, 15u}) {
      perm::PermissionSet manifest = makeSyntheticManifest(tokens, 42, primary);
      engine::CompiledPermissions compiled(manifest);
      auto trace = makeSyntheticTrace(manifest, 500, 0.0, 2);
      for (const perm::ApiCall& call : trace) {
        if (call.type != callType) continue;
        EXPECT_TRUE(compiled.check(call).allowed) << call.toString();
      }
    }
  }
}

// --- bounded retry-with-backoff ---------------------------------------------------

TEST(Retry, ClassifiesTransientCodes) {
  EXPECT_TRUE(isTransient(ctrl::ApiErrc::kQueueFull));
  EXPECT_TRUE(isTransient(ctrl::ApiErrc::kDeadlineExceeded));
  EXPECT_FALSE(isTransient(ctrl::ApiErrc::kPermissionDenied));
  EXPECT_FALSE(isTransient(ctrl::ApiErrc::kAppQuarantined));
  EXPECT_FALSE(isTransient(ctrl::ApiErrc::kOk));
}

TEST(Retry, RecoversAfterTransientFailures) {
  int calls = 0;
  auto result = callWithRetry(
      [&]() -> ctrl::ApiResult {
        ++calls;
        if (calls < 3) {
          return ctrl::ApiResult::failure(ctrl::ApiErrc::kQueueFull);
        }
        return ctrl::ApiResult::success();
      },
      {.maxRetries = 3, .initialBackoff = 1ms, .backoffMultiplier = 2.0});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
}

TEST(Retry, DoesNotRetryPermanentFailures) {
  int calls = 0;
  auto result = callWithRetry(
      [&]() -> ctrl::ApiResult {
        ++calls;
        return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied);
      },
      {.maxRetries = 5, .initialBackoff = 1ms, .backoffMultiplier = 2.0});
  EXPECT_EQ(result.code(), ctrl::ApiErrc::kPermissionDenied);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, ExhaustsBudgetAndReportsLastTransientError) {
  int calls = 0;
  auto result = callWithRetry(
      [&]() -> ctrl::ApiResult {
        ++calls;
        return ctrl::ApiResult::failure(ctrl::ApiErrc::kDeadlineExceeded);
      },
      {.maxRetries = 2, .initialBackoff = 1ms, .backoffMultiplier = 2.0});
  EXPECT_EQ(result.code(), ctrl::ApiErrc::kDeadlineExceeded);
  EXPECT_EQ(calls, 3);  // First attempt + maxRetries.
}

TEST(Retry, ZeroRetriesMeansOneShot) {
  int calls = 0;
  auto result = callWithRetry([&]() -> ctrl::ApiResult {
    ++calls;
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kQueueFull);
  });
  // Default options allow retries; explicit zero must not.
  calls = 0;
  result = callWithRetry(
      [&]() -> ctrl::ApiResult {
        ++calls;
        return ctrl::ApiResult::failure(ctrl::ApiErrc::kQueueFull);
      },
      {.maxRetries = 0});
  EXPECT_EQ(result.code(), ctrl::ApiErrc::kQueueFull);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, ThroughputRoundsSurviveInjectedQueuePressure) {
  // End-to-end: a shielded deployment under a short kQueueFull window still
  // completes its measurement because timed-out rounds are retried.
  ctrl::Controller controller;
  sim::SimNetwork net(controller);
  net.buildLinear(2);
  iso::ShieldRuntime shield(controller);
  auto app = std::make_shared<apps::L2LearningSwitch>();
  shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));

  Generator generator(net);
  generator.setup();
  generator.setRoundRetry(
      {.maxRetries = 3, .initialBackoff = 1ms, .backoffMultiplier = 2.0});
  generator.setRoundTimeout(50ms);
  iso::ScopedFault fault(iso::sites::kKsdQueue, iso::FaultInjector::Fault::kQueueFull,
                         iso::FireWindow{4, 2});
  auto stats = generator.runThroughput(300ms);
  EXPECT_GT(stats.totalResponses, 0u);
}

}  // namespace
}  // namespace sdnshield::cbench
