// Thread containers and ambient identity: the control-flow-isolation
// properties of §VI-A (privilege is per thread, inherited by children, and
// cannot leak across containers).
#include "isolation/thread_container.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>

namespace sdnshield::iso {
namespace {

TEST(Identity, DefaultIsKernel) {
  EXPECT_EQ(currentAppId(), of::kKernelAppId);
}

TEST(Identity, ScopedIdentitySetsAndRestores) {
  EXPECT_EQ(currentAppId(), of::kKernelAppId);
  {
    ScopedIdentity identity(7);
    EXPECT_EQ(currentAppId(), 7u);
    {
      ScopedIdentity nested(9);
      EXPECT_EQ(currentAppId(), 9u);
    }
    EXPECT_EQ(currentAppId(), 7u);
  }
  EXPECT_EQ(currentAppId(), of::kKernelAppId);
}

TEST(Identity, SpawnInheritingCarriesCallerIdentity) {
  std::promise<of::AppId> observed;
  std::thread child;
  {
    ScopedIdentity identity(5);
    child = spawnInheriting([&observed] { observed.set_value(currentAppId()); });
  }
  child.join();
  EXPECT_EQ(observed.get_future().get(), 5u);
}

TEST(Identity, PlainThreadsDoNotInherit) {
  std::promise<of::AppId> observed;
  std::thread child;
  {
    ScopedIdentity identity(5);
    child = std::thread([&observed] { observed.set_value(currentAppId()); });
  }
  child.join();
  // A raw std::thread starts with the default (kernel) identity — the
  // shield runtime only hands apps spawnInheriting.
  EXPECT_EQ(observed.get_future().get(), of::kKernelAppId);
}

TEST(ThreadContainer, TasksRunUnderAppIdentity) {
  ThreadContainer container(7, "app7");
  container.start();
  std::promise<of::AppId> observed;
  container.post([&observed] { observed.set_value(currentAppId()); });
  EXPECT_EQ(observed.get_future().get(), 7u);
  container.stop();
}

TEST(ThreadContainer, PostAndWaitBlocksUntilTaskRan) {
  ThreadContainer container(7, "app7");
  container.start();
  std::atomic<int> value{0};
  container.postAndWait([&value] { value = 42; });
  EXPECT_EQ(value.load(), 42);
  container.stop();
}

TEST(ThreadContainer, TasksExecuteInOrder) {
  ThreadContainer container(7, "app7");
  container.start();
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    container.post([&order, i] { order.push_back(i); });
  }
  container.postAndWait([] {});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_GE(container.executedTasks(), 10u);
  container.stop();
}

TEST(ThreadContainer, StopDrainsPendingTasks) {
  ThreadContainer container(7, "app7");
  container.start();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    container.post([&count] { count.fetch_add(1); });
  }
  container.stop();  // close() lets queued tasks drain before join.
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadContainer, PostAfterStopIsRejected) {
  ThreadContainer container(7, "app7");
  container.start();
  container.stop();
  EXPECT_FALSE(container.post([] {}));
  container.postAndWait([] { FAIL() << "must not run"; });  // Returns at once.
}

TEST(ThreadContainer, ThreadsSpawnedFromTasksInheritAppIdentity) {
  ThreadContainer container(11, "app11");
  container.start();
  std::promise<of::AppId> observed;
  container.postAndWait([&observed] {
    std::thread child =
        spawnInheriting([&observed] { observed.set_value(currentAppId()); });
    child.join();
  });
  EXPECT_EQ(observed.get_future().get(), 11u);
  container.stop();
}

TEST(ThreadContainer, TwoContainersHaveIndependentIdentities) {
  ThreadContainer a(1, "a");
  ThreadContainer b(2, "b");
  a.start();
  b.start();
  std::promise<of::AppId> fromA;
  std::promise<of::AppId> fromB;
  a.post([&fromA] { fromA.set_value(currentAppId()); });
  b.post([&fromB] { fromB.set_value(currentAppId()); });
  EXPECT_EQ(fromA.get_future().get(), 1u);
  EXPECT_EQ(fromB.get_future().get(), 2u);
  a.stop();
  b.stop();
}

TEST(ThreadContainer, DestructorStopsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadContainer container(3, "temp");
    container.start();
    container.post([&count] { count.fetch_add(1); });
  }  // Destructor joins.
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace sdnshield::iso
