// Reference monitor (the SecurityManager analogue): host system calls are
// attributed to the ambient thread identity and gated by host permissions.
#include "isolation/reference_monitor.h"

#include <gtest/gtest.h>

#include "core/lang/perm_parser.h"
#include "isolation/thread_container.h"

namespace sdnshield::iso {
namespace {

using lang::parsePermissions;

class ReferenceMonitorTest : public ::testing::Test {
 protected:
  ReferenceMonitorTest() : monitor_(host_, &engine_, &audit_) {
    engine_.install(1, parsePermissions(
                           "PERM network_access LIMITING IP_DST 10.1.0.0 "
                           "MASK 255.255.0.0\n"));
    engine_.install(2, parsePermissions("PERM file_system\n"
                                        "PERM process_runtime\n"));
  }

  HostSystem host_;
  engine::PermissionEngine engine_;
  engine::AuditLog audit_;
  ReferenceMonitor monitor_;
};

TEST_F(ReferenceMonitorTest, AllowsNetSendWithinGrantedRange) {
  ScopedIdentity identity(1);
  EXPECT_TRUE(monitor_.netSend(of::Ipv4Address(10, 1, 2, 3), 8080, "report"));
  auto messages = host_.netMessages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].app, 1u);
  EXPECT_EQ(messages[0].data, "report");
}

TEST_F(ReferenceMonitorTest, BlocksNetSendOutsideRange) {
  ScopedIdentity identity(1);
  EXPECT_FALSE(
      monitor_.netSend(of::Ipv4Address(203, 0, 113, 66), 4444, "stolen"));
  EXPECT_TRUE(host_.netMessages().empty());
  EXPECT_EQ(audit_.deniedCount(), 1u);
}

TEST_F(ReferenceMonitorTest, BlocksAppsWithoutHostTokens) {
  ScopedIdentity identity(1);  // App 1 has only network_access.
  EXPECT_FALSE(monitor_.fileWrite("/tmp/x", "data"));
  EXPECT_FALSE(monitor_.exec("curl evil.example"));
  EXPECT_TRUE(host_.fileRecords().empty());
  EXPECT_TRUE(host_.execRecords().empty());
}

TEST_F(ReferenceMonitorTest, FileAndExecTokensGateThoseCalls) {
  ScopedIdentity identity(2);
  EXPECT_TRUE(monitor_.fileWrite("/var/log/app.log", "line"));
  EXPECT_TRUE(monitor_.exec("logrotate"));
  EXPECT_FALSE(monitor_.netSend(of::Ipv4Address(10, 1, 1, 1), 80, "x"));
  EXPECT_EQ(host_.fileRecords().size(), 1u);
  EXPECT_EQ(host_.execRecords().size(), 1u);
}

TEST_F(ReferenceMonitorTest, UnknownAppIsDenied) {
  ScopedIdentity identity(42);
  EXPECT_FALSE(monitor_.netSend(of::Ipv4Address(10, 1, 1, 1), 80, "x"));
}

TEST_F(ReferenceMonitorTest, KernelThreadsAreUnrestricted) {
  // Default identity is the kernel: full privilege.
  EXPECT_TRUE(monitor_.netSend(of::Ipv4Address(8, 8, 8, 8), 53, "query"));
  EXPECT_TRUE(monitor_.fileWrite("/etc/controller.conf", "cfg"));
}

TEST_F(ReferenceMonitorTest, DecisionsAreAudited) {
  ScopedIdentity identity(1);
  monitor_.netSend(of::Ipv4Address(10, 1, 2, 3), 80, "ok");
  monitor_.netSend(of::Ipv4Address(9, 9, 9, 9), 80, "bad");
  EXPECT_EQ(audit_.entriesFor(1).size(), 2u);
  EXPECT_EQ(audit_.deniedCount(), 1u);
}

TEST(ReferenceMonitorBaseline, NullEngineIsPassThrough) {
  HostSystem host;
  ReferenceMonitor passthrough(host, nullptr);
  ScopedIdentity identity(99);  // Nothing installed anywhere.
  EXPECT_TRUE(passthrough.netSend(of::Ipv4Address(203, 0, 113, 66), 4444, "x"));
  EXPECT_TRUE(passthrough.fileWrite("/any", "y"));
  EXPECT_TRUE(passthrough.exec("anything"));
  EXPECT_EQ(host.netMessages().size(), 1u);
  EXPECT_EQ(host.netMessages()[0].app, 99u);  // Still attributed.
}

TEST(HostSystem, RecordsAreQueryableByEndpoint) {
  HostSystem host;
  host.deliverNet({1, of::Ipv4Address(10, 1, 1, 1), 80, "a"});
  host.deliverNet({2, of::Ipv4Address(10, 2, 2, 2), 80, "b"});
  EXPECT_EQ(host.netMessagesTo(of::Ipv4Address(10, 1, 1, 1)).size(), 1u);
  EXPECT_EQ(host.netMessagesTo(of::Ipv4Address(10, 3, 3, 3)).size(), 0u);
  host.clear();
  EXPECT_TRUE(host.netMessages().empty());
}

}  // namespace
}  // namespace sdnshield::iso
