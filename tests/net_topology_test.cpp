#include "net/topology.h"

#include <gtest/gtest.h>

#include "net/virtual_topology.h"

namespace sdnshield::net {
namespace {

/// s1 -(2,3)- s2 -(2,3)- s3, host h_k on port 1 of s_k.
Topology linear3() {
  Topology topo;
  topo.addSwitch(1);
  topo.addSwitch(2);
  topo.addSwitch(3);
  topo.addLink(1, 2, 2, 3);
  topo.addLink(2, 2, 3, 3);
  for (of::DatapathId dpid = 1; dpid <= 3; ++dpid) {
    topo.attachHost(Host{of::MacAddress::fromUint64(dpid),
                         of::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(dpid)),
                         dpid, 1});
  }
  return topo;
}

TEST(Topology, AddAndQuerySwitchesLinksHosts) {
  Topology topo = linear3();
  EXPECT_EQ(topo.switchCount(), 3u);
  EXPECT_EQ(topo.links().size(), 2u);
  EXPECT_EQ(topo.hosts().size(), 3u);
  EXPECT_TRUE(topo.hasSwitch(2));
  EXPECT_FALSE(topo.hasSwitch(9));
  EXPECT_TRUE(topo.hasLink(1, 2));
  EXPECT_TRUE(topo.hasLink(2, 1));
  EXPECT_FALSE(topo.hasLink(1, 3));
}

TEST(Topology, AddLinkToUnknownSwitchThrows) {
  Topology topo;
  topo.addSwitch(1);
  EXPECT_THROW(topo.addLink(1, 2, 9, 3), std::invalid_argument);
}

TEST(Topology, AttachHostToUnknownSwitchThrows) {
  Topology topo;
  EXPECT_THROW(topo.attachHost(Host{{}, {}, 4, 1}), std::invalid_argument);
}

TEST(Topology, NeighborsReportPortsBothWays) {
  Topology topo = linear3();
  auto neighbors = topo.neighbors(2);
  ASSERT_EQ(neighbors.size(), 2u);
  // Port 3 of s2 faces s1, port 2 faces s3.
  for (const auto& nb : neighbors) {
    if (nb.dpid == 1) {
      EXPECT_EQ(nb.localPort, 3u);
      EXPECT_EQ(nb.remotePort, 2u);
    } else {
      EXPECT_EQ(nb.dpid, 3u);
      EXPECT_EQ(nb.localPort, 2u);
      EXPECT_EQ(nb.remotePort, 3u);
    }
  }
}

TEST(Topology, ShortestPathEndpointsAndPorts) {
  Topology topo = linear3();
  auto path = topo.shortestPath(1, 3);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[0].dpid, 1u);
  EXPECT_EQ((*path)[0].outPort, 2u);
  EXPECT_EQ((*path)[1].dpid, 2u);
  EXPECT_EQ((*path)[1].inPort, 3u);
  EXPECT_EQ((*path)[1].outPort, 2u);
  EXPECT_EQ((*path)[2].dpid, 3u);
  EXPECT_EQ((*path)[2].inPort, 3u);
}

TEST(Topology, ShortestPathToSelfIsSingleHop) {
  Topology topo = linear3();
  auto path = topo.shortestPath(2, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(Topology, ShortestPathPicksFewerHops) {
  Topology topo = linear3();
  // Add a shortcut s1 - s3.
  topo.addLink(1, 5, 3, 5);
  auto path = topo.shortestPath(1, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(Topology, DisconnectedPathIsEmpty) {
  Topology topo = linear3();
  topo.removeLink(2, 3);
  EXPECT_FALSE(topo.shortestPath(1, 3).has_value());
  EXPECT_FALSE(topo.nextHopPort(1, 3).has_value());
}

TEST(Topology, NextHopPortIsFirstPathEgress) {
  Topology topo = linear3();
  EXPECT_EQ(topo.nextHopPort(1, 3), 2u);
  EXPECT_EQ(topo.nextHopPort(3, 1), 3u);
  EXPECT_FALSE(topo.nextHopPort(1, 1).has_value());
}

TEST(Topology, HostLookupByMacAndIp) {
  Topology topo = linear3();
  auto host = topo.hostByIp(of::Ipv4Address(10, 0, 0, 2));
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->dpid, 2u);
  EXPECT_TRUE(topo.hostByMac(of::MacAddress::fromUint64(3)).has_value());
  EXPECT_FALSE(topo.hostByIp(of::Ipv4Address(10, 0, 0, 99)).has_value());
}

TEST(Topology, RemoveSwitchDropsLinksAndHosts) {
  Topology topo = linear3();
  topo.removeSwitch(2);
  EXPECT_EQ(topo.switchCount(), 2u);
  EXPECT_EQ(topo.links().size(), 0u);
  EXPECT_EQ(topo.hosts().size(), 2u);
  EXPECT_FALSE(topo.hasLink(1, 2));
}

TEST(Topology, DetachHost) {
  Topology topo = linear3();
  topo.detachHost(of::MacAddress::fromUint64(1));
  EXPECT_EQ(topo.hosts().size(), 2u);
}

TEST(Topology, RestrictToKeepsOnlySubsetAndInternalLinks) {
  Topology topo = linear3();
  Topology restricted = topo.restrictTo({1, 2});
  EXPECT_EQ(restricted.switchCount(), 2u);
  EXPECT_EQ(restricted.links().size(), 1u);
  EXPECT_EQ(restricted.hosts().size(), 2u);
  EXPECT_TRUE(restricted.hasLink(1, 2));
  EXPECT_FALSE(restricted.hasSwitch(3));
}

TEST(Topology, EqualityIsStructural) {
  EXPECT_EQ(linear3(), linear3());
  Topology modified = linear3();
  modified.removeLink(1, 2);
  EXPECT_NE(modified, linear3());
}

// --- churn: flapping links, partitions, translation under partition ---------------

TEST(TopologyChurn, LinkRemovalAndReaddRestoresPaths) {
  Topology topo = linear3();
  ASSERT_TRUE(topo.shortestPath(1, 3).has_value());
  topo.removeLink(2, 3);
  EXPECT_FALSE(topo.shortestPath(1, 3).has_value());
  EXPECT_FALSE(topo.nextHopPort(1, 3).has_value());
  // Re-add with the original ports: full service restored.
  topo.addLink(2, 2, 3, 3);
  auto path = topo.shortestPath(1, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ(topo, linear3());
}

TEST(TopologyChurn, DisconnectedQueriesAreEmptyNotFatal) {
  Topology topo = linear3();
  topo.removeSwitch(2);  // Partitions 1 from 3 and drops 2's links.
  EXPECT_FALSE(topo.shortestPath(1, 3).has_value());
  EXPECT_FALSE(topo.nextHopPort(3, 1).has_value());
  // Same-switch queries still answer on both sides of the partition.
  EXPECT_TRUE(topo.shortestPath(1, 1).has_value());
  EXPECT_TRUE(topo.shortestPath(3, 3).has_value());
}

TEST(TopologyChurn, RepeatedFlapCyclesAreIdempotent) {
  Topology topo = linear3();
  for (int cycle = 0; cycle < 5; ++cycle) {
    topo.removeLink(1, 2);
    topo.removeLink(2, 3);
    EXPECT_FALSE(topo.shortestPath(1, 3).has_value());
    topo.addLink(1, 2, 2, 3);
    topo.addLink(2, 2, 3, 3);
  }
  EXPECT_EQ(topo, linear3());
}

TEST(TopologyChurn, PartitionedSliceRefusesVirtualTranslation) {
  // A tenant's big switch built over a slice that churn has partitioned:
  // translation between virtual ports on different islands must throw (the
  // campaign counts these as rejected translations), never emit a rule that
  // routes around through foreign switches.
  Topology topo;
  for (DatapathId dpid : {1, 2, 3, 4}) topo.addSwitch(dpid);
  topo.addLink(1, 2, 2, 2);
  topo.addLink(3, 2, 4, 2);  // Two islands: {1,2} and {3,4}.
  topo.attachHost(Host{of::MacAddress::fromUint64(0xa), of::Ipv4Address(10, 0, 0, 1), 1, 1});
  topo.attachHost(Host{of::MacAddress::fromUint64(0xb), of::Ipv4Address(10, 0, 0, 2), 4, 1});

  VirtualTopology vtopo = VirtualTopology::bigSwitch(topo, {1, 2, 3, 4});
  const auto& ports = vtopo.virtualSwitch().ports;
  ASSERT_GE(ports.size(), 2u);

  of::FlowMod mod;
  mod.command = of::FlowModCommand::kAdd;
  mod.match.inPort = ports.front().virtualPort;
  mod.actions.push_back(of::OutputAction{ports.back().virtualPort});
  EXPECT_THROW(vtopo.translateFlowMod(mod), std::invalid_argument);
}

}  // namespace
}  // namespace sdnshield::net
