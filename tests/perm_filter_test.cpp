#include "core/perm/filter.h"

#include <gtest/gtest.h>

namespace sdnshield::perm {
namespace {

of::FlowMod makeMod(const char* ipDst, int maskBits, std::uint16_t priority,
                    of::ActionList actions) {
  of::FlowMod mod;
  mod.command = of::FlowModCommand::kAdd;
  mod.match.ethType = 0x0800;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ipDst),
                                   of::Ipv4Address::prefixMask(maskBits)};
  mod.priority = priority;
  mod.actions = std::move(actions);
  return mod;
}

ApiCall insertCall(const char* ipDst, int maskBits = 32,
                   std::uint16_t priority = 10) {
  return ApiCall::insertFlow(
      1, 1, makeMod(ipDst, maskBits, priority, {of::OutputAction{1}}));
}

// --- FieldPredicateFilter ----------------------------------------------------

TEST(FieldPredicateFilter, NarrowerPredicatePasses) {
  FieldPredicateFilter filter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, 13, 0, 0),
                     of::Ipv4Address::prefixMask(16)});
  EXPECT_TRUE(filter.evaluate(insertCall("10.13.7.1")));
  EXPECT_TRUE(filter.evaluate(insertCall("10.13.0.0", 24)));
}

TEST(FieldPredicateFilter, WiderOrDisjointPredicateFails) {
  FieldPredicateFilter filter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, 13, 0, 0),
                     of::Ipv4Address::prefixMask(16)});
  EXPECT_FALSE(filter.evaluate(insertCall("10.0.0.0", 8)));   // Wider.
  EXPECT_FALSE(filter.evaluate(insertCall("10.14.0.1")));     // Disjoint.
}

TEST(FieldPredicateFilter, UnconstrainedFieldFailsTheNarrownessTest) {
  FieldPredicateFilter filter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, 13, 0, 0),
                     of::Ipv4Address::prefixMask(16)});
  of::FlowMod mod;  // No ip_dst at all: addresses every flow.
  mod.actions.push_back(of::OutputAction{1});
  EXPECT_FALSE(filter.evaluate(ApiCall::insertFlow(1, 1, mod)));
}

TEST(FieldPredicateFilter, NotApplicableCallPasses) {
  FieldPredicateFilter filter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, 13, 0, 0),
                     of::Ipv4Address::prefixMask(16)});
  EXPECT_TRUE(filter.evaluate(ApiCall::readTopology(1)));
}

TEST(FieldPredicateFilter, BoundsHostNetworkRemoteEndpoint) {
  FieldPredicateFilter filter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(192, 168, 0, 0),
                     of::Ipv4Address::prefixMask(16)});
  EXPECT_TRUE(
      filter.evaluate(ApiCall::hostNetwork(1, of::Ipv4Address(192, 168, 3, 4), 80)));
  EXPECT_FALSE(
      filter.evaluate(ApiCall::hostNetwork(1, of::Ipv4Address(203, 0, 113, 66), 80)));
}

TEST(FieldPredicateFilter, TpDstBoundsHostNetworkPort) {
  FieldPredicateFilter filter(of::MatchField::kTpDst, 8080);
  EXPECT_TRUE(
      filter.evaluate(ApiCall::hostNetwork(1, of::Ipv4Address(1, 2, 3, 4), 8080)));
  EXPECT_FALSE(
      filter.evaluate(ApiCall::hostNetwork(1, of::Ipv4Address(1, 2, 3, 4), 443)));
}

TEST(FieldPredicateFilter, IntegerFieldRequiresExactValue) {
  FieldPredicateFilter filter(of::MatchField::kTpDst, 80);
  of::FlowMod mod = makeMod("10.0.0.1", 32, 10, {of::OutputAction{1}});
  mod.match.tpDst = 80;
  EXPECT_TRUE(filter.evaluate(ApiCall::insertFlow(1, 1, mod)));
  mod.match.tpDst = 443;
  EXPECT_FALSE(filter.evaluate(ApiCall::insertFlow(1, 1, mod)));
}

TEST(FieldPredicateFilter, InclusionFollowsRangeSubsumption) {
  FieldPredicateFilter wide(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 0), of::Ipv4Address::prefixMask(8)});
  FieldPredicateFilter narrow(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, 13, 0, 0),
                     of::Ipv4Address::prefixMask(16)});
  EXPECT_TRUE(wide.includes(narrow));
  EXPECT_FALSE(narrow.includes(wide));
  EXPECT_TRUE(wide.includes(wide));
}

TEST(FieldPredicateFilter, DifferentFieldsAreIndependentDimensions) {
  FieldPredicateFilter dst(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 0), of::Ipv4Address::prefixMask(8)});
  FieldPredicateFilter src(
      of::MatchField::kIpSrc,
      of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 0), of::Ipv4Address::prefixMask(8)});
  EXPECT_NE(dst.dimension(), src.dimension());
  EXPECT_FALSE(dst.includes(src));
}

// --- WildcardFilter ------------------------------------------------------------

TEST(WildcardFilter, ForcesBitsToBeWildcarded) {
  // Paper example: upper 24 bits of IP_DST must stay wildcarded.
  WildcardFilter filter(of::MatchField::kIpDst,
                        of::Ipv4Address::parse("255.255.255.0"));
  of::FlowMod lower8 = makeMod("0.0.0.7", 32, 10, {of::OutputAction{1}});
  lower8.match.ipDst->mask = of::Ipv4Address::parse("0.0.0.255");
  EXPECT_TRUE(filter.evaluate(ApiCall::insertFlow(1, 1, lower8)));

  of::FlowMod full = makeMod("10.1.2.3", 32, 10, {of::OutputAction{1}});
  EXPECT_FALSE(filter.evaluate(ApiCall::insertFlow(1, 1, full)));
}

TEST(WildcardFilter, AbsentFieldTriviallyComplies) {
  WildcardFilter filter(of::MatchField::kIpDst,
                        of::Ipv4Address::parse("255.255.255.0"));
  of::FlowMod mod;
  mod.actions.push_back(of::OutputAction{1});
  EXPECT_TRUE(filter.evaluate(ApiCall::insertFlow(1, 1, mod)));
}

TEST(WildcardFilter, NonIpFieldFormRequiresFullWildcard) {
  WildcardFilter filter(of::MatchField::kTpDst);
  of::FlowMod mod = makeMod("10.0.0.1", 32, 10, {of::OutputAction{1}});
  EXPECT_TRUE(filter.evaluate(ApiCall::insertFlow(1, 1, mod)));
  mod.match.tpDst = 80;
  EXPECT_FALSE(filter.evaluate(ApiCall::insertFlow(1, 1, mod)));
}

TEST(WildcardFilter, InclusionByForcedBitSubset) {
  WildcardFilter fewBits(of::MatchField::kIpDst,
                         of::Ipv4Address::parse("255.0.0.0"));
  WildcardFilter moreBits(of::MatchField::kIpDst,
                          of::Ipv4Address::parse("255.255.0.0"));
  EXPECT_TRUE(fewBits.includes(moreBits));   // Fewer forced bits = wider.
  EXPECT_FALSE(moreBits.includes(fewBits));
}

// --- ActionFilter ---------------------------------------------------------------

TEST(ActionFilter, DropOnlyAllowsDrops) {
  FilterPtr drop = ActionFilter::drop();
  of::FlowMod dropMod = makeMod("10.0.0.1", 32, 10, {of::DropAction{}});
  EXPECT_TRUE(drop->evaluate(ApiCall::insertFlow(1, 1, dropMod)));
  EXPECT_FALSE(drop->evaluate(insertCall("10.0.0.1")));
}

TEST(ActionFilter, ForwardAllowsOutputsButNotRewrites) {
  FilterPtr forward = ActionFilter::forward();
  EXPECT_TRUE(forward->evaluate(insertCall("10.0.0.1")));
  of::SetFieldAction rewrite;
  rewrite.field = of::MatchField::kTpDst;
  rewrite.intValue = 80;
  of::FlowMod mod = makeMod("10.0.0.1", 32, 10,
                            {rewrite, of::OutputAction{1}});
  EXPECT_FALSE(forward->evaluate(ApiCall::insertFlow(1, 1, mod)));
}

TEST(ActionFilter, ModifyAllowsOnlyTheNamedField) {
  FilterPtr modifyTp = ActionFilter::modify(of::MatchField::kTpDst);
  of::SetFieldAction rewriteTp;
  rewriteTp.field = of::MatchField::kTpDst;
  of::SetFieldAction rewriteIp;
  rewriteIp.field = of::MatchField::kIpDst;
  of::FlowMod tpMod =
      makeMod("10.0.0.1", 32, 10, {rewriteTp, of::OutputAction{1}});
  of::FlowMod ipMod =
      makeMod("10.0.0.1", 32, 10, {rewriteIp, of::OutputAction{1}});
  EXPECT_TRUE(modifyTp->evaluate(ApiCall::insertFlow(1, 1, tpMod)));
  EXPECT_FALSE(modifyTp->evaluate(ApiCall::insertFlow(1, 1, ipMod)));
}

TEST(ActionFilter, InclusionLadderDropForwardModify) {
  FilterPtr drop = ActionFilter::drop();
  FilterPtr forward = ActionFilter::forward();
  FilterPtr modify = ActionFilter::modify(of::MatchField::kTpDst);
  EXPECT_TRUE(forward->includes(*drop));
  EXPECT_TRUE(modify->includes(*forward));
  EXPECT_TRUE(modify->includes(*drop));
  EXPECT_FALSE(drop->includes(*forward));
  EXPECT_FALSE(forward->includes(*modify));
  FilterPtr modifyOther = ActionFilter::modify(of::MatchField::kIpDst);
  EXPECT_FALSE(modify->includes(*modifyOther));
}

// --- OwnershipFilter -------------------------------------------------------------

TEST(OwnershipFilter, OwnFlowsGateByCallAttribute) {
  OwnershipFilter own(true);
  OwnershipFilter all(false);
  ApiCall owned = insertCall("10.0.0.1");
  owned.ownFlow = true;
  ApiCall foreign = insertCall("10.0.0.1");
  foreign.ownFlow = false;
  EXPECT_TRUE(own.evaluate(owned));
  EXPECT_FALSE(own.evaluate(foreign));
  EXPECT_TRUE(all.evaluate(foreign));
  EXPECT_TRUE(all.includes(own));
  EXPECT_FALSE(own.includes(all));
}

// --- PriorityFilter ---------------------------------------------------------------

TEST(PriorityFilter, MaxAndMinBounds) {
  PriorityFilter max(true, 100);
  PriorityFilter min(false, 10);
  EXPECT_TRUE(max.evaluate(insertCall("10.0.0.1", 32, 100)));
  EXPECT_FALSE(max.evaluate(insertCall("10.0.0.1", 32, 101)));
  EXPECT_TRUE(min.evaluate(insertCall("10.0.0.1", 32, 10)));
  EXPECT_FALSE(min.evaluate(insertCall("10.0.0.1", 32, 9)));
}

TEST(PriorityFilter, PassesCallsWithoutPriority) {
  PriorityFilter max(true, 100);
  EXPECT_TRUE(max.evaluate(ApiCall::readTopology(1)));
}

TEST(PriorityFilter, InclusionAndDimensions) {
  PriorityFilter max100(true, 100);
  PriorityFilter max50(true, 50);
  PriorityFilter min10(false, 10);
  PriorityFilter min20(false, 20);
  EXPECT_TRUE(max100.includes(max50));
  EXPECT_FALSE(max50.includes(max100));
  EXPECT_TRUE(min10.includes(min20));
  EXPECT_FALSE(min20.includes(min10));
  EXPECT_NE(max100.dimension(), min10.dimension());
}

// --- TableSizeFilter --------------------------------------------------------------

TEST(TableSizeFilter, CapsRuleCount) {
  TableSizeFilter cap(5);
  ApiCall call = insertCall("10.0.0.1");
  call.ruleCountAfter = 5;
  EXPECT_TRUE(cap.evaluate(call));
  call.ruleCountAfter = 6;
  EXPECT_FALSE(cap.evaluate(call));
  call.ruleCountAfter.reset();
  EXPECT_TRUE(cap.evaluate(call));
  EXPECT_TRUE(TableSizeFilter(10).includes(cap));
  EXPECT_FALSE(cap.includes(TableSizeFilter(10)));
}

// --- PktOutFilter -----------------------------------------------------------------

TEST(PktOutFilter, FromPktInRequiresProvenance) {
  PktOutFilter fromPktIn(true);
  PktOutFilter arbitrary(false);
  of::PacketOut out;
  out.fromPacketIn = false;
  ApiCall fabricated = ApiCall::sendPacketOut(1, out);
  out.fromPacketIn = true;
  ApiCall echoed = ApiCall::sendPacketOut(1, out);
  EXPECT_FALSE(fromPktIn.evaluate(fabricated));
  EXPECT_TRUE(fromPktIn.evaluate(echoed));
  EXPECT_TRUE(arbitrary.evaluate(fabricated));
  EXPECT_TRUE(arbitrary.includes(fromPktIn));
  EXPECT_FALSE(fromPktIn.includes(arbitrary));
}

// --- PhysicalTopologyFilter --------------------------------------------------------

TEST(PhysicalTopologyFilter, BoundsSwitchesAndLinks) {
  PhysicalTopologyFilter filter({1, 2}, {{1, 2}});
  ApiCall inside = insertCall("10.0.0.1");
  inside.dpid = 2;
  EXPECT_TRUE(filter.evaluate(inside));
  ApiCall outside = insertCall("10.0.0.1");
  outside.dpid = 3;
  EXPECT_FALSE(filter.evaluate(outside));

  ApiCall topoCall = ApiCall::readTopology(1);
  topoCall.topoSwitches = {1, 2};
  topoCall.topoLinks = {{2, 1}};  // Canonicalised to (1,2).
  EXPECT_TRUE(filter.evaluate(topoCall));
  topoCall.topoLinks = {{2, 3}};
  EXPECT_FALSE(filter.evaluate(topoCall));
}

TEST(PhysicalTopologyFilter, InclusionBySubset) {
  PhysicalTopologyFilter big({1, 2, 3}, {{1, 2}, {2, 3}});
  PhysicalTopologyFilter small({1, 2}, {{1, 2}});
  EXPECT_TRUE(big.includes(small));
  EXPECT_FALSE(small.includes(big));
}

// --- VirtualTopologyFilter / CallbackFilter / StatisticsFilter ---------------------

TEST(VirtualTopologyFilter, MarkerSemantics) {
  VirtualTopologyFilter single;
  VirtualTopologyFilter subset({1, 2});
  EXPECT_TRUE(single.isSingleBigSwitch());
  EXPECT_FALSE(subset.isSingleBigSwitch());
  EXPECT_TRUE(single.evaluate(ApiCall::readTopology(1)));
  EXPECT_TRUE(single.includes(single));
  EXPECT_FALSE(single.includes(subset));
}

TEST(CallbackFilter, CapabilitiesGateCallbackOps) {
  CallbackFilter interception(CallbackFilter::Capability::kInterception);
  CallbackFilter reorder(CallbackFilter::Capability::kModifyOrder);
  ApiCall observe = ApiCall::subscribe(1, ApiCallType::kSubscribePacketIn,
                                       CallbackOp::kObserve);
  ApiCall intercept = ApiCall::subscribe(1, ApiCallType::kSubscribePacketIn,
                                         CallbackOp::kIntercept);
  ApiCall reorderCall = ApiCall::subscribe(1, ApiCallType::kSubscribePacketIn,
                                           CallbackOp::kReorder);
  EXPECT_TRUE(interception.evaluate(observe));
  EXPECT_TRUE(interception.evaluate(intercept));
  EXPECT_FALSE(interception.evaluate(reorderCall));
  EXPECT_TRUE(reorder.evaluate(reorderCall));
  EXPECT_FALSE(reorder.evaluate(intercept));
  EXPECT_NE(interception.dimension(), reorder.dimension());
}

TEST(StatisticsFilter, ExactLevelMatch) {
  StatisticsFilter port(of::StatsLevel::kPort);
  of::StatsRequest request;
  request.level = of::StatsLevel::kPort;
  EXPECT_TRUE(port.evaluate(ApiCall::readStatistics(1, request)));
  request.level = of::StatsLevel::kFlow;
  EXPECT_FALSE(port.evaluate(ApiCall::readStatistics(1, request)));
  EXPECT_TRUE(port.evaluate(ApiCall::readTopology(1)));  // Not applicable.
}

// --- StubFilter -------------------------------------------------------------------

TEST(StubFilter, FailsClosedAndComparesByName) {
  StubFilter a("AdminRange");
  StubFilter b("AdminRange");
  StubFilter c("LocalTopo");
  EXPECT_FALSE(a.evaluate(ApiCall::readTopology(1)));
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_NE(a.dimension(), c.dimension());
}

}  // namespace
}  // namespace sdnshield::perm
