// The asynchronous northbound pipeline: ApiFuture submission through the
// deputy pool, bounded per-app in-flight windows, completion-vs-submission
// ordering, future abandonment, quarantine with calls in flight, and the
// vectorized insertFlows differential against sequential insertFlow.
#include "isolation/api_proxy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/lang/perm_parser.h"
#include "switchsim/sim_network.h"

namespace sdnshield::iso {
namespace {

using lang::parsePermissions;
using namespace std::chrono_literals;

class TestApp final : public ctrl::App {
 public:
  explicit TestApp(std::string name = "async_app") : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  std::string requestedManifest() const override { return ""; }
  void init(ctrl::AppContext& context) override { context_ = &context; }

  ctrl::AppContext& context() { return *context_; }

 private:
  std::string name_;
  ctrl::AppContext* context_ = nullptr;
};

of::FlowMod modTo(const char* ipDst, std::uint16_t priority = 10) {
  of::FlowMod mod;
  mod.match.ethType = 0x0800;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ipDst)};
  mod.priority = priority;
  mod.actions.push_back(of::OutputAction{1});
  return mod;
}

template <typename Pred>
bool waitFor(Pred pred, std::chrono::milliseconds timeout = 5s) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Blocks deputies until opened; always opened at scope exit so a failing
/// assertion can't wedge the pool past the test timeout.
class Gate {
 public:
  ~Gate() { open(); }
  void open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

struct Rig {
  explicit Rig(ShieldOptions options = {}, std::size_t switches = 1)
      : network(controller), shield(controller, options) {
    network.buildLinear(switches);
  }

  of::AppId load(std::shared_ptr<TestApp> app, const std::string& perms) {
    return shield.loadApp(app, parsePermissions(perms));
  }

  ctrl::Controller controller;
  sim::SimNetwork network;
  ShieldRuntime shield;
};

TEST(IsolationAsync, AsyncInsertResolvesAndInstalls) {
  Rig rig;
  auto app = std::make_shared<TestApp>();
  rig.load(app, "PERM insert_flow\n");
  ctrl::ApiFuture<ctrl::ApiResult> future =
      app->context().api().insertFlowAsync(1, modTo("10.0.0.1"));
  ASSERT_TRUE(future.valid());
  ctrl::ApiResult result = future.get();
  EXPECT_TRUE(result.ok()) << result.error().toString();
  EXPECT_EQ(rig.network.switchAt(1)->flowCount(), 1u);
  EXPECT_FALSE(future.valid());  // get() consumes the future.
  rig.shield.shutdown();
}

TEST(IsolationAsync, AsyncDenialCarriesPermissionDeniedCode) {
  Rig rig;
  auto app = std::make_shared<TestApp>();
  rig.load(app, "PERM read_statistics\n");
  ctrl::ApiResult result =
      app->context().api().insertFlowAsync(1, modTo("10.0.0.1")).get();
  EXPECT_EQ(result.code(), ctrl::ApiErrc::kPermissionDenied);
  EXPECT_EQ(rig.network.switchAt(1)->flowCount(), 0u);
  rig.shield.shutdown();
}

TEST(IsolationAsync, InFlightWindowRejectsPastCapacity) {
  ShieldOptions options;
  options.ksdThreads = 1;
  options.asyncWindow = 2;
  options.ksdCallTimeout = 200ms;
  Rig rig(options);
  auto app = std::make_shared<TestApp>();
  of::AppId id = rig.load(app, "PERM insert_flow\n");

  // Wedge the lone deputy so submitted calls stay queued and in flight.
  auto gate = std::make_shared<Gate>();
  ASSERT_TRUE(rig.shield.ksd().submit([gate] { gate->wait(); }));

  auto f1 = app->context().api().insertFlowAsync(1, modTo("10.0.0.1"));
  auto f2 = app->context().api().insertFlowAsync(1, modTo("10.0.0.2"));
  EXPECT_EQ(rig.shield.inFlightWindow(id)->inFlight(), 2u);
  // Third submission: the window stays full past the deadline.
  auto f3 = app->context().api().insertFlowAsync(1, modTo("10.0.0.3"));
  ASSERT_TRUE(f3.isReady());
  EXPECT_EQ(f3.get().code(), ctrl::ApiErrc::kQueueFull);

  gate->open();
  // The queued calls resolve (possibly past their own deadline) — the
  // contract under test is bounded completion, never a hang.
  (void)f1.get();
  (void)f2.get();
  EXPECT_TRUE(waitFor(
      [&] { return rig.shield.inFlightWindow(id)->inFlight() == 0; }));
  rig.shield.shutdown();
}

TEST(IsolationAsync, CompletionOrderIsIndependentOfSubmissionOrder) {
  ShieldOptions options;
  options.ksdThreads = 4;
  Rig rig(options);
  auto app = std::make_shared<TestApp>();
  rig.load(app, "PERM insert_flow\n");

  std::vector<ctrl::ApiFuture<ctrl::ApiResult>> futures;
  for (int i = 0; i < 8; ++i) {
    std::string dst = "10.0.0." + std::to_string(i + 1);
    futures.push_back(
        app->context().api().insertFlowAsync(1, modTo(dst.c_str())));
  }
  // Consume newest-first: each future resolves on its own, regardless of
  // the order the app reaps them in.
  for (auto it = futures.rbegin(); it != futures.rend(); ++it) {
    ctrl::ApiResult result = it->get();
    EXPECT_TRUE(result.ok()) << result.error().toString();
  }
  EXPECT_EQ(rig.network.switchAt(1)->flowCount(), 8u);
  rig.shield.shutdown();
}

TEST(IsolationAsync, AbandonedFuturesReleaseTheWindowMidBatch) {
  ShieldOptions options;
  options.ksdThreads = 1;
  options.asyncWindow = 2;
  Rig rig(options);
  auto app = std::make_shared<TestApp>();
  of::AppId id = rig.load(app, "PERM insert_flow\n");

  auto gate = std::make_shared<Gate>();
  ASSERT_TRUE(rig.shield.ksd().submit([gate] { gate->wait(); }));
  {
    // Both futures dropped without get() while their calls are still
    // queued behind the wedge: the in-flight slots ride on the queued
    // tasks, not on the futures.
    auto f1 = app->context().api().insertFlowAsync(1, modTo("10.0.0.1"));
    auto f2 = app->context().api().insertFlowAsync(1, modTo("10.0.0.2"));
    EXPECT_EQ(rig.shield.inFlightWindow(id)->inFlight(), 2u);
  }
  gate->open();
  EXPECT_TRUE(waitFor(
      [&] { return rig.shield.inFlightWindow(id)->inFlight() == 0; }));
  // The abandoned calls still executed; the window is free for new work.
  EXPECT_TRUE(waitFor(
      [&] { return rig.network.switchAt(1)->flowCount() == 2u; }));
  ctrl::ApiResult next =
      app->context().api().insertFlowAsync(1, modTo("10.0.0.3")).get();
  EXPECT_TRUE(next.ok()) << next.error().toString();
  rig.shield.shutdown();
}

TEST(IsolationAsync, QuarantineWithCallsInFlightResolvesEverything) {
  ShieldOptions options;
  options.ksdThreads = 1;
  options.asyncWindow = 4;
  options.supervise = false;
  Rig rig(options);
  auto app = std::make_shared<TestApp>();
  of::AppId id = rig.load(app, "PERM insert_flow\n");

  auto gate = std::make_shared<Gate>();
  ASSERT_TRUE(rig.shield.ksd().submit([gate] { gate->wait(); }));
  auto f1 = app->context().api().insertFlowAsync(1, modTo("10.0.0.1"));
  auto f2 = app->context().api().insertFlowAsync(1, modTo("10.0.0.2"));

  rig.shield.quarantineApp(id, "test quarantine");
  gate->open();
  // In-flight calls resolve — bounded completion survives quarantine.
  (void)f1.get();
  (void)f2.get();
  // New submissions fail fast with the typed quarantine code.
  auto after = app->context().api().insertFlowAsync(1, modTo("10.0.0.3"));
  ASSERT_TRUE(after.isReady());
  EXPECT_EQ(after.get().code(), ctrl::ApiErrc::kAppQuarantined);
  EXPECT_EQ(app->context().api().insertFlow(1, modTo("10.0.0.4")).code(),
            ctrl::ApiErrc::kAppQuarantined);
  rig.shield.shutdown();
}

TEST(IsolationAsync, InsertFlowsMatchesSequentialInsertFlow) {
  // Differential: the vectorized path and a per-mod loop must agree on the
  // final table, the rules admitted, and the first failure surfaced — the
  // batch resolves its permission context once but must emulate sequential
  // admission exactly.
  const std::string perms =
      "PERM insert_flow LIMITING MAX_PRIORITY 50\n";
  std::vector<of::FlowMod> batch;
  batch.push_back(modTo("10.0.1.1", 20));
  batch.push_back(modTo("10.0.1.2", 60));  // Denied: priority above cap.
  batch.push_back(modTo("10.0.1.3", 30));
  batch.push_back(modTo("10.0.1.1", 20));  // Duplicate of the first.
  batch.push_back(modTo("10.0.1.4", 40));

  Rig vectored;
  auto vApp = std::make_shared<TestApp>();
  vectored.load(vApp, perms);
  ctrl::ApiResult vResult = vApp->context().api().insertFlows(1, batch);

  Rig sequential;
  auto sApp = std::make_shared<TestApp>();
  sequential.load(sApp, perms);
  ctrl::ApiResult sResult;
  for (const of::FlowMod& mod : batch) {
    ctrl::ApiResult one = sApp->context().api().insertFlow(1, mod);
    if (!one.ok() && sResult.ok()) sResult = one;
  }

  EXPECT_EQ(vResult.code(), sResult.code());
  auto vFlows = vectored.network.switchAt(1)->dumpFlows().value();
  auto sFlows = sequential.network.switchAt(1)->dumpFlows().value();
  ASSERT_EQ(vFlows.size(), sFlows.size());
  for (std::size_t i = 0; i < vFlows.size(); ++i) {
    EXPECT_EQ(vFlows[i].priority, sFlows[i].priority) << "entry " << i;
    EXPECT_EQ(vFlows[i].cookie, sFlows[i].cookie) << "entry " << i;
    EXPECT_EQ(vFlows[i].match.toString(), sFlows[i].match.toString())
        << "entry " << i;
  }
  vectored.shield.shutdown();
  sequential.shield.shutdown();
}

TEST(IsolationAsync, UnsubscribeStopsDeliveryAndInvalidatesTheId) {
  Rig rig;
  auto app = std::make_shared<TestApp>();
  rig.load(app, "PERM pkt_in_event\n");

  std::atomic<int> delivered{0};
  ctrl::ApiResponse<ctrl::SubscriptionId> sub =
      app->context().subscribePacketIn(
          [&](const ctrl::PacketInEvent&) { ++delivered; });
  ASSERT_TRUE(sub.ok());
  ctrl::SubscriptionId id = sub.value();
  ASSERT_TRUE(static_cast<bool>(id));

  rig.controller.onPacketIn(
      of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0, {}});
  ASSERT_TRUE(waitFor([&] { return delivered.load() == 1; }));

  EXPECT_TRUE(app->context().unsubscribe(id).ok());
  rig.controller.onPacketIn(
      of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0, {}});
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(delivered.load(), 1);
  // The id is single-use.
  EXPECT_EQ(app->context().unsubscribe(id).code(),
            ctrl::ApiErrc::kInvalidArgument);
  rig.shield.shutdown();
}

TEST(IsolationAsync, PacketOutAsyncRequiresProvenance) {
  Rig rig;
  auto app = std::make_shared<TestApp>();
  rig.load(app,
           "PERM pkt_in_event\n"
           "PERM send_pkt_out LIMITING FROM_PKT_IN\n");
  // A fabricated packet (never delivered as a packet-in) must be denied on
  // the async path exactly like the sync one.
  of::PacketOut out;
  out.dpid = 1;
  out.inPort = 1;
  out.packet = of::Packet::makeTcp(
      of::MacAddress::fromUint64(0xa), of::MacAddress::fromUint64(0xb),
      of::Ipv4Address(10, 0, 0, 1), of::Ipv4Address(10, 0, 0, 2), 1234, 80,
      of::tcpflags::kSyn);
  out.fromPacketIn = true;  // Claimed, but the deputy knows better.
  ctrl::ApiResult result =
      app->context().api().sendPacketOutAsync(out).get();
  EXPECT_EQ(result.code(), ctrl::ApiErrc::kPermissionDenied);
  rig.shield.shutdown();
}

}  // namespace
}  // namespace sdnshield::iso
