#include "of/match.h"

#include <gtest/gtest.h>

#include <random>

namespace sdnshield::of {
namespace {

HeaderFields tcpFields(PortNo inPort, const char* src, const char* dst,
                       std::uint16_t tpSrc, std::uint16_t tpDst) {
  HeaderFields f;
  f.inPort = inPort;
  f.ethSrc = MacAddress::fromUint64(0x0a);
  f.ethDst = MacAddress::fromUint64(0x0b);
  f.ethType = 0x0800;
  f.ipSrc = Ipv4Address::parse(src);
  f.ipDst = Ipv4Address::parse(dst);
  f.ipProto = 6;
  f.tpSrc = tpSrc;
  f.tpDst = tpDst;
  return f;
}

TEST(MaskedIpv4, ExactMatchOnlyAcceptsEqualAddress) {
  MaskedIpv4 exact{Ipv4Address::parse("10.0.0.1")};
  EXPECT_TRUE(exact.matches(Ipv4Address::parse("10.0.0.1")));
  EXPECT_FALSE(exact.matches(Ipv4Address::parse("10.0.0.2")));
}

TEST(MaskedIpv4, PrefixMatchAcceptsWholeSubnet) {
  MaskedIpv4 subnet{Ipv4Address::parse("10.13.0.0"),
                    Ipv4Address::prefixMask(16)};
  EXPECT_TRUE(subnet.matches(Ipv4Address::parse("10.13.200.9")));
  EXPECT_FALSE(subnet.matches(Ipv4Address::parse("10.14.0.1")));
}

TEST(MaskedIpv4, SubsumesRequiresWiderMaskAndAgreement) {
  MaskedIpv4 wide{Ipv4Address::parse("10.13.0.0"), Ipv4Address::prefixMask(16)};
  MaskedIpv4 narrow{Ipv4Address::parse("10.13.7.0"),
                    Ipv4Address::prefixMask(24)};
  EXPECT_TRUE(wide.subsumes(narrow));
  EXPECT_FALSE(narrow.subsumes(wide));
  MaskedIpv4 disjoint{Ipv4Address::parse("10.14.0.0"),
                      Ipv4Address::prefixMask(24)};
  EXPECT_FALSE(wide.subsumes(disjoint));
}

TEST(MaskedIpv4, SubsumesIsReflexive) {
  MaskedIpv4 m{Ipv4Address::parse("10.13.0.0"), Ipv4Address::prefixMask(16)};
  EXPECT_TRUE(m.subsumes(m));
}

TEST(MaskedIpv4, OverlapsDetectsSharedAddresses) {
  MaskedIpv4 a{Ipv4Address::parse("10.13.0.0"), Ipv4Address::prefixMask(16)};
  MaskedIpv4 b{Ipv4Address::parse("10.13.7.0"), Ipv4Address::prefixMask(24)};
  MaskedIpv4 c{Ipv4Address::parse("10.14.0.0"), Ipv4Address::prefixMask(16)};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(MaskedIpv4, EqualityIgnoresUnmaskedBits) {
  MaskedIpv4 a{Ipv4Address::parse("10.13.0.0"), Ipv4Address::prefixMask(16)};
  MaskedIpv4 b{Ipv4Address::parse("10.13.99.99"), Ipv4Address::prefixMask(16)};
  EXPECT_EQ(a, b);
}

TEST(FlowMatch, WildcardAllMatchesEverything) {
  FlowMatch any = FlowMatch::any();
  EXPECT_TRUE(any.matches(tcpFields(1, "10.0.0.1", "10.0.0.2", 80, 443)));
  EXPECT_TRUE(any.isWildcardAll());
  EXPECT_EQ(any.constrainedFieldCount(), 0);
}

TEST(FlowMatch, ExactFieldsMustAllAgree) {
  FlowMatch match;
  match.inPort = 1;
  match.ipDst = MaskedIpv4{Ipv4Address::parse("10.0.0.2")};
  match.tpDst = 443;
  EXPECT_TRUE(match.matches(tcpFields(1, "10.0.0.1", "10.0.0.2", 80, 443)));
  EXPECT_FALSE(match.matches(tcpFields(2, "10.0.0.1", "10.0.0.2", 80, 443)));
  EXPECT_FALSE(match.matches(tcpFields(1, "10.0.0.1", "10.0.0.3", 80, 443)));
  EXPECT_FALSE(match.matches(tcpFields(1, "10.0.0.1", "10.0.0.2", 80, 80)));
}

TEST(FlowMatch, ConstrainedFieldAbsentFromPacketFailsMatch) {
  FlowMatch match;
  match.tpDst = 80;
  HeaderFields arpLike;
  arpLike.inPort = 1;
  arpLike.ethType = 0x0806;
  EXPECT_FALSE(match.matches(arpLike));
}

TEST(FlowMatch, SubsumptionWiderCoversNarrower) {
  FlowMatch wide;
  wide.ipDst = MaskedIpv4{Ipv4Address::parse("10.13.0.0"),
                          Ipv4Address::prefixMask(16)};
  FlowMatch narrow = wide;
  narrow.tpDst = 80;
  narrow.ipDst = MaskedIpv4{Ipv4Address::parse("10.13.4.0"),
                            Ipv4Address::prefixMask(24)};
  EXPECT_TRUE(wide.subsumes(narrow));
  EXPECT_FALSE(narrow.subsumes(wide));
  EXPECT_TRUE(FlowMatch::any().subsumes(wide));
}

TEST(FlowMatch, OverlapRequiresCompatibleConstraints) {
  FlowMatch a;
  a.tpDst = 80;
  FlowMatch b;
  b.tpDst = 443;
  EXPECT_FALSE(a.overlaps(b));
  FlowMatch c;
  c.ipProto = 6;
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(a.overlaps(FlowMatch::any()));
}

TEST(FlowMatch, ToStringListsConstrainedFields) {
  FlowMatch match;
  match.inPort = 3;
  match.tpDst = 80;
  std::string text = match.toString();
  EXPECT_NE(text.find("in_port=3"), std::string::npos);
  EXPECT_NE(text.find("tp_dst=80"), std::string::npos);
}

// --- property tests -----------------------------------------------------------

class MatchPropertyTest : public ::testing::TestWithParam<unsigned> {};

FlowMatch randomMatch(std::mt19937& rng) {
  FlowMatch match;
  auto coin = [&] { return rng() % 2 == 0; };
  if (coin()) match.inPort = rng() % 4 + 1;
  if (coin()) match.ethType = 0x0800;
  if (coin()) {
    int bits = static_cast<int>(rng() % 4) * 8;  // 0/8/16/24.
    match.ipDst = MaskedIpv4{
        Ipv4Address(10, static_cast<std::uint8_t>(rng() % 4),
                    static_cast<std::uint8_t>(rng() % 4), 0),
        Ipv4Address::prefixMask(bits)};
  }
  if (coin()) match.ipProto = 6;
  if (coin()) match.tpDst = (rng() % 2) ? 80 : 443;
  return match;
}

HeaderFields randomFields(std::mt19937& rng) {
  std::string dst = "10." + std::to_string(rng() % 4) + "." +
                    std::to_string(rng() % 4) + ".5";
  return tcpFields(static_cast<PortNo>(rng() % 4 + 1), "10.0.0.1", dst.c_str(),
                   1000, (rng() % 2) ? 80 : 443);
}

TEST_P(MatchPropertyTest, SubsumptionImpliesMatchContainment) {
  std::mt19937 rng(GetParam());
  FlowMatch a = randomMatch(rng);
  FlowMatch b = randomMatch(rng);
  if (!a.subsumes(b)) GTEST_SKIP() << "pair not in subsumption relation";
  for (int i = 0; i < 50; ++i) {
    HeaderFields fields = randomFields(rng);
    if (b.matches(fields)) {
      EXPECT_TRUE(a.matches(fields))
          << "a=" << a.toString() << " b=" << b.toString();
    }
  }
}

TEST_P(MatchPropertyTest, MutualSubsumptionOfDisjointPairsNeverHolds) {
  std::mt19937 rng(GetParam() + 1000);
  FlowMatch a = randomMatch(rng);
  FlowMatch b = randomMatch(rng);
  if (!a.overlaps(b)) {
    EXPECT_FALSE(a.subsumes(b) && b.subsumes(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchPropertyTest,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace sdnshield::of
