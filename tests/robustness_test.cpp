// Robustness & failure injection: malformed language input never crashes
// (ParseError only), printed artifacts round-trip, and the runtime degrades
// cleanly when switches vanish, tables fill up or the deputy pool stops.
#include <gtest/gtest.h>

#include <random>

#include "cbench/generator.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/lang/printer.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace sdnshield {
namespace {

// --- language front end -----------------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<unsigned> {};

std::string randomTokenSoup(std::mt19937& rng, std::size_t words) {
  static const char* vocabulary[] = {
      "PERM",       "LIMITING",   "ASSERT",       "EITHER",     "OR",
      "AND",        "NOT",        "LET",          "APP",        "MEET",
      "JOIN",       "insert_flow", "network_access", "OWN_FLOWS",
      "IP_DST",     "MASK",       "WILDCARD",     "SWITCH",     "LINK",
      "VIRTUAL",    "MAX_PRIORITY", "{",          "}",          "(",
      ")",          ",",          "=",            "<=",         ">",
      "10.0.0.1",   "255.255.0.0", "42",          "\n",         "\\\n",
      "bogus_word", "FROM_PKT_IN",
  };
  std::string out;
  for (std::size_t i = 0; i < words; ++i) {
    out += vocabulary[rng() % std::size(vocabulary)];
    out += " ";
  }
  return out;
}

TEST_P(ParserFuzzTest, ManifestParserThrowsParseErrorOrSucceeds) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string input = randomTokenSoup(rng, 1 + rng() % 30);
    try {
      lang::parseManifest(input);
    } catch (const lang::ParseError&) {
      // Expected failure mode: anything else would escape the SUT.
    }
  }
}

TEST_P(ParserFuzzTest, PolicyParserThrowsParseErrorOrSucceeds) {
  std::mt19937 rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    std::string input = randomTokenSoup(rng, 1 + rng() % 30);
    try {
      lang::parsePolicy(input);
    } catch (const lang::ParseError&) {
    }
  }
}

TEST_P(ParserFuzzTest, LexerHandlesArbitraryBytes) {
  std::mt19937 rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    std::string input;
    std::size_t length = rng() % 64;
    for (std::size_t j = 0; j < length; ++j) {
      input += static_cast<char>(rng() % 96 + 32);  // Printable ASCII.
    }
    try {
      lang::lex(input);
    } catch (const lang::ParseError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0u, 10u));

TEST(RoundTrip, SyntheticManifestsSurvivePrintParse) {
  // The Figure-5 generator produces structurally rich manifests: print each
  // and re-parse to an equivalent set.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    perm::PermissionSet original = cbench::makeSyntheticManifest(5, seed);
    perm::PermissionSet reparsed =
        lang::parsePermissions(lang::formatPermissions(original));
    EXPECT_TRUE(original.equivalent(reparsed)) << "seed " << seed;
  }
}

// --- runtime failure injection --------------------------------------------------------

class RobustTestApp final : public ctrl::App {
 public:
  std::string name() const override { return "robust"; }
  std::string requestedManifest() const override { return ""; }
  void init(ctrl::AppContext& context) override { context_ = &context; }
  ctrl::AppContext& context() { return *context_; }

 private:
  ctrl::AppContext* context_ = nullptr;
};

of::FlowMod anyMod(std::uint16_t tpDst) {
  of::FlowMod mod;
  mod.match.tpDst = tpDst;
  mod.priority = 10;
  mod.actions.push_back(of::OutputAction{1});
  return mod;
}

TEST(FailureInjection, CallsAgainstDetachedSwitchFailCleanly) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(2);
  iso::ShieldRuntime shield(controller);
  auto app = std::make_shared<RobustTestApp>();
  shield.loadApp(app, lang::parsePermissions("PERM insert_flow\n"
                                             "PERM read_flow_table\n"));
  controller.detachSwitch(2);
  ctrl::ApiResult insert = app->context().api().insertFlow(2, anyMod(80));
  EXPECT_FALSE(insert.ok());
  EXPECT_EQ(insert.code(), ctrl::ApiErrc::kInvalidArgument);
  EXPECT_FALSE(app->context().api().readFlowTable(2).ok());
  // The surviving switch keeps working.
  EXPECT_TRUE(app->context().api().insertFlow(1, anyMod(80)).ok());
}

TEST(FailureInjection, TableFullSurfacesErrorAndEvent) {
  ctrl::Controller controller;
  auto tiny = std::make_shared<sim::SimSwitch>(1, /*tableCapacity=*/2);
  tiny->setController(&controller);
  controller.attachSwitch(tiny, ctrl::ConnectionInfo{1, "sim", "in-process", 0});
  int errorEvents = 0;
  controller.addErrorSubscriber(1, [&](const ctrl::Event& event) {
    if (std::get<ctrl::ErrorEvent>(event).error.type ==
        of::ErrorType::kTableFull) {
      ++errorEvents;
    }
  });
  EXPECT_TRUE(controller.kernelInsertFlow(7, 1, anyMod(1)).ok());
  EXPECT_TRUE(controller.kernelInsertFlow(7, 1, anyMod(2)).ok());
  ctrl::ApiResult full = controller.kernelInsertFlow(7, 1, anyMod(3));
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(errorEvents, 1);
  // Ownership was not recorded for the failed insert... the tracker should
  // not have ghosts beyond what the switch holds.
  EXPECT_EQ(tiny->flowCount(), 2u);
}

TEST(FailureInjection, KsdShutdownMakesApiCallsThrowNotHang) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  auto shield = std::make_unique<iso::ShieldRuntime>(controller);
  auto app = std::make_shared<RobustTestApp>();
  shield->loadApp(app, lang::parsePermissions("PERM insert_flow\n"));
  shield->shutdown();
  EXPECT_THROW(app->context().api().insertFlow(1, anyMod(80)),
               std::runtime_error);
}

TEST(FailureInjection, GeneratorRefusesUnmeasurableNetworks) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.addSwitch(1);  // No host on port 1: nothing to probe.
  cbench::Generator generator(network);
  EXPECT_THROW(generator.setup(), std::runtime_error);
}

TEST(FailureInjection, MeasureRoundTimesOutWithoutAController) {
  // Switches with no app to answer: rounds time out instead of hanging.
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  cbench::Generator generator(network);
  // No L2 app loaded: setup's priming rounds simply time out...
  generator.setup();
  auto sample = generator.measureRound(1, std::chrono::milliseconds(50));
  EXPECT_FALSE(sample.has_value());
}

TEST(FailureInjection, UnloadedAppEventsAreNotDelivered) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  iso::ShieldRuntime shield(controller);
  auto app = std::make_shared<RobustTestApp>();
  of::AppId id = shield.loadApp(
      app, lang::parsePermissions("PERM pkt_in_event\n"));
  std::atomic<int> delivered{0};
  app->context().subscribePacketIn(
      [&](const ctrl::PacketInEvent&) { delivered.fetch_add(1); });
  shield.unloadApp(id);
  controller.onPacketIn(of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0, {}});
  EXPECT_EQ(delivered.load(), 0);
}

TEST(FailureInjection, ReloadingAppIdsDoNotCollide) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  iso::ShieldRuntime shield(controller);
  auto first = std::make_shared<RobustTestApp>();
  of::AppId firstId =
      shield.loadApp(first, lang::parsePermissions("PERM insert_flow\n"));
  shield.unloadApp(firstId);
  auto second = std::make_shared<RobustTestApp>();
  of::AppId secondId =
      shield.loadApp(second, lang::parsePermissions("PERM insert_flow\n"));
  EXPECT_NE(firstId, secondId);
  EXPECT_TRUE(second->context().api().insertFlow(1, anyMod(80)).ok());
}

}  // namespace
}  // namespace sdnshield
