// Wire-vs-sim differential (ISSUE acceptance): the same cbench workload
// driven over TCP loopback against net::OfServer and driven in-process
// through Controller::onPacketIn must produce byte-identical flow-mod
// frames and identical decision/audit totals — and the wire frontend must
// sustain >= 1,024 concurrent switch connections doing it.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "apps/l2_learning.h"
#include "controller/controller.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "net/cbench_client.h"
#include "net/of_server.h"
#include "of/wire.h"

namespace sdnshield {
namespace {

namespace wire = of::wire;

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

/// In-process stand-in for the TCP peer: records exactly the bytes the wire
/// would carry (of::wire's encode, xid 0 — the same default TcpSwitchConn
/// uses for unsolicited sends).
class RecordingConn final : public ctrl::SwitchConn {
 public:
  ctrl::ApiResult applyFlowMod(const of::FlowMod& mod) override {
    std::lock_guard lock(mutex_);
    flowModFrames_.push_back(wire::encodeFlowMod(mod));
    return ctrl::ApiResult::success();
  }
  ctrl::ApiResult transmitPacket(const of::PacketOut&) override {
    packetOuts_.fetch_add(1);
    return ctrl::ApiResult::success();
  }
  ctrl::ApiResponse<std::vector<of::FlowEntry>> dumpFlows() const override {
    return ctrl::ApiResponse<std::vector<of::FlowEntry>>::success({});
  }
  ctrl::ApiResponse<of::StatsReply> queryStats(
      const of::StatsRequest&) const override {
    return ctrl::ApiResponse<of::StatsReply>::success({});
  }

  std::vector<of::Bytes> flowModFrames() const {
    std::lock_guard lock(mutex_);
    return flowModFrames_;
  }
  std::size_t flowModCount() const {
    std::lock_guard lock(mutex_);
    return flowModFrames_.size();
  }
  std::uint64_t packetOutCount() const { return packetOuts_.load(); }

 private:
  mutable std::mutex mutex_;
  std::vector<of::Bytes> flowModFrames_;
  std::atomic<std::uint64_t> packetOuts_{0};
};

/// One emulated switch's workload, exactly as net::runCbenchClient derives
/// it from the connection index: MACs/IPs from the serial, announcements on
/// ports 1 and 4, then identical TCP SYN probes from port 4.
struct Workload {
  of::DatapathId dpid;
  of::PacketIn announceTarget;
  of::PacketIn announceProbe;
  of::PacketIn probe;
};

Workload workloadFor(std::size_t index, of::DatapathId firstDpid) {
  std::uint64_t serial = index + 1;
  Workload w;
  w.dpid = firstDpid + index;
  of::MacAddress targetMac =
      of::MacAddress::fromUint64(0x020000000000ULL + serial);
  of::MacAddress probeMac =
      of::MacAddress::fromUint64(0x040000000000ULL + serial);
  of::Ipv4Address targetIp(10, 0, static_cast<std::uint8_t>(serial >> 8),
                           static_cast<std::uint8_t>(serial & 0xff));
  of::Ipv4Address probeIp(10, 9, static_cast<std::uint8_t>(serial >> 8),
                          static_cast<std::uint8_t>(serial & 0xff));

  w.announceTarget.dpid = w.dpid;
  w.announceTarget.inPort = 1;
  w.announceTarget.packet = of::Packet::makeArpRequest(
      targetMac, targetIp, of::Ipv4Address(10, 255, 255, 254));

  w.announceProbe.dpid = w.dpid;
  w.announceProbe.inPort = 4;
  w.announceProbe.packet = of::Packet::makeArpRequest(
      probeMac, probeIp, of::Ipv4Address(10, 255, 255, 254));

  w.probe.dpid = w.dpid;
  w.probe.inPort = 4;
  w.probe.reason = of::PacketInReason::kNoMatch;
  w.probe.packet = of::Packet::makeTcp(probeMac, targetMac, probeIp, targetIp,
                                       12345, 80, of::tcpflags::kSyn);
  return w;
}

/// The in-process half of the differential: the same controller + shield +
/// L2 app stack `sdnshield serve` runs, driven directly via onPacketIn.
struct SimMirror {
  ctrl::Controller controller;
  iso::ShieldRuntime shield{controller};
  std::vector<std::shared_ptr<RecordingConn>> conns;

  SimMirror() {
    auto app = std::make_shared<apps::L2LearningSwitch>();
    shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));
  }
  ~SimMirror() { shield.shutdown(); }

  void run(std::size_t connections, std::size_t rounds,
           of::DatapathId firstDpid) {
    for (std::size_t i = 0; i < connections; ++i) {
      auto conn = std::make_shared<RecordingConn>();
      ASSERT_TRUE(static_cast<bool>(controller.attachSwitch(
          conn, ctrl::ConnectionInfo{firstDpid + i, "sim", "in-process", 0})));
      conns.push_back(conn);
    }
    for (std::size_t i = 0; i < connections; ++i) {
      Workload w = workloadFor(i, firstDpid);
      controller.onPacketIn(w.announceTarget);
      controller.onPacketIn(w.announceProbe);
      for (std::size_t round = 0; round < rounds; ++round) {
        controller.onPacketIn(w.probe);
      }
    }
    // The shield posts events to the app thread; wait for every probe's
    // flow-mod to land on its recording conn.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (auto& conn : conns) {
      while (conn->flowModCount() < rounds &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      ASSERT_EQ(conn->flowModCount(), rounds);
    }
  }
};

/// The wire half: `sdnshield serve`'s stack behind the epoll frontend.
struct WireStack {
  ctrl::Controller controller;
  iso::ShieldRuntime shield{controller};
  net::OfServer server;

  explicit WireStack(net::OfServerConfig config = {})
      : server(controller, config) {
    auto app = std::make_shared<apps::L2LearningSwitch>();
    shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));
  }
  ~WireStack() {
    server.stop();
    shield.shutdown();
  }
};

TEST(WireSimDifferential, FlowModFramesAreByteIdenticalToInProcessPath) {
  constexpr std::size_t kConnections = 32;
  constexpr std::size_t kRounds = 4;
  constexpr of::DatapathId kFirstDpid = 1;

  WireStack wireStack;
  std::string error;
  ASSERT_TRUE(wireStack.server.start(&error)) << error;

  net::CbenchClientConfig config;
  config.port = wireStack.server.port();
  config.connections = kConnections;
  config.rounds = kRounds;
  config.roundTimeout = std::chrono::milliseconds(5000);
  config.captureFlowModFrames = true;
  net::CbenchClientResult wireResult = net::runCbenchClient(config);
  ASSERT_TRUE(wireResult.ok) << wireResult.error;
  ASSERT_EQ(wireResult.timeouts, 0u) << "timeouts would skew the audit totals";
  ASSERT_EQ(wireResult.roundsCompleted, kConnections * kRounds);
  ASSERT_EQ(wireResult.flowModFrames.size(), kConnections);

  SimMirror mirror;
  mirror.run(kConnections, kRounds, kFirstDpid);

  // Byte identity, per connection, in arrival order: the TCP transport must
  // be a transparent pipe around the same decisions.
  for (std::size_t i = 0; i < kConnections; ++i) {
    std::vector<of::Bytes> simFrames = mirror.conns[i]->flowModFrames();
    ASSERT_EQ(wireResult.flowModFrames[i].size(), simFrames.size())
        << "connection " << i;
    for (std::size_t f = 0; f < simFrames.size(); ++f) {
      ASSERT_EQ(wireResult.flowModFrames[i][f], simFrames[f])
          << "connection " << i << " frame " << f;
    }
  }

  // Decision/audit behavior: both stacks mediated the same app activity.
  EXPECT_EQ(wireStack.controller.audit().totalRecorded(),
            mirror.controller.audit().totalRecorded());
  EXPECT_EQ(wireStack.controller.audit().deniedCount(),
            mirror.controller.audit().deniedCount());
  EXPECT_EQ(wireStack.controller.dispatchFaultCount(), 0u);
  EXPECT_EQ(mirror.controller.dispatchFaultCount(), 0u);
  EXPECT_EQ(wireStack.server.framingErrors(), 0u);

  // Every wire switch attached under the "tcp" transport through the one
  // attachSwitch seam.
  for (std::size_t i = 0; i < kConnections; ++i) {
    auto info = wireStack.controller.connectionInfo(kFirstDpid + i);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->transport, "tcp");
    EXPECT_EQ(info->ofVersion, 0x01);
  }
}

TEST(WireSimDifferential, Sustains1024ConcurrentSwitchConnections) {
  // Both endpoints live in this process: every loopback connection costs two
  // fds, plus epoll/eventfd/test overhead. Raise the soft fd limit first.
  rlimit limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  rlim_t wanted = 4096;
  if (limit.rlim_cur < wanted) {
    rlimit raised = limit;
    raised.rlim_cur = std::min<rlim_t>(wanted, limit.rlim_max);
    ::setrlimit(RLIMIT_NOFILE, &raised);
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  }

  // TSan instruments every one of the ~2k sockets' happens-before edges;
  // scale the fleet down so the interleaving coverage stays, the wall-clock
  // cost does not (same pattern as the mck scenario suites).
  std::size_t connections = kTsan ? 128 : 1024;
  if (limit.rlim_cur < 2 * connections + 64) {
    connections = (static_cast<std::size_t>(limit.rlim_cur) - 64) / 2;
  }
  ASSERT_GE(connections, 64u) << "fd limit too low to exercise concurrency";

  WireStack wireStack;
  std::string error;
  ASSERT_TRUE(wireStack.server.start(&error)) << error;

  net::CbenchClientConfig config;
  config.port = wireStack.server.port();
  config.connections = connections;
  config.rounds = 1;  // Every switch still gets a real flow-mod decision.
  config.connectTimeout = std::chrono::milliseconds(20000);
  config.roundTimeout = std::chrono::milliseconds(20000);

  // The client keeps every connection open until the whole campaign settles,
  // so observing attachedCount() from here while it runs captures true
  // concurrency (after runCbenchClient returns the sessions drain and the
  // gauges drop back).
  net::CbenchClientResult result;
  std::thread client([&] { result = net::runCbenchClient(config); });
  EXPECT_TRUE(
      wireStack.server.waitForSwitches(connections, std::chrono::seconds(60)));
  std::size_t peakAttached = wireStack.server.attachedCount();
  std::size_t peakConnections = wireStack.server.connectionCount();
  client.join();

  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.handshaked, connections);
  EXPECT_EQ(result.roundsCompleted + result.timeouts, connections);
  EXPECT_EQ(wireStack.server.framingErrors(), 0u);
  // All concurrent: the server held every switch simultaneously.
  EXPECT_GE(peakAttached, connections);
  EXPECT_GE(peakConnections, connections);
}

TEST(WireSimDifferential, MalformedPeerDoesNotDisturbNeighbours) {
  WireStack wireStack;
  std::string error;
  ASSERT_TRUE(wireStack.server.start(&error)) << error;

  // A healthy fleet runs while a raw socket speaks garbage at the server.
  net::CbenchClientConfig config;
  config.port = wireStack.server.port();
  config.connections = 8;
  config.rounds = 2;
  config.roundTimeout = std::chrono::milliseconds(5000);

  std::thread saboteur([port = wireStack.server.port()] {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      std::uint8_t garbage[32];
      for (std::size_t i = 0; i < sizeof(garbage); ++i) {
        garbage[i] = static_cast<std::uint8_t>(0xc0 + i);
      }
      (void)::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ::close(fd);
  });

  net::CbenchClientResult result;
  std::thread client([&] { result = net::runCbenchClient(config); });
  // All 8 healthy switches attach and stay attached while the saboteur's
  // garbage stream is rejected.
  EXPECT_TRUE(wireStack.server.waitForSwitches(8, std::chrono::seconds(30)));
  client.join();
  saboteur.join();

  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.handshaked, 8u);
  EXPECT_EQ(result.roundsCompleted, 16u);
  // The garbage connection was counted, rejected, and torn down alone.
  EXPECT_GE(wireStack.server.framingErrors(), 1u);
}

}  // namespace
}  // namespace sdnshield
