// Fault containment and app supervision: crashing, hanging and flooding
// apps must degrade into audited faults, drops and quarantines — never into
// controller crashes or stalls. Exercises the FaultInjector sites, the
// container/KSD deadlines and the supervisor health state machine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "isolation/channel.h"
#include "isolation/fault_injector.h"
#include "isolation/ksd.h"
#include "isolation/supervisor.h"
#include "isolation/thread_container.h"
#include "switchsim/sim_network.h"

namespace sdnshield::iso {
namespace {

using namespace std::chrono_literals;
using lang::parsePermissions;

/// Polls @p predicate until it holds or @p timeout elapses.
bool waitFor(const std::function<bool()>& predicate,
             std::chrono::milliseconds timeout = 5000ms) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

/// A one-shot gate a hung handler blocks on until the test releases it.
class Gate {
 public:
  void open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

class TestApp final : public ctrl::App {
 public:
  explicit TestApp(std::string name = "sup_app") : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  std::string requestedManifest() const override { return ""; }
  void init(ctrl::AppContext& context) override { context_ = &context; }

  ctrl::AppContext& context() { return *context_; }

 private:
  std::string name_;
  ctrl::AppContext* context_ = nullptr;
};

class ThrowingInitApp final : public ctrl::App {
 public:
  std::string name() const override { return "bad_init"; }
  std::string requestedManifest() const override { return ""; }
  void init(ctrl::AppContext&) override {
    throw std::runtime_error("init exploded");
  }
};

of::PacketIn anyPacketIn() {
  return of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0, {}};
}

class SupervisionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

// --- FaultInjector -------------------------------------------------------------

TEST_F(SupervisionTest, InjectorFiresArmedCountThenDisarms) {
  auto& injector = FaultInjector::instance();
  injector.arm(sites::kContainerTask, FaultInjector::Fault::kThrow, 2);
  EXPECT_THROW(injector.inject(sites::kContainerTask), FaultInjected);
  EXPECT_THROW(injector.inject(sites::kContainerTask), FaultInjected);
  EXPECT_NO_THROW(injector.inject(sites::kContainerTask));  // Exhausted.
  EXPECT_EQ(injector.fired(sites::kContainerTask), 2u);
  // Other sites stay silent.
  EXPECT_NO_THROW(injector.inject(sites::kKsdTask));
  EXPECT_FALSE(injector.injectQueueFull(sites::kKsdQueue));
}

TEST_F(SupervisionTest, InjectorQueueFullSiteOnlyAffectsQueuePushes) {
  auto& injector = FaultInjector::instance();
  injector.arm(sites::kContainerPost, FaultInjector::Fault::kQueueFull, 1);
  EXPECT_TRUE(injector.injectQueueFull(sites::kContainerPost));
  EXPECT_FALSE(injector.injectQueueFull(sites::kContainerPost));
}

TEST_F(SupervisionTest, ScopedFaultDisarmsAtScopeExit) {
  auto& injector = FaultInjector::instance();
  {
    ScopedFault fault(sites::kContainerTask, FaultInjector::Fault::kThrow);
    EXPECT_THROW(injector.inject(sites::kContainerTask), FaultInjected);
  }
  // The guard disarmed the site on destruction; no reset() needed.
  EXPECT_NO_THROW(injector.inject(sites::kContainerTask));
  EXPECT_EQ(injector.fired(sites::kContainerTask), 1u);
}

// --- channel deadlines ---------------------------------------------------------

TEST_F(SupervisionTest, PushForTimesOutOnAFullQueue) {
  BoundedMpmcQueue<int> queue(1);
  ASSERT_TRUE(queue.pushFor(1, 10ms));
  auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pushFor(2, 20ms));
  EXPECT_GE(std::chrono::steady_clock::now() - before, 20ms);
}

TEST_F(SupervisionTest, PopForTimesOutOnAnEmptyQueue) {
  BoundedMpmcQueue<int> queue(1);
  EXPECT_FALSE(queue.popFor(20ms).has_value());
  queue.push(7);
  auto item = queue.popFor(20ms);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
}

// --- thread container ----------------------------------------------------------

TEST_F(SupervisionTest, PostAndWaitRethrowsTheTaskException) {
  ThreadContainer container(1, "thrower");
  container.start();
  EXPECT_THROW(
      container.postAndWait([] { throw std::runtime_error("task boom"); }),
      std::runtime_error);
  // The worker survived and keeps executing.
  std::atomic<bool> ran{false};
  EXPECT_TRUE(container.postAndWait([&] { ran = true; }));
  EXPECT_TRUE(ran.load());
  container.stop();
}

TEST_F(SupervisionTest, PostAndWaitTimesOutInsteadOfHangingForever) {
  ThreadContainer container(1, "hanger");
  container.start();
  Gate gate;
  EXPECT_FALSE(container.postAndWait([&] { gate.wait(); }, 50ms));
  gate.open();
  container.stop();
}

TEST_F(SupervisionTest, StopAbandonsAHungWorkerInsteadOfWedging) {
  auto container = std::make_shared<ThreadContainer>(1, "wedged");
  container->start();
  auto gate = std::make_shared<Gate>();
  container->post([gate] { gate->wait(); });
  auto before = std::chrono::steady_clock::now();
  container->stop(50ms);  // Must return promptly, not join forever.
  EXPECT_LT(std::chrono::steady_clock::now() - before, 5s);
  EXPECT_TRUE(container->quarantined());
  gate->open();  // Let the detached worker run off the shared state.
}

TEST_F(SupervisionTest, QuarantineBreaksPendingWaitersPromises) {
  ThreadContainer container(1, "sealed");
  container.start();
  Gate gate;
  container.post([&] { gate.wait(); });  // Occupy the worker.
  std::atomic<bool> waiterDone{false};
  std::atomic<bool> waiterResult{true};
  std::thread waiter([&] {
    waiterResult = container.postAndWait([] {});
    waiterDone = true;
  });
  ASSERT_TRUE(waitFor([&] { return container.pendingTasks() >= 1; }));
  container.quarantine();  // Discards the queued task: broken promise.
  ASSERT_TRUE(waitFor([&] { return waiterDone.load(); }));
  EXPECT_FALSE(waiterResult.load());
  gate.open();
  waiter.join();
  container.stop();
  // Post after quarantine is refused and counted.
  EXPECT_FALSE(container.tryPost([] {}));
  EXPECT_GE(container.droppedTasks(), 1u);
}

TEST_F(SupervisionTest, ContainerFaultHandlerSeesInjectedFaults) {
  ThreadContainer container(1, "injected");
  std::atomic<int> reported{0};
  container.setFaultHandler(
      [&](std::exception_ptr, const std::string&) { ++reported; });
  container.start();
  ScopedFault fault(sites::kContainerTask, FaultInjector::Fault::kThrow, 3);
  for (int i = 0; i < 5; ++i) container.post([] {});
  ASSERT_TRUE(waitFor([&] { return container.executedTasks() >= 5; }));
  EXPECT_EQ(container.faultCount(), 3u);
  EXPECT_EQ(reported.load(), 3);
  container.stop();
}

// --- KSD deadlines -------------------------------------------------------------

TEST_F(SupervisionTest, KsdCallMissesDeadlineWhenDeputyIsDelayed) {
  KsdPool pool(1, /*callTimeout=*/50ms);
  pool.start();
  ScopedFault fault(sites::kKsdTask, FaultInjector::Fault::kDelay, 1,
                    /*delay=*/300ms);
  EXPECT_THROW(pool.call<int>([] { return 1; }), DeadlineExceeded);
  // The deputy thread survived the abandoned call; later calls succeed.
  ASSERT_TRUE(waitFor([&] { return pool.processedCount() >= 1; }));
  EXPECT_EQ(pool.call<int>([] { return 42; }, 2000ms), 42);
  pool.stop();
}

TEST_F(SupervisionTest, DeputyThrowIsContainedAndCounted) {
  KsdPool pool(1, /*callTimeout=*/100ms);
  pool.start();
  // The injected throw fires before the queued work runs; the dropped task
  // breaks its promise, so the caller learns immediately (no deadline wait)
  // while the deputy survives.
  ScopedFault fault(sites::kKsdTask, FaultInjector::Fault::kThrow, 1);
  EXPECT_THROW(pool.call<int>([] { return 1; }), std::runtime_error);
  EXPECT_EQ(pool.faultCount(), 1u);
  EXPECT_EQ(pool.call<int>([] { return 7; }, 2000ms), 7);
  pool.stop();
}

TEST_F(SupervisionTest, SaturatedKsdQueueFailsTheSubmit) {
  KsdPool pool(1, /*callTimeout=*/30ms);
  pool.start();
  ScopedFault fault(sites::kKsdQueue, FaultInjector::Fault::kQueueFull, 1);
  EXPECT_FALSE(pool.submit([] {}));
  EXPECT_TRUE(pool.submit([] {}));
  pool.stop();
}

// --- supervisor state machine --------------------------------------------------

TEST_F(SupervisionTest, FaultsEscalateHealthyToSuspectedToQuarantined) {
  SupervisorOptions options;
  options.faultSuspectThreshold = 2;
  options.faultQuarantineThreshold = 4;
  Supervisor supervisor(options);
  std::atomic<int> quarantines{0};
  supervisor.setQuarantineHook(
      [&](of::AppId, const std::string&) { ++quarantines; });
  supervisor.watch(9, nullptr);
  EXPECT_EQ(supervisor.health(9), AppHealth::kHealthy);
  supervisor.recordFault(9, "boom 1");
  EXPECT_EQ(supervisor.health(9), AppHealth::kHealthy);
  supervisor.recordFault(9, "boom 2");
  EXPECT_EQ(supervisor.health(9), AppHealth::kSuspected);
  supervisor.recordFault(9, "boom 3");
  supervisor.recordFault(9, "boom 4");
  EXPECT_EQ(supervisor.health(9), AppHealth::kQuarantined);
  // Terminal: further faults never re-fire the hook.
  supervisor.recordFault(9, "boom 5");
  EXPECT_EQ(quarantines.load(), 1);
  EXPECT_EQ(supervisor.faultCount(9), 5u);
  EXPECT_EQ(supervisor.quarantinedTotal(), 1u);
}

TEST_F(SupervisionTest, EventDropsPastThresholdQuarantine) {
  SupervisorOptions options;
  options.dropQuarantineThreshold = 3;
  Supervisor supervisor(options);
  std::atomic<int> quarantines{0};
  supervisor.setQuarantineHook(
      [&](of::AppId, const std::string&) { ++quarantines; });
  supervisor.watch(4, nullptr);
  supervisor.recordEventDrop(4);
  EXPECT_EQ(supervisor.health(4), AppHealth::kSuspected);
  supervisor.recordEventDrop(4);
  supervisor.recordEventDrop(4);
  EXPECT_EQ(supervisor.health(4), AppHealth::kQuarantined);
  EXPECT_EQ(quarantines.load(), 1);
  EXPECT_EQ(supervisor.dropCount(4), 3u);
}

TEST_F(SupervisionTest, WatchdogQuarantinesAHungContainer) {
  SupervisorOptions options;
  options.taskDeadline = 20ms;
  options.taskHangDeadline = 60ms;
  options.heartbeatInterval = 5ms;
  Supervisor supervisor(options);
  std::atomic<int> quarantines{0};
  supervisor.setQuarantineHook(
      [&](of::AppId, const std::string&) { ++quarantines; });
  auto container = std::make_shared<ThreadContainer>(3, "hung");
  container->start();
  supervisor.watch(3, container);
  supervisor.start();
  auto gate = std::make_shared<Gate>();
  container->post([gate] { gate->wait(); });
  EXPECT_TRUE(waitFor(
      [&] { return supervisor.health(3) == AppHealth::kQuarantined; }));
  EXPECT_GE(supervisor.deadlineOverruns(3), 1u);
  EXPECT_EQ(quarantines.load(), 1);
  supervisor.stop();
  gate->open();
  container->stop();
}

// --- runtime end to end --------------------------------------------------------

TEST_F(SupervisionTest, ThrowingHandlerDoesNotKillSiblings) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  ShieldOptions options;
  options.supervisor.faultQuarantineThreshold = 1000;  // Containment only.
  ShieldRuntime shield(controller, options);

  auto faulty = std::make_shared<TestApp>("faulty");
  auto healthy = std::make_shared<TestApp>("healthy");
  shield.loadApp(faulty, parsePermissions("PERM pkt_in_event\n"));
  shield.loadApp(healthy, parsePermissions("PERM pkt_in_event\n"));
  std::atomic<int> healthyEvents{0};
  faulty->context().subscribePacketIn([](const ctrl::PacketInEvent&) {
    throw std::runtime_error("handler crash");
  });
  healthy->context().subscribePacketIn(
      [&](const ctrl::PacketInEvent&) { ++healthyEvents; });

  for (int i = 0; i < 8; ++i) controller.onPacketIn(anyPacketIn());
  EXPECT_TRUE(waitFor([&] { return healthyEvents.load() >= 8; }));
  EXPECT_TRUE(waitFor([&] { return controller.audit().faultCount() >= 8; }));
  // The faulty app's faults were contained, counted and audited.
  EXPECT_GE(shield.supervisor().faultCount(1), 8u);
  EXPECT_EQ(shield.supervisor().health(2), AppHealth::kHealthy);
  shield.shutdown();
}

TEST_F(SupervisionTest, RepeatedFaultsQuarantineTheAppAndRevokeItsAccess) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  ShieldOptions options;
  options.supervisor.faultSuspectThreshold = 2;
  options.supervisor.faultQuarantineThreshold = 3;
  ShieldRuntime shield(controller, options);

  auto faulty = std::make_shared<TestApp>("faulty");
  of::AppId id =
      shield.loadApp(faulty, parsePermissions("PERM pkt_in_event\n"));
  std::atomic<int> delivered{0};
  faulty->context().subscribePacketIn([&](const ctrl::PacketInEvent&) {
    ++delivered;
    throw std::runtime_error("handler crash");
  });

  for (int i = 0; i < 6; ++i) controller.onPacketIn(anyPacketIn());
  EXPECT_TRUE(waitFor(
      [&] { return shield.supervisor().health(id) == AppHealth::kQuarantined; }));
  // Quarantine revoked the permissions and cut the subscriptions.
  EXPECT_EQ(shield.engine().compiled(id), nullptr);
  int seen = delivered.load();
  for (int i = 0; i < 4; ++i) controller.onPacketIn(anyPacketIn());
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(delivered.load(), seen);
  // The quarantine is on the audit trail.
  bool audited = false;
  for (const auto& entry : controller.audit().entriesFor(id)) {
    if (entry.kind == engine::AuditKind::kSupervision) audited = true;
  }
  EXPECT_TRUE(audited);
  shield.shutdown();
}

TEST_F(SupervisionTest, HungHandlerTripsTheWatchdogIntoQuarantine) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  ShieldOptions options;
  options.supervisor.taskDeadline = 20ms;
  options.supervisor.taskHangDeadline = 80ms;
  options.supervisor.heartbeatInterval = 5ms;
  ShieldRuntime shield(controller, options);

  auto hung = std::make_shared<TestApp>("hung");
  of::AppId id = shield.loadApp(hung, parsePermissions("PERM pkt_in_event\n"));
  auto gate = std::make_shared<Gate>();
  hung->context().subscribePacketIn(
      [gate](const ctrl::PacketInEvent&) { gate->wait(); });
  controller.onPacketIn(anyPacketIn());
  EXPECT_TRUE(waitFor(
      [&] { return shield.supervisor().health(id) == AppHealth::kQuarantined; }));
  EXPECT_EQ(shield.engine().compiled(id), nullptr);
  gate->open();
  // Shutdown with the (released) worker must not wedge.
  shield.shutdown();
}

TEST_F(SupervisionTest, EventFloodIsSheddedNotStalled) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  ShieldOptions options;
  options.appQueueCapacity = 8;
  options.supervisor.dropQuarantineThreshold = 1u << 30;  // Drops only.
  ShieldRuntime shield(controller, options);

  auto slow = std::make_shared<TestApp>("slow");
  of::AppId id = shield.loadApp(slow, parsePermissions("PERM pkt_in_event\n"));
  auto gate = std::make_shared<Gate>();
  slow->context().subscribePacketIn(
      [gate](const ctrl::PacketInEvent&) { gate->wait(); });

  // Flood: dispatch must keep returning promptly even though the app's
  // queue (capacity 8) fills after the first few events.
  auto before = std::chrono::steady_clock::now();
  for (int i = 0; i < 256; ++i) controller.onPacketIn(anyPacketIn());
  EXPECT_LT(std::chrono::steady_clock::now() - before, 5s);
  EXPECT_GE(shield.supervisor().dropCount(id), 200u);
  auto container = shield.container(id);
  ASSERT_NE(container, nullptr);
  EXPECT_GE(container->droppedTasks(), 200u);
  gate->open();
  shield.shutdown();
}

TEST_F(SupervisionTest, FloodPastDropThresholdQuarantines) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  ShieldOptions options;
  options.appQueueCapacity = 4;
  options.supervisor.dropQuarantineThreshold = 16;
  ShieldRuntime shield(controller, options);

  auto slow = std::make_shared<TestApp>("slow");
  of::AppId id = shield.loadApp(slow, parsePermissions("PERM pkt_in_event\n"));
  auto gate = std::make_shared<Gate>();
  slow->context().subscribePacketIn(
      [gate](const ctrl::PacketInEvent&) { gate->wait(); });
  for (int i = 0; i < 64; ++i) controller.onPacketIn(anyPacketIn());
  EXPECT_TRUE(waitFor(
      [&] { return shield.supervisor().health(id) == AppHealth::kQuarantined; }));
  gate->open();
  shield.shutdown();
}

TEST_F(SupervisionTest, ThrowingInitIsContainedAndAudited) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  ShieldRuntime shield(controller);
  of::AppId id = shield.loadApp(std::make_shared<ThrowingInitApp>(),
                                parsePermissions("PERM pkt_in_event\n"));
  EXPECT_GE(id, 1u);
  EXPECT_GE(controller.audit().faultCount(), 1u);
  EXPECT_GE(shield.supervisor().faultCount(id), 1u);
  // The runtime still loads and serves other apps.
  auto fine = std::make_shared<TestApp>("fine");
  shield.loadApp(fine, parsePermissions("PERM visible_topology\n"));
  EXPECT_TRUE(fine->context().api().readTopology().ok());
  shield.shutdown();
}

TEST_F(SupervisionTest, DelayedDeputySurfacesAsFailedApiResultNotAHang) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  ShieldOptions options;
  options.ksdCallTimeout = 50ms;
  ShieldRuntime shield(controller, options);
  auto app = std::make_shared<TestApp>();
  shield.loadApp(app, parsePermissions("PERM visible_topology\n"));

  ScopedFault fault(sites::kKsdTask, FaultInjector::Fault::kDelay, 1,
                    /*delay=*/300ms);
  auto before = std::chrono::steady_clock::now();
  auto topology = app->context().api().readTopology();
  EXPECT_LT(std::chrono::steady_clock::now() - before, 5s);
  EXPECT_FALSE(topology.ok());
  EXPECT_EQ(topology.code(), ctrl::ApiErrc::kDeadlineExceeded);
  // Once the deputy recovers, calls work again.
  EXPECT_TRUE(waitFor([&] { return shield.ksd().processedCount() >= 1; }));
  EXPECT_TRUE(app->context().api().readTopology().ok());
  shield.shutdown();
}

TEST_F(SupervisionTest, DispatcherContainsThrowingInlineSubscriber) {
  ctrl::Controller controller;
  controller.addPacketInSubscriber(1, [](const ctrl::Event&) {
    throw std::runtime_error("inline subscriber crash");
  });
  std::atomic<int> delivered{0};
  controller.addPacketInSubscriber(2,
                                   [&](const ctrl::Event&) { ++delivered; });
  controller.onPacketIn(anyPacketIn());
  controller.onPacketIn(anyPacketIn());
  EXPECT_EQ(delivered.load(), 2);
  EXPECT_EQ(controller.dispatchFaultCount(), 2u);
  EXPECT_GE(controller.audit().faultCount(), 2u);
}

}  // namespace
}  // namespace sdnshield::iso
