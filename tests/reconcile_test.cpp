// Reconciliation engine tests: the paper's Scenario 1 end-to-end, mutual
// exclusion truncation heuristics, boundary intersection repair, stub
// handling and the MEET/JOIN + APP-reference machinery.
#include "core/reconcile/reconciler.h"

#include <gtest/gtest.h>

#include "cbench/generator.h"
#include "core/lang/policy_parser.h"
#include "core/lang/printer.h"

namespace sdnshield::reconcile {
namespace {

using lang::parseManifest;
using lang::parsePolicy;
using perm::Token;

Reconciler makeReconciler(const std::string& policyText) {
  return Reconciler(parsePolicy(policyText));
}

TEST(Reconciler, PaperScenario1EndToEnd) {
  // The monitoring app's manifest (§VII Scenario 1), verbatim.
  auto manifest = parseManifest(
      "APP monitoring\n"
      "PERM visible_topology LIMITING LocalTopo\n"
      "PERM read_statistics\n"
      "PERM network_access LIMITING AdminRange\n"
      "PERM insert_flow\n");
  auto reconciler = makeReconciler(
      "LET LocalTopo = {SWITCH 0,1 LINK {(0,1)}}\n"
      "LET AdminRange = {IP_DST 10.1.0.0 \\\n"
      "MASK 255.255.0.0}\n"
      "ASSERT EITHER { PERM network_access } \\\n"
      "OR { PERM insert_flow }\n");

  ReconcileResult result = reconciler.reconcile(manifest);

  // The paper's final permissions: insert_flow truncated, stubs expanded.
  EXPECT_FALSE(result.finalPermissions.has(Token::kInsertFlow));
  EXPECT_TRUE(result.finalPermissions.has(Token::kVisibleTopology));
  EXPECT_TRUE(result.finalPermissions.has(Token::kReadStatistics));
  EXPECT_TRUE(result.finalPermissions.has(Token::kHostNetwork));
  EXPECT_TRUE(result.finalPermissions.collectStubs().empty());

  // The network grant is now bounded to the admin range.
  perm::FilterExprPtr netFilter =
      *result.finalPermissions.filterFor(Token::kHostNetwork);
  ASSERT_NE(netFilter, nullptr);
  EXPECT_TRUE(netFilter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(10, 1, 2, 3), 80)));
  EXPECT_FALSE(netFilter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(203, 0, 113, 66), 80)));

  // Exactly one violation: the mutual exclusion, repaired by truncation.
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].kind, Violation::Kind::kMutualExclusion);
  ASSERT_EQ(result.violations[0].truncatedTokens.size(), 1u);
  EXPECT_EQ(result.violations[0].truncatedTokens[0], Token::kInsertFlow);
}

TEST(Reconciler, MutualExclusionPrefersTruncatingUnfilteredSide) {
  // Here the *first* side is the unrestricted one: it gets truncated.
  auto manifest = parseManifest(
      "APP app\n"
      "PERM send_pkt_out\n"
      "PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0\n");
  auto reconciler = makeReconciler(
      "ASSERT EITHER { PERM send_pkt_out } OR { PERM network_access }\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  EXPECT_FALSE(result.finalPermissions.has(Token::kSendPktOut));
  EXPECT_TRUE(result.finalPermissions.has(Token::kHostNetwork));
}

TEST(Reconciler, MutualExclusionTieTruncatesSecondSide) {
  auto manifest = parseManifest(
      "APP app\nPERM send_pkt_out\nPERM network_access\n");
  auto reconciler = makeReconciler(
      "ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  EXPECT_TRUE(result.finalPermissions.has(Token::kHostNetwork));
  EXPECT_FALSE(result.finalPermissions.has(Token::kSendPktOut));
}

TEST(Reconciler, MutualExclusionNotViolatedWhenOneSideAbsent) {
  auto manifest = parseManifest("APP app\nPERM network_access\n");
  auto reconciler = makeReconciler(
      "ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  EXPECT_TRUE(result.clean());
  EXPECT_TRUE(result.finalPermissions.has(Token::kHostNetwork));
}

TEST(Reconciler, BoundaryViolationRepairedByIntersection) {
  // The paper's monitoring-template boundary (§V).
  auto manifest = parseManifest(
      "APP monitor\n"
      "PERM read_topology\n"
      "PERM read_statistics\n"  // Broader than the PORT_LEVEL template.
      "PERM insert_flow\n");    // Not in the template at all.
  auto reconciler = makeReconciler(
      "LET templatePerm = {\n"
      "PERM read_topology\n"
      "PERM read_statistics LIMITING PORT_LEVEL\n"
      "PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0\n"
      "}\n"
      "LET monitorAppPerm = APP monitor\n"
      "ASSERT monitorAppPerm <= templatePerm\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].kind, Violation::Kind::kBoundary);
  // insert_flow is outside the boundary: gone after intersection.
  EXPECT_FALSE(result.finalPermissions.has(Token::kInsertFlow));
  // read_statistics survives but is narrowed to PORT_LEVEL.
  ASSERT_TRUE(result.finalPermissions.has(Token::kReadStatistics));
  perm::FilterExprPtr statsFilter =
      *result.finalPermissions.filterFor(Token::kReadStatistics);
  ASSERT_NE(statsFilter, nullptr);
  of::StatsRequest port;
  port.level = of::StatsLevel::kPort;
  of::StatsRequest flow;
  flow.level = of::StatsLevel::kFlow;
  EXPECT_TRUE(statsFilter->evaluate(perm::ApiCall::readStatistics(1, port)));
  EXPECT_FALSE(statsFilter->evaluate(perm::ApiCall::readStatistics(1, flow)));
}

TEST(Reconciler, BoundarySatisfiedIsClean) {
  auto manifest = parseManifest(
      "APP monitor\n"
      "PERM read_statistics LIMITING PORT_LEVEL\n");
  auto reconciler = makeReconciler(
      "LET tmpl = { PERM read_statistics LIMITING PORT_LEVEL "
      "OR SWITCH_LEVEL }\n"
      "LET appPerm = APP monitor\n"
      "ASSERT appPerm <= tmpl\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  EXPECT_TRUE(result.clean());
  EXPECT_TRUE(result.finalPermissions.has(Token::kReadStatistics));
}

TEST(Reconciler, UnresolvedStubIsReportedAndFailsClosed) {
  auto manifest = parseManifest(
      "APP app\nPERM network_access LIMITING AdminRange\n");
  auto reconciler = makeReconciler("");  // No bindings at all.
  ReconcileResult result = reconciler.reconcile(manifest);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].kind, Violation::Kind::kUnresolvedStub);
  // The stub stays in place and denies (fail closed).
  perm::FilterExprPtr filter =
      *result.finalPermissions.filterFor(Token::kHostNetwork);
  EXPECT_FALSE(filter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(10, 1, 1, 1), 80)));
}

TEST(Reconciler, DirectCustomizationViaRestrictBinding) {
  // §V permission customization: the admin appends filters to a grant by
  // writing the boundary as a template around the app.
  auto manifest = parseManifest("APP tenant\nPERM insert_flow\n");
  auto reconciler = makeReconciler(
      "LET tenantBound = { PERM insert_flow LIMITING "
      "IP_DST 10.7.0.0 MASK 255.255.0.0 }\n"
      "LET tenantPerm = APP tenant\n"
      "ASSERT tenantPerm <= tenantBound\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].kind, Violation::Kind::kBoundary);
  perm::FilterExprPtr filter =
      *result.finalPermissions.filterFor(Token::kInsertFlow);
  ASSERT_NE(filter, nullptr);
  of::FlowMod inside;
  inside.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 7, 1, 1)};
  inside.actions.push_back(of::OutputAction{1});
  of::FlowMod outside;
  outside.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 8, 1, 1)};
  outside.actions.push_back(of::OutputAction{1});
  EXPECT_TRUE(filter->evaluate(perm::ApiCall::insertFlow(1, 1, inside)));
  EXPECT_FALSE(filter->evaluate(perm::ApiCall::insertFlow(1, 1, outside)));
}

TEST(Reconciler, GeneralAssertionWithoutRepairIsReported) {
  auto manifest = parseManifest("APP app\nPERM insert_flow\n");
  auto reconciler = makeReconciler(
      "LET needed = { PERM read_statistics }\n"
      "LET appPerm = APP app\n"
      "ASSERT appPerm >= needed\n");  // App lacks the required grant.
  ReconcileResult result = reconciler.reconcile(manifest);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].kind, Violation::Kind::kAssertionFailed);
}

TEST(Reconciler, MeetJoinTemplatesCombine) {
  auto manifest = parseManifest(
      "APP app\nPERM insert_flow\nPERM read_statistics\n");
  auto reconciler = makeReconciler(
      "LET flows = { PERM insert_flow\nPERM delete_flow }\n"
      "LET reads = { PERM read_statistics\nPERM insert_flow }\n"
      "LET bound = flows JOIN reads\n"
      "LET appPerm = APP app\n"
      "ASSERT appPerm <= bound\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  EXPECT_TRUE(result.clean());
}

TEST(Reconciler, AppReferencesOtherDeployedApps) {
  auto manifest = parseManifest("APP newapp\nPERM insert_flow\n");
  perm::PermissionSet existing;
  existing.grant(Token::kInsertFlow);
  existing.grant(Token::kReadStatistics);
  auto reconciler = makeReconciler(
      "LET other = APP existing\n"
      "LET appPerm = APP newapp\n"
      "ASSERT appPerm <= other\n");
  ReconcileResult result =
      reconciler.reconcile(manifest, {{"existing", existing}});
  EXPECT_TRUE(result.clean());
}

TEST(Reconciler, UndefinedVariableThrows) {
  auto manifest = parseManifest("APP app\nPERM insert_flow\n");
  auto reconciler = makeReconciler("ASSERT nope <= nope\n");
  EXPECT_THROW(reconciler.reconcile(manifest), std::invalid_argument);
}

TEST(Reconciler, CyclicBindingThrows) {
  auto manifest = parseManifest("APP app\nPERM insert_flow\n");
  auto reconciler = makeReconciler(
      "LET a = b\nLET b = a\nASSERT a <= a\n");
  EXPECT_THROW(reconciler.reconcile(manifest), std::invalid_argument);
}

TEST(Reconciler, ConstraintsApplyInOrderAndCompose) {
  // First the boundary narrows network_access, then the exclusion drops
  // insert_flow.
  auto manifest = parseManifest(
      "APP app\n"
      "PERM network_access\n"
      "PERM insert_flow\n");
  auto reconciler = makeReconciler(
      "LET bound = { PERM network_access LIMITING IP_DST 10.1.0.0 MASK "
      "255.255.0.0\nPERM insert_flow }\n"
      "LET appPerm = APP app\n"
      "ASSERT appPerm <= bound\n"
      "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  EXPECT_EQ(result.violations.size(), 2u);
  EXPECT_TRUE(result.finalPermissions.has(Token::kHostNetwork));
  EXPECT_FALSE(result.finalPermissions.has(Token::kInsertFlow));
}

TEST(Reconciler, MutualExclusionOffersBothTruncationAlternatives) {
  auto manifest = parseManifest(
      "APP app\nPERM network_access\nPERM insert_flow\n");
  auto reconciler = makeReconciler(
      "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  ASSERT_EQ(result.violations.size(), 1u);
  const auto& alternatives = result.violations[0].alternatives;
  ASSERT_EQ(alternatives.size(), 2u);
  // First alternative is the applied repair.
  EXPECT_TRUE(alternatives[0].equivalent(result.finalPermissions));
  // The other keeps the opposite side.
  EXPECT_TRUE(alternatives[1].has(Token::kInsertFlow));
  EXPECT_FALSE(alternatives[1].has(Token::kHostNetwork));
  EXPECT_TRUE(alternatives[0].has(Token::kHostNetwork));
  EXPECT_FALSE(alternatives[0].has(Token::kInsertFlow));
}

TEST(Reconciler, BoundaryViolationOffersTheIntersection) {
  auto manifest = parseManifest("APP app\nPERM insert_flow\n");
  auto reconciler = makeReconciler(
      "LET bound = { PERM insert_flow LIMITING OWN_FLOWS }\n"
      "LET appPerm = APP app\n"
      "ASSERT appPerm <= bound\n");
  ReconcileResult result = reconciler.reconcile(manifest);
  ASSERT_EQ(result.violations.size(), 1u);
  ASSERT_EQ(result.violations[0].alternatives.size(), 1u);
  EXPECT_TRUE(result.violations[0].alternatives[0].equivalent(
      result.finalPermissions));
}

// --- property tests ----------------------------------------------------------------

class ReconcilerPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReconcilerPropertyTest, BoundaryRepairOnlyNarrowsAndLandsInBounds) {
  std::uint64_t seed = GetParam();
  lang::PermissionManifest manifest;
  manifest.appName = "app";
  manifest.permissions = cbench::makeSyntheticManifest(5, seed);
  perm::PermissionSet boundary = cbench::makeSyntheticManifest(3, seed + 100);
  std::string policyText = "LET bound = {\n" +
                           lang::formatPermissions(boundary) +
                           "}\nLET appPerm = APP app\n"
                           "ASSERT appPerm <= bound\n";
  Reconciler reconciler(parsePolicy(policyText));
  ReconcileResult result = reconciler.reconcile(manifest);
  // Repairs never widen the app's privileges...
  EXPECT_TRUE(manifest.permissions.includes(result.finalPermissions))
      << "seed " << seed;
  // ...and the repaired set always sits inside the boundary.
  EXPECT_TRUE(boundary.includes(result.finalPermissions)) << "seed " << seed;
}

TEST_P(ReconcilerPropertyTest, MutualExclusionNeverLeavesBothSides) {
  std::uint64_t seed = GetParam() + 500;
  lang::PermissionManifest manifest;
  manifest.appName = "app";
  manifest.permissions = cbench::makeSyntheticManifest(8, seed);
  Reconciler reconciler(parsePolicy(
      "ASSERT EITHER { PERM insert_flow\nPERM delete_flow } "
      "OR { PERM network_access\nPERM read_statistics }\n"));
  ReconcileResult result = reconciler.reconcile(manifest);
  bool holdsA = result.finalPermissions.has(Token::kInsertFlow) ||
                result.finalPermissions.has(Token::kDeleteFlow);
  bool holdsB = result.finalPermissions.has(Token::kHostNetwork) ||
                result.finalPermissions.has(Token::kReadStatistics);
  EXPECT_FALSE(holdsA && holdsB) << "seed " << seed;
  EXPECT_TRUE(manifest.permissions.includes(result.finalPermissions));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconcilerPropertyTest,
                         ::testing::Range(0u, 20u));

TEST(Reconciler, ViolationToStringIsReadable) {
  Violation violation;
  violation.kind = Violation::Kind::kMutualExclusion;
  violation.constraintText = "ASSERT EITHER A OR B";
  violation.detail = "both sides held";
  violation.truncatedTokens = {Token::kInsertFlow};
  std::string text = violation.toString();
  EXPECT_NE(text.find("mutual exclusion"), std::string::npos);
  EXPECT_NE(text.find("insert_flow"), std::string::npos);
}

}  // namespace
}  // namespace sdnshield::reconcile
