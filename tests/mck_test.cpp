// Deterministic interleaving exploration (src/mck, DESIGN.md §12) of the
// permission-epoch and lifecycle invariants: upgrade-vs-check,
// revoke-vs-in-flight-batch, updatePolicy-vs-concurrent-checks, and
// crash/recover at every market fault site. Each scenario asserts that no
// check observes a mixed grant set at a stable epoch, that a revoked app
// never emits a flow-mod after revocation, and (for the crash scenarios)
// that journal replay reproduces the live digest. The mutation-check pair
// at the bottom demonstrates why the explorer exists: a torn per-app
// publisher is caught deterministically here but is a statistical
// needle-in-a-haystack for the real-thread stress discipline.
#include "mck/mck.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "controller/controller.h"
#include "core/engine/permission_engine.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "isolation/api_proxy.h"
#include "market/app_market.h"
#include "market/journal.h"
#include "shard/shard_runtime.h"
#include "switchsim/sim_network.h"

namespace sdnshield {
namespace {

constexpr const char* kOpenPolicy =
    "LET Unused = {IP_DST 10.0.0.0 MASK 255.0.0.0}\n";

constexpr const char* kSwapperV1 =
    "APP swapper\n"
    "PERM read_statistics\n"
    "PERM insert_flow LIMITING MAX_PRIORITY 100\n"
    "PERM pkt_in_event\n";

constexpr const char* kSwapperV2 =
    "APP swapper\n"
    "PERM read_statistics\n"
    "PERM insert_flow LIMITING MAX_PRIORITY 100\n"
    "PERM pkt_in_event\n"
    "PERM visible_topology\n";

constexpr const char* kMonitorManifest =
    "APP monitor\n"
    "PERM read_statistics\n"
    "PERM pkt_in_event\n";

// Strips read_statistics from BOTH installed apps: the swap must land on
// both in one epoch, which is exactly what the checker thread probes.
constexpr const char* kRestrictBothPolicy =
    "LET bound = {\nPERM insert_flow\nPERM pkt_in_event\n}\n"
    "LET sw = APP swapper\n"
    "LET mon = APP monitor\n"
    "ASSERT sw <= bound\n"
    "ASSERT mon <= bound\n";

constexpr const char* kRestrictSwapperPolicy =
    "LET bound = {\nPERM insert_flow\nPERM pkt_in_event\n}\n"
    "LET sw = APP swapper\n"
    "ASSERT sw <= bound\n";

/// Market app with a configurable name/manifest that keeps its AppContext
/// (for async API submission from scenario threads).
class MckApp final : public ctrl::App {
 public:
  MckApp(std::string name, std::string manifest)
      : name_(std::move(name)), manifest_(std::move(manifest)) {}

  std::string name() const override { return name_; }
  std::string requestedManifest() const override { return manifest_; }
  void init(ctrl::AppContext& context) override { context_ = &context; }

  ctrl::AppContext& context() { return *context_; }

 private:
  std::string name_;
  std::string manifest_;
  ctrl::AppContext* context_ = nullptr;
};

/// No watchdog: the supervisor owns a real thread the virtual scheduler
/// cannot park, so model-checked rigs run with supervision off.
iso::ShieldOptions mckOptions() {
  iso::ShieldOptions options;
  options.supervise = false;
  return options;
}

struct MckRig {
  explicit MckRig(std::shared_ptr<market::MarketJournal> journal = nullptr)
      : shield(controller, mckOptions()),
        market(shield, lang::parsePolicy(kOpenPolicy), std::move(journal)) {}

  ctrl::Controller controller;
  iso::ShieldRuntime shield;
  market::AppMarket market;
};

/// Rig with one simulated switch so flow-mod emission is observable.
struct NetRig {
  NetRig()
      : network(controller),
        shield(controller, mckOptions()),
        market(shield, lang::parsePolicy(kOpenPolicy)) {
    network.buildLinear(1);
  }

  ctrl::Controller controller;
  sim::SimNetwork network;
  iso::ShieldRuntime shield;
  market::AppMarket market;
};

perm::ApiCall statsCall(of::AppId app) {
  perm::ApiCall call;
  call.type = perm::ApiCallType::kReadStatistics;
  call.app = app;
  call.statsLevel = of::StatsLevel::kSwitch;
  return call;
}

perm::ApiCall topoCall(of::AppId app) {
  perm::ApiCall call;
  call.type = perm::ApiCallType::kReadTopology;
  call.app = app;
  return call;
}

of::FlowMod modTo(const char* ipDst) {
  of::FlowMod mod;
  mod.match.ethType = 0x0800;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ipDst)};
  mod.priority = 10;
  mod.actions.push_back(of::OutputAction{1});
  return mod;
}

/// Coverage line per scenario (EXPERIMENTS.md "Interleaving coverage"
/// table is regenerated from these).
void logCoverage(const char* name, const mck::Result& result) {
  std::cout << "mck coverage: " << name << ": schedules=" << result.schedules
            << " pruned=" << result.prunedSchedules
            << " steps=" << result.steps
            << " exhausted=" << (result.exhausted ? "yes" : "no") << "\n";
  testing::Test::RecordProperty(std::string(name) + "_schedules",
                                static_cast<int>(result.schedules));
}

market::AppFactory mckFactory() {
  return [](const std::string& name, std::uint32_t version)
             -> std::shared_ptr<ctrl::App> {
    if (name != "swapper") return nullptr;
    return std::make_shared<MckApp>("swapper",
                                    version >= 2 ? kSwapperV2 : kSwapperV1);
  };
}

// --- upgrade vs concurrent checks ------------------------------------------

// A live upgrade (v1 -> v2 adds visible_topology) races a checker probing
// the grant at epoch-stable brackets. The engine swap is one install: at any
// stable epoch the checker must see a coherent set — read_statistics is in
// BOTH versions, so losing it mid-upgrade would be a torn grant.
TEST(Mck, UpgradeVsCheckIsAtomicAndExhaustivelyExplored) {
  auto scenario = [](mck::Run& run) {
    auto rig = std::make_shared<MckRig>();
    auto id = rig->market.installApp(
        std::make_shared<MckApp>("swapper", kSwapperV1), 1);
    mck::require(id.ok(), "setup: installApp failed");
    of::AppId app = id.value();

    run.thread("upgrader", [rig, app] {
      ctrl::ApiResult result = rig->market.upgradeApp(
          app, std::make_shared<MckApp>("swapper", kSwapperV2), 2);
      mck::require(result.ok(), "upgradeApp failed");
    });
    run.thread("checker", [rig, app] {
      engine::PermissionEngine& engine = rig->shield.engine();
      for (int i = 0; i < 2; ++i) {
        std::uint64_t e1 = engine.epoch();
        bool stats = engine.check(statsCall(app)).allowed;
        mck::yield("checker.gap");
        bool topo = engine.check(topoCall(app)).allowed;
        if (engine.epoch() != e1) continue;  // Swap raced the probe pair.
        mck::require(stats,
                     "stable-epoch probe lost read_statistics mid-upgrade");
        (void)topo;  // Either version is coherent; only tearing is not.
      }
    });
    run.finally([rig, app] {
      auto entry = rig->market.entry(app);
      mck::require(entry.has_value() && entry->version == 2,
                   "upgrade did not commit");
      mck::require(rig->shield.engine().check(topoCall(app)).allowed,
                   "v2 grant not active after quiescence");
    });
  };

  mck::Result result = mck::Explorer().explore(scenario);
  logCoverage("upgrade_vs_check", result);
  EXPECT_FALSE(result.violated) << result.formatTrace();
  EXPECT_TRUE(result.exhausted)
      << "state space truncated at " << result.schedules << " schedules";
  EXPECT_GT(result.schedules, 1u);
}

// --- revoke vs in-flight async batch ---------------------------------------

// An app submits a batch of async flow insertions while the market revokes
// it. Whatever order the deputy drains the batch in, no flow-mod may land
// after revokeApp returned: revocation uninstalls the grant and quarantines
// before returning, so still-queued calls must be denied at execution.
TEST(Mck, RevokeVsInFlightBatchNeverLeaksFlowMods) {
  struct Shared {
    std::vector<ctrl::ApiFuture<ctrl::ApiResult>> futures;
    std::size_t flowsAtRevoke = 0;
    bool revoked = false;
  };

  auto scenario = [](mck::Run& run) {
    auto rig = std::make_shared<NetRig>();
    auto app = std::make_shared<MckApp>("swapper", kSwapperV1);
    auto id = rig->market.installApp(app, 1);
    mck::require(id.ok(), "setup: installApp failed");
    of::AppId appId = id.value();
    auto shared = std::make_shared<Shared>();

    run.thread("submitter", [app, shared] {
      shared->futures.push_back(
          app->context().api().insertFlowAsync(1, modTo("10.0.0.1")));
      shared->futures.push_back(
          app->context().api().insertFlowAsync(1, modTo("10.0.0.2")));
    });
    run.thread("revoker", [rig, appId, shared] {
      ctrl::ApiResult result = rig->market.revokeApp(appId, "mck revoke");
      mck::require(result.ok(), "revokeApp failed");
      // Atomic with the quarantine step: nothing may land past this count.
      shared->flowsAtRevoke = rig->network.switchAt(1)->flowCount();
      shared->revoked = true;
    });
    run.finally([rig, appId, shared] {
      mck::require(shared->revoked, "revoker did not complete");
      mck::require(
          rig->network.switchAt(1)->flowCount() == shared->flowsAtRevoke,
          "a revoked app emitted a flow-mod after revocation");
      auto entry = rig->market.entry(appId);
      mck::require(entry.has_value() &&
                       entry->state == market::AppState::kRevoked,
                   "revocation not recorded in the market entry");
    });
  };

  mck::Result result = mck::Explorer().explore(scenario);
  logCoverage("revoke_vs_inflight", result);
  EXPECT_FALSE(result.violated) << result.formatTrace();
  EXPECT_TRUE(result.exhausted)
      << "state space truncated at " << result.schedules << " schedules";
  EXPECT_GT(result.schedules, 1u);
}

// --- updatePolicy vs concurrent checks -------------------------------------

// A policy push re-reconciles two apps and publishes both new grants via
// one installAll. A checker probing both apps inside an epoch-stable
// bracket must see the SAME verdict for both: all-old or all-new, never a
// mixture (paper §VI-B, the atomic epoch swap).
TEST(Mck, PolicySwapVsConcurrentChecksSeesOneGrantSet) {
  auto scenario = [](mck::Run& run) {
    auto rig = std::make_shared<MckRig>();
    auto a = rig->market.installApp(
        std::make_shared<MckApp>("swapper", kSwapperV1), 1);
    auto b = rig->market.installApp(
        std::make_shared<MckApp>("monitor", kMonitorManifest), 1);
    mck::require(a.ok() && b.ok(), "setup: installApp failed");
    of::AppId idA = a.value();
    of::AppId idB = b.value();

    run.thread("policy", [rig] {
      ctrl::ApiResult result = rig->market.updatePolicy(kRestrictBothPolicy);
      mck::require(result.ok(), "updatePolicy failed");
    });
    run.thread("checker", [rig, idA, idB] {
      engine::PermissionEngine& engine = rig->shield.engine();
      for (int i = 0; i < 2; ++i) {
        std::uint64_t e1 = engine.epoch();
        bool statsA = engine.check(statsCall(idA)).allowed;
        mck::yield("checker.gap");
        bool statsB = engine.check(statsCall(idB)).allowed;
        if (engine.epoch() != e1) continue;
        mck::require(statsA == statsB,
                     "mixed grant set observed at a stable permission epoch");
      }
    });
    run.finally([rig, idA, idB] {
      engine::PermissionEngine& engine = rig->shield.engine();
      mck::require(!engine.check(statsCall(idA)).allowed &&
                       !engine.check(statsCall(idB)).allowed,
                   "restricting policy did not land on both apps");
    });
  };

  mck::Result result = mck::Explorer().explore(scenario);
  logCoverage("policy_swap_vs_checks", result);
  EXPECT_FALSE(result.violated) << result.formatTrace();
  EXPECT_TRUE(result.exhausted)
      << "state space truncated at " << result.schedules << " schedules";
}

// --- incremental (parallel-capable) reconcile vs concurrent checks ----------

// The DESIGN.md §14 updatePolicy: apps group into reconcile units, unit
// results are memoized across pushes, and fresh units may fan across the
// reconcile deputy pool (under mck the market detects the virtual executor
// and falls back to the serial loop, keeping exploration deterministic —
// the parallel/serial equivalence itself is covered by
// compile_cache_test's differential suite). Two pushes race a checker: the
// first reconciles fresh units, the second is answered entirely from the
// memo — a different code path that must STILL publish through one atomic
// epoch swap, with no interleaving in which a stable-epoch bracket sees a
// mixed grant set, and must never serve a grant diverging from what the
// fresh path produced.
//
// Three pushes of one policy text: the first reconciles fresh units; the
// second reconciles fresh AGAIN — the policy reads both apps' grants via
// APP references and the first push changed them, so the context half of
// the unit key correctly invalidates (serving the first push's memo here
// would be the staleness bug). The grants are a fixed point after the
// second push, so the third is answered entirely from the memo.
TEST(Mck, ParallelReconcileVsCheckStaysAtomicAndServesFromMemo) {
  auto scenario = [](mck::Run& run) {
    auto rig = std::make_shared<MckRig>();
    // The knob stays on: the scenario exercises the virtual-executor
    // serial fallback gate inside reconcilePoolLocked.
    rig->market.setParallelReconcile(true);
    auto a = rig->market.installApp(
        std::make_shared<MckApp>("swapper", kSwapperV1), 1);
    auto b = rig->market.installApp(
        std::make_shared<MckApp>("monitor", kMonitorManifest), 1);
    mck::require(a.ok() && b.ok(), "setup: installApp failed");
    of::AppId idA = a.value();
    of::AppId idB = b.value();

    run.thread("policy", [rig] {
      for (int push = 0; push < 3; ++push) {
        ctrl::ApiResult result = rig->market.updatePolicy(kRestrictBothPolicy);
        mck::require(result.ok(), "updatePolicy failed");
      }
    });
    run.thread("checker", [rig, idA, idB] {
      engine::PermissionEngine& engine = rig->shield.engine();
      for (int i = 0; i < 2; ++i) {
        std::uint64_t e1 = engine.epoch();
        bool statsA = engine.check(statsCall(idA)).allowed;
        mck::yield("checker.gap");
        bool statsB = engine.check(statsCall(idB)).allowed;
        if (engine.epoch() != e1) continue;
        mck::require(statsA == statsB,
                     "mixed grant set observed at a stable permission epoch");
      }
    });
    run.finally([rig, idA, idB] {
      engine::PermissionEngine& engine = rig->shield.engine();
      mck::require(!engine.check(statsCall(idA)).allowed &&
                       !engine.check(statsCall(idB)).allowed,
                   "restricting policy did not land on both apps");
      auto stats = rig->market.reconcileCacheStats();
      mck::require(stats.hits >= 2,
                   "fixed-point push was not answered from the reconcile memo");
      mck::require(stats.misses >= 4,
                   "changed-context pushes did not reconcile fresh units");
    });
  };

  mck::Result result = mck::Explorer().explore(scenario);
  logCoverage("parallel_reconcile_vs_checks", result);
  EXPECT_FALSE(result.violated) << result.formatTrace();
  EXPECT_TRUE(result.exhausted)
      << "state space truncated at " << result.schedules << " schedules";
  EXPECT_GT(result.schedules, 1u);
}

// --- cross-shard epoch publish vs shard-local checks ------------------------

// The sharded substrate (DESIGN.md §16) under the explorer: a 2-shard
// ShardRuntime registers virtual queues instead of loop threads, and a
// publisher swaps BOTH apps' grants in one installAll — table swap, one
// epoch bump, then the publish fence that runs a memo-reset task on every
// shard queue. The checker's bracket deliberately spans BOTH memo domains:
// app A is probed on shard 0 and app B on shard 1, so whatever order the
// swap, the bump, the two fence tasks and the shard-local checks interleave
// in, two different shards' views at one stable epoch must still be a
// coherent grant set — and once installAll has returned (fence complete)
// every shard's next check must resolve the post-publish grants.
TEST(Mck, CrossShardEpochPublishVsShardLocalChecks) {
  struct ShardMckRig {
    engine::PermissionEngine engine;
    shard::ShardRuntime runtime{[] {
      shard::ShardOptions options;
      options.shards = 2;
      return options;
    }()};
    bool published = false;
  };

  auto scenario = [](mck::Run& run) {
    auto rig = std::make_shared<ShardMckRig>();
    rig->runtime.start();  // Virtual executor installed: queues, no threads.
    rig->runtime.attachEngine(rig->engine);
    const of::AppId idA = 1;
    const of::AppId idB = 2;
    perm::PermissionSet granted =
        lang::parsePermissions("PERM read_statistics\nPERM pkt_in_event\n");
    rig->engine.install(idA, granted);
    rig->engine.install(idB, granted);

    run.thread("publisher", [rig, idA, idB] {
      perm::PermissionSet restricted =
          lang::parsePermissions("PERM pkt_in_event\n");
      rig->engine.installAll({{idA, restricted}, {idB, restricted}});
      rig->published = true;  // installAll returned: every shard was fenced.
    });
    run.thread("checker", [rig, idA, idB] {
      // Round 0 warms each shard's memo against the pre-publish grants;
      // round 1 is the probe that can race the swap, bump and fence tasks.
      for (int round = 0; round < 2; ++round) {
        bool publishedBefore = rig->published;
        std::uint64_t e1 = 0;
        std::uint64_t e2 = 0;
        bool statsA = false;
        bool statsB = false;
        rig->runtime.call(0, [rig, idA, &e1, &statsA] {
          e1 = rig->engine.epoch();
          statsA = rig->engine.check(statsCall(idA)).allowed;
        });
        rig->runtime.call(1, [rig, idB, &e2, &statsB] {
          statsB = rig->engine.check(statsCall(idB)).allowed;
          e2 = rig->engine.epoch();
        });
        if (e1 == e2) {
          mck::require(statsA == statsB,
                       "two shards' views mixed grant sets at a stable epoch");
        }
        if (publishedBefore) {
          mck::require(!statsA && !statsB,
                       "a shard served a pre-publish grant after the fence");
        }
      }
    });
    run.finally([rig, idA, idB] {
      for (std::size_t s = 0; s < 2; ++s) {
        rig->runtime.call(s, [rig, idA, idB] {
          mck::require(!rig->engine.check(statsCall(idA)).allowed &&
                           !rig->engine.check(statsCall(idB)).allowed,
                       "post-quiescence shard check missed the new epoch");
        });
      }
      mck::require(rig->runtime.stats().fences >= 1,
                   "installAll did not fence the shard loops");
      // Teardown inside the run, while the virtual executor is still
      // installed, so the queues drain and unregister deterministically.
      rig->runtime.detachEngine(rig->engine);
      rig->runtime.stop();
    });
  };

  mck::Result result = mck::Explorer().explore(scenario);
  logCoverage("cross_shard_epoch_publish", result);
  EXPECT_FALSE(result.violated) << result.formatTrace();
  EXPECT_TRUE(result.exhausted)
      << "state space truncated at " << result.schedules << " schedules";
  EXPECT_GT(result.schedules, 1u);
}

// --- crash/recover at every market fault site ------------------------------

// One driver runs upgrade -> policy push -> revoke with a crash budget of
// one and every market fault site crash-enabled: the explorer injects a
// FaultInjected at EVERY firing of market.reconcile/swap/journal (not just
// the first, as an armed fault would). After quiescence the journal is
// replayed onto a fresh runtime and the digests must match — aborted
// transactions must leave both the live state and the journal consistent.
TEST(Mck, CrashRecoverAtEveryMarketFaultSitePreservesDigest) {
  auto scenario = [](mck::Run& run) {
    auto journal = std::make_shared<market::MemoryJournal>();
    auto rig = std::make_shared<MckRig>(journal);
    auto id = rig->market.installApp(
        std::make_shared<MckApp>("swapper", kSwapperV1), 1);
    mck::require(id.ok(), "setup: installApp failed");
    of::AppId app = id.value();

    run.thread("driver", [rig, app] {
      // Any op may abort on the injected crash; the journal must stay
      // replayable either way, so results are deliberately not asserted.
      (void)rig->market.upgradeApp(
          app, std::make_shared<MckApp>("swapper", kSwapperV2), 2);
      (void)rig->market.updatePolicy(kRestrictSwapperPolicy);
      (void)rig->market.revokeApp(app, "mck revoke");
    });
    run.finally([rig] {
      ctrl::Controller controller;
      iso::ShieldRuntime shield(controller, mckOptions());
      auto copy = std::make_shared<market::MemoryJournal>(
          rig->market.journal()->records());
      auto recovered = market::AppMarket::recover(
          shield, lang::parsePolicy(kOpenPolicy), mckFactory(), copy);
      mck::require(recovered->digest() == rig->market.digest(),
                   "journal replay diverged from the live market digest");
    });
  };

  mck::Options options;
  options.maxCrashes = 1;
  options.crashSites = {"market.reconcile", "market.swap", "market.journal"};
  mck::Result result = mck::Explorer(options).explore(scenario);
  logCoverage("crash_recover_market", result);
  EXPECT_FALSE(result.violated) << result.formatTrace();
  EXPECT_TRUE(result.exhausted)
      << "state space truncated at " << result.schedules << " schedules";
  // The crash-free schedule plus at least one crash schedule per site.
  EXPECT_GT(result.schedules, 3u);
}

// --- sleep-set reduction ---------------------------------------------------

// Two threads stepping over disjoint resources: with footprints declared,
// sleep sets prune the redundant reorderings of independent steps; without
// them the full tree is explored. Both walks must exhaust with the same
// verdict (reduction soundness), and the reduced walk must be strictly
// smaller with a non-zero prune count.
TEST(Mck, SleepSetsPruneIndependentInterleavings) {
  auto scenario = [](mck::Run& run) {
    auto counters = std::make_shared<std::pair<int, int>>(0, 0);
    run.thread("left", [counters] {
      for (int i = 0; i < 2; ++i) {
        ++counters->first;
        mck::yield("left.step");
      }
    });
    run.thread("right", [counters] {
      for (int i = 0; i < 2; ++i) {
        ++counters->second;
        mck::yield("right.step");
      }
    });
    run.finally([counters] {
      mck::require(counters->first == 2 && counters->second == 2,
                   "steps were lost");
    });
  };

  mck::Options reducedOptions;
  reducedOptions.footprint["left.step"] = {"left-cell", true};
  reducedOptions.footprint["right.step"] = {"right-cell", true};
  mck::Result reduced = mck::Explorer(reducedOptions).explore(scenario);

  mck::Options fullOptions = reducedOptions;
  fullOptions.sleepSets = false;
  mck::Result full = mck::Explorer(fullOptions).explore(scenario);

  EXPECT_TRUE(reduced.exhausted);
  EXPECT_TRUE(full.exhausted);
  EXPECT_FALSE(reduced.violated) << reduced.formatTrace();
  EXPECT_FALSE(full.violated) << full.formatTrace();
  EXPECT_GT(reduced.prunedSchedules, 0u);
  EXPECT_LT(reduced.schedules, full.schedules);
  std::cout << "mck coverage: dpor_commute: reduced=" << reduced.schedules
            << "+" << reduced.prunedSchedules << " pruned, full="
            << full.schedules << "\n";
}

// --- mutation check: torn publisher ----------------------------------------

// The seeded bug of the PR's mutation check, reproduced at engine level: a
// publisher that installs each app's new grant separately (one epoch per
// app) instead of installAll's single swap. mck::yield marks the torn
// window; on real threads it is a no-op and the window is a few hundred
// nanoseconds wide.
mck::Scenario tornPublisherScenario(bool buggy) {
  return [buggy](mck::Run& run) {
    auto engine = std::make_shared<engine::PermissionEngine>();
    const std::vector<of::AppId> ids = {1, 2};
    perm::PermissionSet granted =
        lang::parsePermissions("PERM read_statistics\n");
    perm::PermissionSet revoked = lang::parsePermissions("PERM pkt_in_event\n");
    for (of::AppId id : ids) engine->install(id, granted);

    run.thread("publisher", [engine, ids, revoked, buggy] {
      if (buggy) {
        for (of::AppId id : ids) {
          engine->install(id, revoked);  // One epoch per app: torn.
          mck::yield("torn.publish");
        }
      } else {
        std::vector<std::pair<of::AppId, perm::PermissionSet>> grants;
        for (of::AppId id : ids) grants.emplace_back(id, revoked);
        engine->installAll(grants);  // One epoch for the batch.
        mck::yield("atomic.publish");
      }
    });
    run.thread("checker", [engine, ids] {
      std::uint64_t e1 = engine->epoch();
      bool first = engine->check(statsCall(ids.front())).allowed;
      mck::yield("checker.gap");
      bool last = engine->check(statsCall(ids.back())).allowed;
      if (engine->epoch() == e1) {
        mck::require(first == last,
                     "mixed grant set observed at a stable permission epoch");
      }
    });
  };
}

TEST(MckMutation, TornPublisherIsCaughtByExplorer) {
  mck::Result result = mck::Explorer().explore(tornPublisherScenario(true));
  ASSERT_TRUE(result.violated)
      << "explorer failed to find the torn-publish interleaving after "
      << result.schedules << " schedules";
  EXPECT_NE(result.message.find("mixed grant set"), std::string::npos)
      << result.message;
  // The counterexample checked into tests/data/ was produced by this very
  // serialization; printing it keeps regeneration a copy-paste away.
  std::cout << "torn-publisher counterexample:\n"
            << mck::serializeSchedule(result.trace);
}

TEST(MckMutation, AtomicPublisherIsExhaustivelyVerified) {
  mck::Result result = mck::Explorer().explore(tornPublisherScenario(false));
  EXPECT_FALSE(result.violated) << result.formatTrace();
  EXPECT_TRUE(result.exhausted);
}

// The shrunk counterexample is pinned as data: replaying it against the
// buggy publisher must still reach the violation (the schedule, not luck,
// finds the bug), and the same schedule against the correct publisher is
// clean. parseSchedule round-trips the serialized form.
TEST(MckMutation, PinnedCounterexampleReplays) {
  std::ifstream in(std::string(MCK_DATA_DIR) +
                   "/mck_torn_publisher_schedule.txt");
  ASSERT_TRUE(in.good()) << "missing tests/data/mck_torn_publisher_schedule.txt";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::vector<mck::ScheduleStep> schedule = mck::parseSchedule(buffer.str());
  ASSERT_FALSE(schedule.empty());

  mck::Explorer explorer;
  mck::Result buggy = explorer.replay(tornPublisherScenario(true), schedule);
  EXPECT_TRUE(buggy.violated)
      << "pinned schedule no longer reproduces the torn-grant violation:\n"
      << buggy.formatTrace();

  mck::Result correct = explorer.replay(tornPublisherScenario(false), schedule);
  EXPECT_FALSE(correct.violated) << correct.formatTrace();
}

// The comparison arm of the mutation check: the market stress discipline
// (epoch-gated scan + same-epoch confirming rescan, as in market_test's
// PolicySwapIsAtomicUnderConcurrentCheckers) run 100 times against the same
// torn publisher on real threads. A catch needs TWO full 64-app scans
// inside one inter-install gap with zero epoch movement — the gap is one
// compile-and-swap wide while each scan is 64 checks plus epoch reads, so
// detection requires the OS to preempt the publisher mid-loop for the whole
// double-scan. The explorer catches the same bug on its first session,
// every time (the test above); this one documents the stress blind spot.
TEST(MckMutation, RealThreadStressDisciplineMissesTornPublisher) {
  constexpr int kApps = 64;
  constexpr int kRuns = 100;
  // This mirrors the PR 5-era torn publisher, whose inter-install gap was
  // one compile-and-swap wide. The PR 8 program cache collapses installs
  // 2..64 to a lookup-and-swap, which changes the gap/scan ratio enough to
  // hand the stress loop ~50% catches under TSan — a different (faster)
  // publisher than the one this blind-spot argument is about. Pin the
  // original cost profile for the duration.
  auto& programCache = engine::CompiledProgramCache::global();
  const bool cacheWasEnabled = programCache.enabled();
  programCache.setEnabled(false);
  perm::PermissionSet granted =
      lang::parsePermissions("PERM read_statistics\n");
  perm::PermissionSet revoked = lang::parsePermissions("PERM pkt_in_event\n");

  std::atomic<int> caught{0};
  for (int runIndex = 0; runIndex < kRuns; ++runIndex) {
    engine::PermissionEngine engine;
    std::vector<of::AppId> ids;
    for (int i = 0; i < kApps; ++i) {
      ids.push_back(static_cast<of::AppId>(i + 1));
      engine.install(ids.back(), granted);
    }

    auto scan = [&](bool* mixedOut) -> std::uint64_t {
      std::uint64_t epochBefore = engine.epoch();
      bool first = true;
      bool expected = false;
      bool mixed = false;
      for (of::AppId id : ids) {
        bool allowed = engine.check(statsCall(id)).allowed;
        if (first) {
          expected = allowed;
          first = false;
        } else if (allowed != expected) {
          mixed = true;
        }
      }
      if (engine.epoch() != epochBefore) return 0;
      *mixedOut = mixed;
      return epochBefore;
    };

    std::atomic<bool> stop{false};
    std::thread checker([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        bool mixed = false;
        std::uint64_t epoch = scan(&mixed);
        if (epoch == 0 || !mixed) continue;
        bool mixedAgain = false;
        if (scan(&mixedAgain) == epoch && mixedAgain) {
          caught.fetch_add(1);
          return;
        }
      }
    });
    for (of::AppId id : ids) engine.install(id, revoked);  // Torn publish.
    stop.store(true);
    checker.join();
  }
  programCache.setEnabled(cacheWasEnabled);

  // Not a hard zero: a pathological preemption (the OS descheduling the
  // publisher mid-loop for an entire double-scan, more likely on a loaded
  // single-vCPU box) can hand the stress loop a catch. The contrast under
  // test is reliability — the explorer is 1/1 deterministic, the stress
  // discipline ~0/100 on an idle box — so the bound only asserts "misses
  // the overwhelming majority", with wide headroom against CI load spikes.
  // Under TSan the instrumentation itself rewrites the scheduling physics
  // this test documents (~10× slower instrumented scans vs. timesliced
  // installs hand a 1-vCPU box ~30% catches even on the pre-cache code),
  // so there the assertion degrades to "never reliable": the explorer
  // remains 1/1 while the stress loop must still miss at least once.
#if defined(__SANITIZE_THREAD__)
  constexpr bool kTsanBuild = true;  // GCC spells it this way.
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  constexpr bool kTsanBuild = true;  // Clang spells it this way.
#else
  constexpr bool kTsanBuild = false;
#endif
#else
  constexpr bool kTsanBuild = false;
#endif
  const int catchBound = kTsanBuild ? kRuns - 1 : kRuns / 4;
  EXPECT_LE(caught.load(), catchBound)
      << "stress discipline caught the torn publisher " << caught.load()
      << "/" << kRuns << " times — the mck blind-spot argument needs review";
  RecordProperty("stress_catches", caught.load());
}

}  // namespace
}  // namespace sdnshield
