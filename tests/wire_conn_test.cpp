// Wire-framed southbound: the L2 scenario runs end to end with every
// controller<->switch message taking a binary OF 1.0 round trip.
#include "switchsim/wire_conn.h"

#include <gtest/gtest.h>

#include "apps/l2_learning.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace sdnshield::sim {
namespace {

struct WireBed {
  WireBed() : network(controller) {
    // Build the switch by hand: its controller attachment goes through the
    // wire adapter instead of the plain SwitchConn.
    sw = std::make_shared<SimSwitch>(1);
    conn = std::make_shared<WireSwitchConn>(sw, &controller);
    controller.attachSwitch(conn, ctrl::ConnectionInfo{1, "wire", "in-process", 0});
    // Hosts still hang off the raw switch (the data plane has no framing).
    h1 = std::make_shared<SimHost>(
        net::Host{of::MacAddress::fromUint64(1), of::Ipv4Address(10, 0, 0, 1),
                  1, 1},
        sw);
    sw->connectPort(1, [this](const of::Packet& p) { h1->onDelivered(p); });
    controller.learnHost(h1->descriptor());
    h2 = std::make_shared<SimHost>(
        net::Host{of::MacAddress::fromUint64(2), of::Ipv4Address(10, 0, 0, 2),
                  1, 2},
        sw);
    sw->connectPort(2, [this](const of::Packet& p) { h2->onDelivered(p); });
    controller.learnHost(h2->descriptor());
  }

  ctrl::Controller controller;
  SimNetwork network;  // Unused builder; keeps the harness shape uniform.
  std::shared_ptr<SimSwitch> sw;
  std::shared_ptr<WireSwitchConn> conn;
  std::shared_ptr<SimHost> h1, h2;
};

of::Packet tcp(const SimHost& src, const SimHost& dst) {
  return of::Packet::makeTcp(src.mac(), dst.mac(), src.ip(), dst.ip(), 40000,
                             80, of::tcpflags::kSyn);
}

TEST(WireConn, L2ScenarioRunsThroughTheCodec) {
  WireBed bed;
  iso::BaselineRuntime runtime(bed.controller);
  auto app = std::make_shared<apps::L2LearningSwitch>();
  runtime.loadApp(app);

  bed.h1->send(tcp(*bed.h1, *bed.h2));  // Flood (unknown destination).
  EXPECT_EQ(bed.h2->receivedCount(), 1u);
  bed.h2->send(tcp(*bed.h2, *bed.h1));  // Learned: rule + packet-out.
  EXPECT_EQ(bed.h1->receivedCount(), 1u);
  EXPECT_EQ(app->rulesInstalled(), 1u);
  EXPECT_EQ(bed.sw->flowCount(), 1u);

  // Every exchanged message was actually framed.
  EXPECT_GT(bed.conn->bytesFromSwitch(), 0u);  // Packet-ins.
  EXPECT_GT(bed.conn->bytesToSwitch(), 0u);    // Flow-mod + packet-outs.
}

TEST(WireConn, InstalledRuleSurvivesTheFlowModRoundTrip) {
  WireBed bed;
  of::FlowMod mod;
  mod.match.ethType = 0x0800;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 2),
                                   of::Ipv4Address::prefixMask(24)};
  mod.priority = 33;
  mod.idleTimeout = 60;
  mod.actions.push_back(of::OutputAction{2});
  ASSERT_TRUE(bed.controller.kernelInsertFlow(7, 1, mod).ok());
  auto flows = bed.sw->dumpFlows().value();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].match, mod.match);
  EXPECT_EQ(flows[0].priority, 33);
  EXPECT_EQ(flows[0].idleTimeout, 60u);
  EXPECT_EQ(flows[0].cookie, 7u);  // Cookie (issuer) survives framing.
}

TEST(WireConn, StatsTakeTheWireRoundTripBothWays) {
  WireBed bed;
  of::FlowMod mod;
  mod.match.tpDst = 80;
  mod.priority = 5;
  mod.actions.push_back(of::OutputAction{2});
  bed.controller.kernelInsertFlow(7, 1, mod);
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h2->mac(), bed.h1->ip(),
                                   bed.h2->ip(), 1, 80, of::tcpflags::kSyn));

  of::StatsRequest request;
  request.level = of::StatsLevel::kFlow;
  request.dpid = 1;
  auto response = bed.controller.kernelReadStatistics(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().flows.size(), 1u);
  EXPECT_EQ(response.value().flows[0].packetCount, 1u);
  EXPECT_EQ(response.value().flows[0].cookie, 7u);

  request.level = of::StatsLevel::kSwitch;
  response = bed.controller.kernelReadStatistics(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().switchStats.activeFlows, 1u);
  EXPECT_EQ(response.value().switchStats.dpid, 1u);
}

TEST(WireConn, NonPrefixMaskRuleIsRejectedAtTheWire) {
  WireBed bed;
  of::FlowMod mod;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 0, 0, 0),
                                   of::Ipv4Address::parse("255.0.255.0")};
  mod.actions.push_back(of::OutputAction{2});
  // The codec cannot express the mask: the rejection surfaces as a typed
  // kFramingError result rather than silently widening the rule (and never
  // as an exception — the same contract the TCP transport honours).
  ctrl::ApiResult result = bed.controller.kernelInsertFlow(7, 1, mod);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ctrl::ApiErrc::kFramingError);
  EXPECT_TRUE(bed.sw->dumpFlows().value().empty());
}

TEST(WireConn, ShieldedDeploymentWorksOverTheWire) {
  WireBed bed;
  iso::ShieldRuntime shield(bed.controller);
  auto app = std::make_shared<apps::L2LearningSwitch>();
  shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));
  bed.h1->send(tcp(*bed.h1, *bed.h2));
  ASSERT_TRUE(bed.h2->waitForPackets(1, std::chrono::milliseconds(2000)));
  bed.h2->send(tcp(*bed.h2, *bed.h1));
  ASSERT_TRUE(bed.h1->waitForPackets(1, std::chrono::milliseconds(2000)));
  EXPECT_EQ(app->rulesInstalled(), 1u);
}

}  // namespace
}  // namespace sdnshield::sim
