// Chaos-campaign subsystem (DESIGN.md §13): generated fabrics have the
// textbook shapes (including the 1000+-switch scale the campaign's mega
// phase runs at), flap schedules and market plans are pure functions of the
// seed, and a smoke-sized campaign holds every invariant with a
// byte-identical scorecard across runs.
#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <set>

#include "campaign/apps.h"
#include "campaign/topo_gen.h"

namespace sdnshield::campaign {
namespace {

// --- fabric generators ------------------------------------------------------------

TEST(TopoGen, FatTreeHasTextbookShape) {
  Fabric fabric = buildFatTree(4);
  // k=4: (k/2)^2 = 4 cores, 4 pods of 2 agg + 2 edge.
  EXPECT_EQ(fabric.core.size(), 4u);
  EXPECT_EQ(fabric.aggregation.size(), 8u);
  EXPECT_EQ(fabric.edge.size(), 8u);
  EXPECT_EQ(fabric.pods.size(), 4u);
  EXPECT_EQ(fabric.topology.switchCount(), 20u);
  // Every edge switch reaches every other edge switch.
  for (net::DatapathId a : fabric.edge) {
    for (net::DatapathId b : fabric.edge) {
      EXPECT_TRUE(fabric.topology.shortestPath(a, b).has_value())
          << a << " -> " << b;
    }
  }
}

TEST(TopoGen, FatTreeScalesPastAThousandSwitches) {
  Fabric fabric = buildFatTree(32);
  // k=32: 256 cores + 32 pods * (16 agg + 16 edge) = 1280 switches.
  EXPECT_EQ(fabric.topology.switchCount(), 1280u);
  EXPECT_EQ(fabric.edge.size(), 512u);
  EXPECT_TRUE(fabric.topology
                  .shortestPath(fabric.edge.front(), fabric.edge.back())
                  .has_value());
}

TEST(TopoGen, LeafSpineScalesPastAThousandSwitches) {
  Fabric fabric = buildLeafSpine(24, 1000);
  EXPECT_EQ(fabric.topology.switchCount(), 1024u);
  // Full bipartite: every leaf sees every other leaf in two hops.
  auto path = fabric.topology.shortestPath(fabric.edge.front(),
                                           fabric.edge.back());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
}

TEST(TopoGen, AttachHostsPlacesOnePerEdgePort) {
  Fabric fabric = buildLeafSpine(2, 4);
  attachHosts(fabric, 3);
  EXPECT_EQ(fabric.topology.hosts().size(), 12u);
  std::set<std::pair<net::DatapathId, net::PortNo>> seen;
  for (const net::Host& host : fabric.topology.hosts()) {
    EXPECT_TRUE(seen.insert({host.dpid, host.port}).second);
    EXPECT_GE(host.port, 1u);
    EXPECT_LE(host.port, 3u);
  }
}

// --- flap schedules ---------------------------------------------------------------

TEST(FlapSchedule, IsSeedDeterministic) {
  Fabric a = buildFatTree(8);
  Fabric b = buildFatTree(8);
  auto sa = buildFlapSchedule(a, 99, 10, 8, 2);
  auto sb = buildFlapSchedule(b, 99, 10, 8, 2);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].toString(), sb[i].toString());
  }
  auto sc = buildFlapSchedule(a, 100, 10, 8, 2);
  std::string joinedA, joinedC;
  for (const FlapEvent& e : sa) joinedA += e.toString() + "\n";
  for (const FlapEvent& e : sc) joinedC += e.toString() + "\n";
  EXPECT_NE(joinedA, joinedC);
}

TEST(FlapSchedule, EveryDownHasALaterUpAndStepsAreSorted) {
  Fabric fabric = buildFatTree(8);
  auto schedule = buildFlapSchedule(fabric, 7, 12, 10, 2);
  EXPECT_FALSE(schedule.empty());
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].step, schedule[i].step);
  }
  int downs = 0;
  int ups = 0;
  for (const FlapEvent& event : schedule) {
    if (event.kind == FlapEvent::Kind::kLinkDown ||
        event.kind == FlapEvent::Kind::kSwitchDown) {
      ++downs;
    } else {
      ++ups;
    }
  }
  EXPECT_EQ(downs, ups);
}

TEST(FlapSchedule, ApplyingAllStepsRestoresPristineWiring) {
  Fabric fabric = buildFatTree(8);
  std::size_t pristineSwitches = fabric.topology.switchCount();
  std::size_t pristineLinks = fabric.topology.links().size();
  auto schedule = buildFlapSchedule(fabric, 3, 10, 8, 2);
  for (std::size_t step = 0; step < 10; ++step) {
    applyFlapStep(fabric, schedule, step);
  }
  EXPECT_EQ(fabric.topology.switchCount(), pristineSwitches);
  EXPECT_EQ(fabric.topology.links().size(), pristineLinks);
}

// --- campaign plan ----------------------------------------------------------------

TEST(Plan, IsSeedDeterministicAndSorted) {
  CampaignConfig config;
  config.seed = 1234;
  CampaignPlan a = buildPlan(config);
  CampaignPlan b = buildPlan(config);
  EXPECT_EQ(a.toString(), b.toString());
  config.seed = 1235;
  EXPECT_NE(buildPlan(config).toString(), a.toString());
  for (std::size_t i = 1; i < a.ops.size(); ++i) {
    EXPECT_LE(a.ops[i - 1].step, a.ops[i].step);
  }
  EXPECT_EQ(a.mutantSeeds.size(), config.mutants);
}

TEST(Plan, RejectsDegenerateConfigs) {
  CampaignConfig config;
  config.tenants = 2;
  EXPECT_THROW(buildPlan(config), std::invalid_argument);
  config.tenants = 6;
  config.steps = 4;
  EXPECT_THROW(buildPlan(config), std::invalid_argument);
}

// --- end-to-end smoke campaign ----------------------------------------------------

CampaignConfig smokeConfig() {
  CampaignConfig config;
  config.seed = 11;
  config.tenants = 4;
  config.extraTenants = 1;
  config.mutants = 2;
  config.steps = 12;
  config.stepMs = 8;
  config.measureMs = 120;
  config.megaFatTreeK = 4;
  config.megaSpines = 2;
  config.megaLeaves = 6;
  config.megaSteps = 4;
  config.megaFlaps = 4;
  config.megaDisconnects = 1;
  config.megaQueriesPerStep = 8;
  return config;
}

TEST(CampaignRun, SmokeHoldsEveryInvariantAndContainsAllAttackers) {
  Campaign campaign(smokeConfig());
  Scorecard card = campaign.run();
  for (const InvariantResult& inv : card.invariants) {
    EXPECT_TRUE(inv.pass) << inv.name << ": " << inv.violations
                          << " violation(s)";
  }
  EXPECT_TRUE(card.allInvariantsPass());
  ASSERT_EQ(card.attackers.size(), 6u);  // 4 Table I attackers + 2 mutants.
  for (const AttackerOutcome& outcome : card.attackers) {
    EXPECT_TRUE(outcome.contained) << outcome.name;
  }
}

TEST(CampaignRun, ScorecardIsByteIdenticalAcrossRuns) {
  Scorecard first = Campaign(smokeConfig()).run();
  Scorecard second = Campaign(smokeConfig()).run();
  EXPECT_EQ(first.toJson(), second.toJson());
  EXPECT_FALSE(first.toJson().empty());
  // The measured section stays out of the deterministic scorecard.
  EXPECT_TRUE(first.measuredJson.empty());
}

TEST(CampaignRun, ScorecardIsIdenticalAcrossShardCounts) {
  // The controller shard count is an execution detail, not an outcome: one
  // seed must yield the same scorecard whether the live phase dispatches on
  // one loop or four. A routing bug that reordered per-switch traffic or
  // leaked shard identity into an oracle would diverge the JSON here.
  CampaignConfig sharded = smokeConfig();
  sharded.shards = 4;
  Scorecard one = Campaign(smokeConfig()).run();
  Scorecard four = Campaign(sharded).run();
  EXPECT_EQ(one.toJson(), four.toJson());
  EXPECT_TRUE(four.allInvariantsPass());
}

TEST(CampaignRun, NoAttackerVariantStillPassesCleanly) {
  CampaignConfig config = smokeConfig();
  config.attackers = false;
  config.mutants = 0;
  Scorecard card = Campaign(config).run();
  EXPECT_TRUE(card.allInvariantsPass());
  EXPECT_TRUE(card.attackers.empty());
}

}  // namespace
}  // namespace sdnshield::campaign
