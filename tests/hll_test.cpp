// High-level policy language (§VI-C): algebra semantics, compilation to
// classifiers (checked against the reference interpreter, including on
// random policies), ownership tracking through composition, and
// permission-checked installation with partial denial.
#include "hll/install.h"
#include "hll/policy.h"

#include <gtest/gtest.h>

#include <random>

#include "core/lang/perm_parser.h"
#include "switchsim/sim_network.h"

namespace sdnshield::hll {
namespace {

of::FlowMatch tcpDst(std::uint16_t port) {
  of::FlowMatch m;
  m.ethType = 0x0800;
  m.ipProto = 6;
  m.tpDst = port;
  return m;
}

of::FlowMatch ipDstMatch(const char* ip) {
  of::FlowMatch m;
  m.ethType = 0x0800;
  m.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ip)};
  return m;
}

of::SetFieldAction setTpDst(std::uint16_t port) {
  of::SetFieldAction set;
  set.field = of::MatchField::kTpDst;
  set.intValue = port;
  return set;
}

LocatedPacket tcpPacket(const char* srcIp, const char* dstIp,
                        std::uint16_t dstPort, of::PortNo inPort = 1) {
  return LocatedPacket{
      of::Packet::makeTcp(of::MacAddress::fromUint64(1),
                          of::MacAddress::fromUint64(2),
                          of::Ipv4Address::parse(srcIp),
                          of::Ipv4Address::parse(dstIp), 40000, dstPort,
                          of::tcpflags::kSyn),
      inPort};
}

// --- interpreter semantics -------------------------------------------------------

TEST(HllSemantics, MatchGatesAndFwdEmits) {
  PolicyPtr p = seq(match(tcpDst(80)), fwd(2));
  auto hit = evaluate(p, tcpPacket("10.0.0.1", "10.0.0.2", 80));
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].port, 2u);
  EXPECT_TRUE(evaluate(p, tcpPacket("10.0.0.1", "10.0.0.2", 443)).empty());
}

TEST(HllSemantics, DropEmitsNothingIdentityContinues) {
  EXPECT_TRUE(evaluate(drop(), tcpPacket("10.0.0.1", "10.0.0.2", 80)).empty());
  // identity alone never *emits* — only forwarding does.
  EXPECT_TRUE(
      evaluate(identity(), tcpPacket("10.0.0.1", "10.0.0.2", 80)).empty());
}

TEST(HllSemantics, ModifyRewritesBeforeFwd) {
  PolicyPtr p = seq(match(tcpDst(23)), seq(modify(setTpDst(80)), fwd(2)));
  auto out = evaluate(p, tcpPacket("10.0.0.1", "10.0.0.2", 23));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].packet.tcp->dstPort, 80);
}

TEST(HllSemantics, ParEmitsBothBranches) {
  PolicyPtr p = par(fwd(2), fwd(3));  // Port mirroring.
  auto out = evaluate(p, tcpPacket("10.0.0.1", "10.0.0.2", 80));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].port, 2u);
  EXPECT_EQ(out[1].port, 3u);
}

TEST(HllSemantics, MatchAfterModifySeesRewrittenPacket) {
  // modify(tp=80) >> match(tp=80) >> fwd: passes even for tp=23 input.
  PolicyPtr p = seq(modify(setTpDst(80)), seq(match(tcpDst(80)), fwd(2)));
  EXPECT_EQ(evaluate(p, tcpPacket("10.0.0.1", "10.0.0.2", 23)).size(), 1u);
}

// --- compilation -------------------------------------------------------------------

TEST(HllCompile, SimpleForwardingClassifier) {
  auto rules = compile(seq(match(tcpDst(80)), fwd(2)));
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].match.tpDst, 80);
  ASSERT_EQ(rules[0].actions.size(), 1u);
  EXPECT_EQ(std::get<of::OutputAction>(rules[0].actions[0]).port, 2u);
  EXPECT_TRUE(rules[1].actions.empty());  // Catch-all drop.
}

TEST(HllCompile, FirewallPlusRoutingComposition) {
  // (drop telnet) ELSE route = match(23)>>drop + match(!23)... expressed as
  // telnet-drop in parallel with destination routing:
  PolicyPtr firewall = seq(match(tcpDst(23)), drop());
  PolicyPtr routing = seq(match(ipDstMatch("10.0.0.2")), fwd(2));
  auto rules = compile(par(firewall, routing));
  // Parallel composition means *both* apply: the firewall branch emits
  // nothing but cannot veto the routing branch's emission.
  auto telnet = runClassifier(rules, tcpPacket("10.0.0.1", "10.0.0.2", 23));
  EXPECT_EQ(telnet.size(), 1u);
  // Sequencing is the way to veto: only port-80 traffic reaches routing.
  auto vetoed = compile(seq(seq(match(tcpDst(80)), identity()), routing));
  EXPECT_EQ(
      runClassifier(vetoed, tcpPacket("10.0.0.1", "10.0.0.2", 23)).size(), 0u);
  EXPECT_EQ(
      runClassifier(vetoed, tcpPacket("10.0.0.1", "10.0.0.2", 80)).size(), 1u);
}

TEST(HllCompile, SeqPullsMatchesThroughRewrites) {
  // modify(tp=80) >> (match(tp=80) >> fwd(2)): compiles to an
  // unconditional rewrite+forward (the match is satisfied by construction).
  auto rules = compile(
      seq(modify(setTpDst(80)), seq(match(tcpDst(80)), fwd(2))));
  auto out = runClassifier(rules, tcpPacket("10.0.0.1", "10.0.0.2", 23));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].packet.tcp->dstPort, 80);
  EXPECT_EQ(out[0].port, 2u);
}

TEST(HllCompile, SeqDropsIncompatibleBranches) {
  // modify(tp=80) >> (match(tp=23) >> fwd(2)): can never fire.
  auto rules = compile(
      seq(modify(setTpDst(80)), seq(match(tcpDst(23)), fwd(2))));
  EXPECT_TRUE(
      runClassifier(rules, tcpPacket("10.0.0.1", "10.0.0.2", 23)).empty());
  EXPECT_TRUE(
      runClassifier(rules, tcpPacket("10.0.0.1", "10.0.0.2", 80)).empty());
}

TEST(HllCompile, EmissionOnLeftOfSeqThrows) {
  EXPECT_THROW(compile(seq(fwd(2), fwd(3))), std::invalid_argument);
}

TEST(HllCompile, ToFlowModsAssignsDescendingPriorities) {
  auto rules = compile(par(seq(match(tcpDst(80)), fwd(2)),
                           seq(match(tcpDst(443)), fwd(3))));
  auto mods = toFlowMods(rules, 100);
  ASSERT_EQ(mods.size(), rules.size());
  for (std::size_t i = 1; i < mods.size(); ++i) {
    EXPECT_EQ(mods[i].priority, mods[i - 1].priority - 1);
  }
  // Drop rules carry an explicit DropAction after lowering.
  EXPECT_TRUE(std::holds_alternative<of::DropAction>(mods.back().actions[0]));
}

TEST(HllCompile, ToFlowModsRejectsPriorityUnderflow) {
  auto rules = compile(seq(match(tcpDst(80)), fwd(2)));
  EXPECT_THROW(toFlowMods(rules, 1), std::invalid_argument);
}

// --- ownership tracking ---------------------------------------------------------------

TEST(HllOwnership, OwnersAccumulateThroughComposition) {
  PolicyPtr firewallBranch = owned(7, seq(match(tcpDst(80)), identity()));
  PolicyPtr routingBranch = owned(8, fwd(2));
  auto rules = compile(seq(firewallBranch, routingBranch));
  // The emitting rule was built from both apps' policies.
  bool sawJoint = false;
  for (const CompiledRule& rule : rules) {
    if (!rule.actions.empty()) {
      EXPECT_EQ(rule.owners, (std::set<of::AppId>{7, 8})) << rule.toString();
      sawJoint = true;
    }
  }
  EXPECT_TRUE(sawJoint);
}

TEST(HllOwnership, UnannotatedPolicyHasNoOwners) {
  auto rules = compile(seq(match(tcpDst(80)), fwd(2)));
  for (const CompiledRule& rule : rules) EXPECT_TRUE(rule.owners.empty());
}

// --- compiler vs interpreter property ----------------------------------------------------

class HllPropertyTest : public ::testing::TestWithParam<unsigned> {};

PolicyPtr randomPolicy(std::mt19937& rng, int depth, bool emitting) {
  if (depth == 0) {
    if (emitting) return fwd(static_cast<of::PortNo>(rng() % 4 + 1));
    switch (rng() % 3) {
      case 0:
        return match(tcpDst(static_cast<std::uint16_t>(
            (rng() % 2) ? 80 : 23)));
      case 1:
        return identity();
      default:
        return modify(setTpDst(static_cast<std::uint16_t>(
            (rng() % 2) ? 80 : 443)));
    }
  }
  // par is only generated in emitting position (parallel *continuations*
  // are ambiguous and rejected by the compiler), with a rewrite-free first
  // branch so the OF action-list realisation is exact.
  std::size_t pick = rng() % (emitting ? 3u : 2u);
  switch (pick) {
    case 0:
      // seq: lhs non-emitting, rhs carries the emission requirement.
      return seq(randomPolicy(rng, depth - 1, false),
                 randomPolicy(rng, depth - 1, emitting));
    case 1:
      return owned(static_cast<of::AppId>(rng() % 3 + 1),
                   randomPolicy(rng, depth - 1, emitting));
    default:
      return par(fwd(static_cast<of::PortNo>(rng() % 4 + 1)),
                 randomPolicy(rng, depth - 1, true));
  }
}

TEST_P(HllPropertyTest, CompiledClassifierMatchesInterpreter) {
  std::mt19937 rng(GetParam());
  PolicyPtr policy = randomPolicy(rng, 3, true);
  std::vector<CompiledRule> rules;
  try {
    rules = compile(policy);
  } catch (const std::invalid_argument&) {
    GTEST_SKIP() << "random policy hit an unsupported shape";
  }
  for (int i = 0; i < 40; ++i) {
    LocatedPacket input = tcpPacket(
        "10.0.0.1", "10.0.0.2",
        static_cast<std::uint16_t>((rng() % 3 == 0) ? 23
                                   : (rng() % 2)    ? 80
                                                    : 443),
        static_cast<of::PortNo>(rng() % 4 + 1));
    auto expected = evaluate(policy, input);
    auto actual = runClassifier(rules, input);
    // Compare as multisets of (serialized packet, port).
    auto key = [](const LocatedPacket& lp) {
      of::Bytes wire = lp.packet.serialize();
      return std::make_pair(std::string(wire.begin(), wire.end()), lp.port);
    };
    std::vector<std::pair<std::string, of::PortNo>> a, b;
    for (const auto& lp : expected) a.push_back(key(lp));
    for (const auto& lp : actual) b.push_back(key(lp));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "input tp_dst="
                    << (input.packet.tcp ? input.packet.tcp->dstPort : 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HllPropertyTest, ::testing::Range(0u, 30u));

// --- permission-checked installation -----------------------------------------------------

class HllInstallTest : public ::testing::Test {
 protected:
  HllInstallTest() : network_(controller_) {
    network_.buildLinear(1);
    engine_.install(7, lang::parsePermissions(
                           "PERM insert_flow LIMITING ACTION FORWARD\n"));
    engine_.install(8, lang::parsePermissions("PERM insert_flow\n"));
    engine_.install(9, lang::parsePermissions("PERM read_statistics\n"));
  }

  ctrl::Controller controller_;
  sim::SimNetwork network_;
  engine::PermissionEngine engine_;
};

TEST_F(HllInstallTest, FullyPermittedPolicyInstalls) {
  PolicyPtr policy = owned(8, par(seq(match(tcpDst(80)), fwd(1)),
                                  seq(match(tcpDst(443)), fwd(1))));
  InstallReport report =
      installPolicy(engine_, controller_, 1, policy, 200);
  EXPECT_TRUE(report.fullyInstalled());
  EXPECT_GT(report.installed, 0u);
  EXPECT_EQ(network_.switchAt(1)->flowCount(), report.installed);
}

TEST_F(HllInstallTest, PartialDenialSkipsOnlyTheBlockedRules) {
  // App 7 may only forward; the rewriting rule it contributes to is denied,
  // the plain forwarding rule goes in (§VI-C partial denial).
  PolicyPtr rewriting =
      owned(7, seq(match(tcpDst(23)), seq(modify(setTpDst(80)), fwd(1))));
  PolicyPtr forwarding = owned(7, seq(match(tcpDst(80)), fwd(1)));
  InstallReport report = installPolicy(
      engine_, controller_, 1, par(rewriting, forwarding), 200);
  EXPECT_FALSE(report.fullyInstalled());
  EXPECT_GT(report.installed, 0u);
  ASSERT_FALSE(report.denied.empty());
  EXPECT_EQ(report.denied[0].owner, 7u);
  // The installed rules contain no header rewrites.
  for (const of::FlowEntry& entry : network_.switchAt(1)->dumpFlows().value()) {
    EXPECT_FALSE(of::modifiesHeaders(entry.actions)) << entry.toString();
  }
}

TEST_F(HllInstallTest, JointRuleNeedsEveryOwner) {
  // A rule built from apps 8 (full insert) and 9 (no insert at all): the
  // missing owner blocks it.
  PolicyPtr policy =
      seq(owned(9, match(tcpDst(80))), owned(8, fwd(1)));
  InstallReport report =
      installPolicy(engine_, controller_, 1, policy, 200);
  bool jointDenied = false;
  for (const auto& denied : report.denied) {
    if (denied.owner == 9) jointDenied = true;
  }
  EXPECT_TRUE(jointDenied);
}

TEST_F(HllInstallTest, OwnerlessPolicyInstallsAsKernel) {
  InstallReport report = installPolicy(
      engine_, controller_, 1, seq(match(tcpDst(80)), fwd(1)), 200);
  EXPECT_TRUE(report.fullyInstalled());
  auto flows = network_.switchAt(1)->dumpFlows().value();
  ASSERT_FALSE(flows.empty());
  EXPECT_EQ(flows[0].cookie, of::kKernelAppId);
}

TEST_F(HllInstallTest, InstalledPolicyActuallyForwardsTraffic) {
  auto host = network_.addHost(1, 2, of::MacAddress::fromUint64(0xBB),
                               of::Ipv4Address(10, 0, 0, 99));
  PolicyPtr policy = owned(8, seq(match(tcpDst(80)), fwd(2)));
  ASSERT_TRUE(installPolicy(engine_, controller_, 1, policy, 200)
                  .fullyInstalled());
  network_.switchAt(1)->receivePacket(
      1, of::Packet::makeTcp(of::MacAddress::fromUint64(1),
                             of::MacAddress::fromUint64(0xBB),
                             of::Ipv4Address(10, 0, 0, 1),
                             of::Ipv4Address(10, 0, 0, 99), 40000, 80,
                             of::tcpflags::kSyn));
  EXPECT_EQ(host->receivedCount(), 1u);
  // Non-matching traffic hits the classifier's catch-all drop.
  network_.switchAt(1)->receivePacket(
      1, of::Packet::makeTcp(of::MacAddress::fromUint64(1),
                             of::MacAddress::fromUint64(0xBB),
                             of::Ipv4Address(10, 0, 0, 1),
                             of::Ipv4Address(10, 0, 0, 99), 40000, 443,
                             of::tcpflags::kSyn));
  EXPECT_EQ(host->receivedCount(), 1u);
  EXPECT_EQ(network_.switchAt(1)->packetInCount(), 0u);
}

}  // namespace
}  // namespace sdnshield::hll
