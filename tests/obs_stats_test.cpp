// The /stats export surface and its permission gate, plus the span-trail
// integration in supervision audit records: a quarantine entry must carry a
// non-empty trail of what the controller was doing at the time.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "obs/metrics.h"
#include "switchsim/sim_network.h"

namespace sdnshield::iso {
namespace {

using namespace std::chrono_literals;
using lang::parsePermissions;

class StatsApp final : public ctrl::App {
 public:
  explicit StatsApp(std::string name = "stats_app") : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  std::string requestedManifest() const override { return ""; }
  void init(ctrl::AppContext& context) override { context_ = &context; }

  ctrl::AppContext& context() { return *context_; }

 private:
  std::string name_;
  ctrl::AppContext* context_ = nullptr;
};

class ObsStatsTest : public ::testing::Test {
 protected:
  ObsStatsTest() : network_(controller_), shield_(controller_) {
    network_.buildLinear(2);
  }

  of::AppId load(std::shared_ptr<StatsApp> app, const std::string& perms) {
    return shield_.loadApp(app, parsePermissions(perms));
  }

  ctrl::Controller controller_;
  sim::SimNetwork network_;
  ShieldRuntime shield_;
};

TEST_F(ObsStatsTest, StatsReportGrantedAtSwitchLevel) {
  auto app = std::make_shared<StatsApp>();
  // An unfiltered read_statistics grant covers every level, switch included.
  load(app, "PERM read_statistics\nPERM pkt_in_event\n");
  // Exercise the instrumented paths first so the report has content: an
  // event dispatch (controller.dispatch_ns) and one completed deputy call
  // (ksd.calls) — the warm-up statsReport below is itself that call.
  app->context().subscribePacketIn([](const ctrl::PacketInEvent&) {});
  controller_.onPacketIn(of::PacketIn{1, 1, of::PacketInReason::kNoMatch,
                                      0, {}});
  ASSERT_TRUE(app->context().api().statsReport().ok());
  ctrl::ApiResponse<ctrl::StatsReport> response =
      app->context().api().statsReport();
  ASSERT_TRUE(response.ok()) << response.error().toString();
  const ctrl::StatsReport& report = response.value();
  // The registry carries the KSD instrumentation at minimum: the statsReport
  // call itself went through a deputy.
  const obs::CounterSnapshot* ksdCalls =
      report.metrics.findCounter("ksd.calls");
  ASSERT_NE(ksdCalls, nullptr);
  EXPECT_GE(ksdCalls->value, 1u);
  ASSERT_NE(report.metrics.findHistogram("ksd.call_ns"), nullptr);
  ASSERT_NE(report.metrics.findHistogram("controller.dispatch_ns"), nullptr);
  EXPECT_GE(report.auditRecords, 1u);
  // Renderers produce non-trivial output.
  EXPECT_NE(report.toText().find("ksd.calls"), std::string::npos);
  EXPECT_NE(report.toJson().find("\"metrics\""), std::string::npos);
}

TEST_F(ObsStatsTest, StatsReportDeniedWithoutStatisticsToken) {
  auto app = std::make_shared<StatsApp>();
  load(app, "PERM visible_topology\n");
  ctrl::ApiResponse<ctrl::StatsReport> response =
      app->context().api().statsReport();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.code(), ctrl::ApiErrc::kPermissionDenied);
  EXPECT_GE(controller_.audit().deniedCount(), 1u);
}

TEST_F(ObsStatsTest, StatsReportDeniedForFlowScopedGrant) {
  auto app = std::make_shared<StatsApp>();
  // Flow-level statistics only: the controller-wide report is switch-level
  // data and must stay out of reach.
  load(app, "PERM read_statistics LIMITING FLOW_LEVEL\n");
  ctrl::ApiResponse<ctrl::StatsReport> response =
      app->context().api().statsReport();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.code(), ctrl::ApiErrc::kPermissionDenied);
}

TEST_F(ObsStatsTest, QuarantineAuditRecordCarriesSpanTrail) {
  auto app = std::make_shared<StatsApp>();
  of::AppId id = load(app, "PERM read_statistics\n");
  // Drive at least one traced operation (a deputy call) so the tracer rings
  // are non-empty, then quarantine the app.
  app->context().api().statsReport();
  shield_.quarantineApp(id, "test quarantine");

  bool found = false;
  for (const engine::AuditEntry& entry : controller_.audit().entriesFor(id)) {
    if (entry.kind != engine::AuditKind::kSupervision) continue;
    if (entry.summary.find("quarantined") == std::string::npos) continue;
    found = true;
    // The supervision record must carry the recent span trail.
    EXPECT_FALSE(entry.spanTrail.empty());
    EXPECT_NE(entry.toString().find("trail=["), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsStatsTest, StatsReportAfterShutdownThrows) {
  auto app = std::make_shared<StatsApp>();
  load(app, "PERM read_statistics\n");
  shield_.shutdown();
  // Like every other mediated call, statsReport on a stopped runtime keeps
  // the throwing contract instead of faulting on freed state.
  EXPECT_THROW(app->context().api().statsReport(), std::runtime_error);
}

}  // namespace
}  // namespace sdnshield::iso
