// Controller kernel: southbound attachment, topology learning, kernel ops,
// ownership stamping, event dispatch and the data bus.
#include "controller/controller.h"

#include <gtest/gtest.h>

#include "controller/services.h"
#include "switchsim/sim_switch.h"

namespace sdnshield::ctrl {
namespace {

std::shared_ptr<sim::SimSwitch> makeSwitch(Controller& controller,
                                           of::DatapathId dpid) {
  auto sw = std::make_shared<sim::SimSwitch>(dpid);
  sw->setController(&controller);
  controller.attachSwitch(sw, ConnectionInfo{dpid, "sim", "in-process", 0});
  return sw;
}

of::FlowMod modTo(const char* ipDst, std::uint16_t priority = 10) {
  of::FlowMod mod;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ipDst)};
  mod.priority = priority;
  mod.actions.push_back(of::OutputAction{1});
  return mod;
}

TEST(Controller, AttachDetachMaintainsTopology) {
  Controller controller;
  makeSwitch(controller, 1);
  makeSwitch(controller, 2);
  controller.addLink(1, 2, 2, 3);
  net::Topology topo = controller.kernelReadTopology();
  EXPECT_EQ(topo.switchCount(), 2u);
  EXPECT_TRUE(topo.hasLink(1, 2));
  controller.detachSwitch(2);
  topo = controller.kernelReadTopology();
  EXPECT_EQ(topo.switchCount(), 1u);
  EXPECT_FALSE(topo.hasLink(1, 2));
  EXPECT_EQ(controller.switchIds().size(), 1u);
}

TEST(Controller, TopologyEventsFireOnChanges) {
  Controller controller;
  std::vector<TopologyChange> seen;
  controller.addTopologySubscriber(1, [&](const Event& event) {
    seen.push_back(std::get<TopologyEvent>(event).change);
  });
  makeSwitch(controller, 1);
  makeSwitch(controller, 2);
  controller.addLink(1, 2, 2, 3);
  controller.learnHost(net::Host{of::MacAddress::fromUint64(1),
                                 of::Ipv4Address(10, 0, 0, 1), 1, 1});
  controller.detachSwitch(2);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0], TopologyChange::kSwitchUp);
  EXPECT_EQ(seen[2], TopologyChange::kLinkUp);
  EXPECT_EQ(seen[3], TopologyChange::kHostSeen);
  EXPECT_EQ(seen[4], TopologyChange::kSwitchDown);
}

TEST(Controller, KernelInsertFlowStampsCookieAndTracksOwnership) {
  Controller controller;
  auto sw = makeSwitch(controller, 1);
  ASSERT_TRUE(controller.kernelInsertFlow(7, 1, modTo("10.0.0.1")).ok());
  auto flows = sw->dumpFlows().value();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].cookie, 7u);
  EXPECT_EQ(controller.ownership().countFor(7, 1), 1u);
}

TEST(Controller, KernelInsertToUnknownSwitchFails) {
  Controller controller;
  ApiResult result = controller.kernelInsertFlow(7, 99, modTo("10.0.0.1"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ApiErrc::kInvalidArgument);
}

TEST(Controller, FlowEventsCarryIssuerAndChange) {
  Controller controller;
  makeSwitch(controller, 1);
  std::vector<FlowEvent> events;
  controller.addFlowSubscriber(1, [&](const Event& event) {
    events.push_back(std::get<FlowEvent>(event));
  });
  controller.kernelInsertFlow(7, 1, modTo("10.0.0.1"));
  controller.kernelDeleteFlow(7, 1, modTo("10.0.0.1").match, true, 10);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].change, FlowChange::kInstalled);
  EXPECT_EQ(events[0].issuer, 7u);
  EXPECT_EQ(events[1].change, FlowChange::kRemoved);
}

TEST(Controller, KernelDeleteRemovesFromSwitchAndTracker) {
  Controller controller;
  auto sw = makeSwitch(controller, 1);
  controller.kernelInsertFlow(7, 1, modTo("10.0.0.1"));
  controller.kernelDeleteFlow(7, 1, modTo("10.0.0.1").match, true, 10);
  EXPECT_TRUE(sw->dumpFlows().value().empty());
  EXPECT_EQ(controller.ownership().countFor(7, 1), 0u);
}

TEST(Controller, ReadFlowTableReturnsInstalledRules) {
  Controller controller;
  makeSwitch(controller, 1);
  controller.kernelInsertFlow(7, 1, modTo("10.0.0.1"));
  controller.kernelInsertFlow(8, 1, modTo("10.0.0.2", 20));
  auto response = controller.kernelReadFlowTable(1);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().size(), 2u);
  EXPECT_FALSE(controller.kernelReadFlowTable(42).ok());
}

TEST(Controller, ReadStatisticsRoutesToSwitch) {
  Controller controller;
  makeSwitch(controller, 1);
  controller.kernelInsertFlow(7, 1, modTo("10.0.0.1"));
  of::StatsRequest request;
  request.level = of::StatsLevel::kSwitch;
  request.dpid = 1;
  auto response = controller.kernelReadStatistics(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().switchStats.activeFlows, 1u);
}

TEST(Controller, PacketInDispatchReachesAllSubscribers) {
  Controller controller;
  int countA = 0;
  int countB = 0;
  controller.addPacketInSubscriber(1, [&](const Event&) { ++countA; });
  controller.addPacketInSubscriber(2, [&](const Event&) { ++countB; });
  controller.onPacketIn(of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0, {}});
  EXPECT_EQ(countA, 1);
  EXPECT_EQ(countB, 1);
}

TEST(Controller, DataBusRoutesByTopic) {
  Controller controller;
  std::vector<std::string> received;
  controller.addDataSubscriber(1, "alto.costmap", [&](const Event& event) {
    received.push_back(std::get<DataUpdateEvent>(event).payload);
  });
  controller.addDataSubscriber(2, "other.topic", [&](const Event&) {
    FAIL() << "wrong topic delivered";
  });
  controller.kernelPublishData(9, "alto.costmap", "payload1");
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "payload1");
}

TEST(Controller, RemoveSubscribersSilencesApp) {
  Controller controller;
  int count = 0;
  controller.addPacketInSubscriber(5, [&](const Event&) { ++count; });
  controller.removeSubscribers(5);
  controller.onPacketIn(of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0, {}});
  EXPECT_EQ(count, 0);
}

TEST(Controller, ErrorEventsReachSubscribers) {
  Controller controller;
  std::vector<of::ErrorType> seen;
  controller.addErrorSubscriber(1, [&](const Event& event) {
    seen.push_back(std::get<ErrorEvent>(event).error.type);
  });
  controller.onSwitchError(of::ErrorMsg{1, of::ErrorType::kTableFull, "full"});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], of::ErrorType::kTableFull);
}

TEST(BuildPathFlowMods, InstallsPerHopRulesWithPorts) {
  net::Topology topo;
  topo.addSwitch(1);
  topo.addSwitch(2);
  topo.addLink(1, 2, 2, 3);
  net::Host src{of::MacAddress::fromUint64(1), of::Ipv4Address(10, 0, 0, 1), 1, 1};
  net::Host dst{of::MacAddress::fromUint64(2), of::Ipv4Address(10, 0, 0, 2), 2, 1};
  topo.attachHost(src);
  topo.attachHost(dst);
  of::FlowMatch match;
  match.ipDst = of::MaskedIpv4{dst.ip};
  auto mods = buildPathFlowMods(topo, src, dst, match, 30);
  ASSERT_TRUE(mods.has_value());
  ASSERT_EQ(mods->size(), 2u);
  EXPECT_EQ((*mods)[0].first, 1u);
  EXPECT_EQ((*mods)[0].second.match.inPort, 1u);  // Host-facing ingress.
  EXPECT_EQ(std::get<of::OutputAction>((*mods)[0].second.actions[0]).port, 2u);
  EXPECT_EQ((*mods)[1].first, 2u);
  EXPECT_EQ(std::get<of::OutputAction>((*mods)[1].second.actions[0]).port, 1u);
}

TEST(BuildPathFlowMods, DisconnectedHostsYieldNothing) {
  net::Topology topo;
  topo.addSwitch(1);
  topo.addSwitch(2);  // No link.
  net::Host src{of::MacAddress::fromUint64(1), of::Ipv4Address(10, 0, 0, 1), 1, 1};
  net::Host dst{of::MacAddress::fromUint64(2), of::Ipv4Address(10, 0, 0, 2), 2, 1};
  topo.attachHost(src);
  topo.attachHost(dst);
  EXPECT_FALSE(
      buildPathFlowMods(topo, src, dst, of::FlowMatch::any(), 30).has_value());
}

}  // namespace
}  // namespace sdnshield::ctrl
