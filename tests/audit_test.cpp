#include "core/engine/audit.h"

#include <gtest/gtest.h>

#include <thread>

namespace sdnshield::engine {
namespace {

using perm::ApiCall;

TEST(AuditLog, RecordsAllowAndDeny) {
  AuditLog log;
  log.record(ApiCall::readTopology(1), true);
  log.record(ApiCall::fileSystem(2, "/etc/shadow"), false, "missing token");
  auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].allowed);
  EXPECT_EQ(entries[0].app, 1u);
  EXPECT_FALSE(entries[1].allowed);
  EXPECT_EQ(entries[1].summary, "missing token");
  EXPECT_EQ(log.deniedCount(), 1u);
  EXPECT_EQ(log.totalRecorded(), 2u);
}

TEST(AuditLog, SequenceNumbersAreMonotonic) {
  AuditLog log;
  for (int i = 0; i < 5; ++i) log.record(ApiCall::readTopology(1), true);
  auto entries = log.entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].sequence, entries[i - 1].sequence + 1);
  }
}

TEST(AuditLog, RingCapacityBoundsMemory) {
  AuditLog log(10);
  for (int i = 0; i < 25; ++i) log.record(ApiCall::readTopology(1), true);
  EXPECT_EQ(log.entries().size(), 10u);
  EXPECT_EQ(log.totalRecorded(), 25u);
  // The surviving entries are the most recent ones.
  EXPECT_EQ(log.entries().front().sequence, 15u);
}

TEST(AuditLog, FiltersByApp) {
  AuditLog log;
  log.record(ApiCall::readTopology(1), true);
  log.record(ApiCall::readTopology(2), true);
  log.record(ApiCall::readTopology(1), false, "x");
  EXPECT_EQ(log.entriesFor(1).size(), 2u);
  EXPECT_EQ(log.entriesFor(2).size(), 1u);
  EXPECT_EQ(log.entriesFor(3).size(), 0u);
}

TEST(AuditLog, ForensicToStringMentionsDecision) {
  AuditLog log;
  log.record(ApiCall::fileSystem(7, "/tmp/x"), false, "denied by policy");
  std::string text = log.entries()[0].toString();
  EXPECT_NE(text.find("DENY"), std::string::npos);
  EXPECT_NE(text.find("app=7"), std::string::npos);
}

TEST(AuditLog, ClearResetsCounters) {
  AuditLog log;
  log.record(ApiCall::readTopology(1), false, "x");
  log.clear();
  EXPECT_EQ(log.totalRecorded(), 0u);
  EXPECT_EQ(log.deniedCount(), 0u);
  EXPECT_TRUE(log.entries().empty());
}

TEST(AuditLog, DroppedCountTracksEviction) {
  AuditLog log(10);
  EXPECT_EQ(log.droppedCount(), 0u);
  for (int i = 0; i < 25; ++i) log.record(ApiCall::readTopology(1), true);
  EXPECT_EQ(log.droppedCount(), 15u);
  // The retention identity the forensics story depends on.
  EXPECT_EQ(log.totalRecorded() - log.droppedCount(), log.entries().size());
}

TEST(AuditLog, SetCapacityShrinksAndEvictsOldest) {
  AuditLog log;
  for (int i = 0; i < 20; ++i) log.record(ApiCall::readTopology(1), true);
  log.setCapacity(5);
  EXPECT_EQ(log.capacity(), 5u);
  auto entries = log.entries();
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries.front().sequence, 15u);
  EXPECT_EQ(log.droppedCount(), 15u);
}

TEST(AuditLog, QueriesAtCapacityStaySound) {
  AuditLog log(8);
  for (int i = 0; i < 40; ++i) {
    log.record(ApiCall::readTopology(i % 2 == 0 ? 1 : 2), i % 4 != 0);
  }
  // Per-app queries only see surviving entries, and those stay in sequence
  // order with no gaps beyond eviction.
  auto survivors = log.entries();
  ASSERT_EQ(survivors.size(), 8u);
  for (std::size_t i = 1; i < survivors.size(); ++i) {
    EXPECT_EQ(survivors[i].sequence, survivors[i - 1].sequence + 1);
  }
  EXPECT_EQ(log.entriesFor(1).size() + log.entriesFor(2).size(), 8u);
  // All-time counters are immune to eviction.
  EXPECT_EQ(log.totalRecorded(), 40u);
  EXPECT_EQ(log.deniedCount(), 10u);
  EXPECT_EQ(log.droppedCount(), 32u);
}

TEST(AuditLog, ClearResetsDroppedCount) {
  AuditLog log(2);
  for (int i = 0; i < 6; ++i) log.record(ApiCall::readTopology(1), true);
  EXPECT_EQ(log.droppedCount(), 4u);
  log.clear();
  EXPECT_EQ(log.droppedCount(), 0u);
}

TEST(AuditLog, ConcurrentRecordingIsSafe) {
  AuditLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < 1000; ++i) {
        log.record(ApiCall::readTopology(1), i % 2 == 0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.totalRecorded(), 4000u);
  EXPECT_EQ(log.deniedCount(), 2000u);
}

}  // namespace
}  // namespace sdnshield::engine
