// net::Reactor: epoll dispatch, cross-thread post(), interest-set rearm,
// and handler removal — the event loop under the wire frontend.
#include "net/reactor.h"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace sdnshield::net {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds) == 0) {
      a = fds[0];
      b = fds[1];
    }
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(NetReactor, DispatchesReadEvents) {
  Reactor reactor;
  SocketPair pair;
  ASSERT_GE(pair.a, 0);

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint8_t> received;
  ASSERT_TRUE(reactor.add(pair.b, EPOLLIN, [&](std::uint32_t) {
    std::uint8_t buffer[64];
    ssize_t n = ::read(pair.b, buffer, sizeof(buffer));
    if (n > 0) {
      std::lock_guard lock(mutex);
      received.insert(received.end(), buffer, buffer + n);
      cv.notify_all();
    }
  }));
  reactor.start();

  std::uint8_t payload[] = {1, 2, 3};
  ASSERT_EQ(::write(pair.a, payload, sizeof(payload)), 3);
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return received.size() >= 3; }));
    EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  }
  reactor.remove(pair.b);
  reactor.stop();
}

TEST(NetReactor, PostRunsTasksFromManyThreads) {
  Reactor reactor;
  reactor.start();
  std::atomic<int> ran{0};
  constexpr int kThreads = 8;
  constexpr int kTasksPerThread = 50;
  std::vector<std::thread> posters;
  posters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&reactor, &ran] {
      for (int i = 0; i < kTasksPerThread; ++i) {
        reactor.post([&ran] { ran.fetch_add(1); });
      }
    });
  }
  for (auto& thread : posters) thread.join();
  // Tasks drain on the loop thread; poll until they all ran.
  for (int i = 0; i < 500 && ran.load() < kThreads * kTasksPerThread; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(ran.load(), kThreads * kTasksPerThread);
  reactor.stop();
}

TEST(NetReactor, PostedTasksRunOnReactorThread) {
  Reactor reactor;
  reactor.start();
  std::atomic<bool> onLoop{false};
  std::atomic<bool> done{false};
  reactor.post([&] {
    onLoop.store(reactor.onReactorThread());
    done.store(true);
  });
  for (int i = 0; i < 500 && !done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(done.load());
  EXPECT_TRUE(onLoop.load());
  EXPECT_FALSE(reactor.onReactorThread());
  reactor.stop();
}

TEST(NetReactor, RearmTogglesWriteInterest) {
  Reactor reactor;
  SocketPair pair;
  ASSERT_GE(pair.a, 0);

  std::atomic<int> writableEvents{0};
  ASSERT_TRUE(reactor.add(pair.a, EPOLLIN, [&](std::uint32_t events) {
    if (events & EPOLLOUT) writableEvents.fetch_add(1);
  }));
  reactor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // EPOLLIN only: an idle writable socket produces no events.
  EXPECT_EQ(writableEvents.load(), 0);

  ASSERT_TRUE(reactor.rearm(pair.a, EPOLLIN | EPOLLOUT));
  for (int i = 0; i < 500 && writableEvents.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(writableEvents.load(), 0);  // Level-triggered EPOLLOUT fires.

  reactor.remove(pair.a);
  reactor.stop();
}

TEST(NetReactor, RemoveFromOwnHandlerIsSafe) {
  Reactor reactor;
  SocketPair pair;
  ASSERT_GE(pair.a, 0);
  std::atomic<int> calls{0};
  ASSERT_TRUE(reactor.add(pair.b, EPOLLIN, [&](std::uint32_t) {
    calls.fetch_add(1);
    std::uint8_t buffer[16];
    while (::read(pair.b, buffer, sizeof(buffer)) > 0) {
    }
    reactor.remove(pair.b);  // Self-removal mid-dispatch.
  }));
  reactor.start();
  std::uint8_t byte = 0x7f;
  ASSERT_EQ(::write(pair.a, &byte, 1), 1);
  for (int i = 0; i < 500 && calls.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(calls.load(), 1);
  // Further writes land on a deregistered fd: no dispatch, no crash.
  ASSERT_EQ(::write(pair.a, &byte, 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(reactor.fdCount(), 0u);
  reactor.stop();
}

TEST(NetReactor, ManyFdsDispatchIndependently) {
  Reactor reactor;
  constexpr std::size_t kPairs = 64;
  std::vector<std::unique_ptr<SocketPair>> pairs;
  std::atomic<std::size_t> echoed{0};
  for (std::size_t i = 0; i < kPairs; ++i) {
    auto pair = std::make_unique<SocketPair>();
    ASSERT_GE(pair->a, 0);
    int fd = pair->b;
    ASSERT_TRUE(reactor.add(fd, EPOLLIN, [fd, &echoed](std::uint32_t) {
      std::uint8_t buffer[16];
      ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n > 0) {
        [[maybe_unused]] ssize_t w = ::write(fd, buffer, n);
        echoed.fetch_add(1);
      }
    }));
    pairs.push_back(std::move(pair));
  }
  reactor.start();
  for (auto& pair : pairs) {
    std::uint8_t byte = 0x55;
    ASSERT_EQ(::write(pair->a, &byte, 1), 1);
  }
  for (int i = 0; i < 500 && echoed.load() < kPairs; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(echoed.load(), kPairs);
  // Every peer got its own byte back.
  for (auto& pair : pairs) {
    std::uint8_t byte = 0;
    EXPECT_EQ(::read(pair->a, &byte, 1), 1);
    EXPECT_EQ(byte, 0x55);
  }
  for (auto& pair : pairs) reactor.remove(pair->b);
  reactor.stop();
}

}  // namespace
}  // namespace sdnshield::net
