// Concurrency stress for PermissionEngine (ISSUE 1 satellite): hammers
// check() from reader threads while writer threads install/uninstall apps,
// exercising the atomic app-table snapshot and the thread-local decision
// memo's instance-id invalidation. Run under TSan via
// scripts/ci.sh (SDNSHIELD_SANITIZE=thread) to catch data races.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/perm/permission.h"
#include "core/engine/permission_engine.h"

namespace sdnshield::engine {
namespace {

using perm::ApiCall;
using perm::FilterExpr;
using perm::FilterPtr;
using perm::Token;

perm::PermissionSet tpDstOnlyManifest(std::uint16_t port) {
  perm::PermissionSet set;
  set.grant(Token::kInsertFlow,
            FilterExpr::singleton(FilterPtr{new perm::FieldPredicateFilter(
                of::MatchField::kTpDst, port)}));
  set.grant(Token::kReadStatistics, nullptr);
  return set;
}

ApiCall insertCall(of::AppId app, std::uint16_t tpDst) {
  ApiCall call;
  call.type = perm::ApiCallType::kInsertFlow;
  call.app = app;
  call.dpid = 1;
  of::FlowMatch match;
  match.tpDst = tpDst;
  call.match = match;
  call.priority = 10;
  return call;
}

// 8 threads (4 checkers, 2 installers, 1 uninstaller, 1 introspector) share
// one engine. App 1 has a fixed manifest installed once and never touched;
// its decisions must stay byte-stable throughout. Apps 2..5 churn.
TEST(EngineConcurrencyTest, ParallelCheckInstallUninstallIsLinearizable) {
  PermissionEngine engine;
  constexpr of::AppId kStableApp = 1;
  engine.install(kStableApp, tpDstOnlyManifest(80));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checksDone{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ApiCall allowed = insertCall(kStableApp, 80);
      ApiCall denied = insertCall(kStableApp, 443);
      ApiCall statsCall;
      statsCall.type = perm::ApiCallType::kReadStatistics;
      statsCall.app = kStableApp;
      statsCall.statsLevel = of::StatsLevel::kFlow;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!engine.check(allowed).allowed || engine.check(denied).allowed ||
            !engine.check(statsCall).allowed) {
          failed.store(true);
          return;
        }
        // Churning apps may or may not be installed at this instant; the
        // decision just has to come back without crashing or hanging.
        ApiCall churn = insertCall(2 + (t % 4), 80);
        (void)engine.check(churn);
        checksDone.fetch_add(4, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      of::AppId app = 2 + t;
      std::uint16_t port = 80;
      while (!stop.load(std::memory_order_relaxed)) {
        engine.install(app, tpDstOnlyManifest(port));
        port = port == 80 ? 443 : 80;
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      engine.uninstall(4);
      engine.install(4, tpDstOnlyManifest(22));
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto compiled = engine.compiled(kStableApp);
      if (!compiled || !compiled->hasToken(Token::kInsertFlow)) {
        failed.store(true);
        return;
      }
    }
  });

  // Run until every checker has produced a healthy sample (bounded by a
  // wall-clock cap so a livelock fails instead of hanging CI).
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (checksDone.load(std::memory_order_relaxed) < 20'000 &&
         std::chrono::steady_clock::now() < deadline &&
         !failed.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(failed.load()) << "stable app's decision flipped mid-run";
  EXPECT_GE(checksDone.load(), 20'000u) << "checkers starved";
}

// Reinstalling an app must invalidate memoized decisions: the same call that
// the permissive manifest allowed has to be denied after the restrictive one
// replaces it, even though the memo key is identical.
TEST(EngineConcurrencyTest, ReinstallInvalidatesMemoizedDecisions) {
  PermissionEngine engine;
  constexpr of::AppId kApp = 9;
  ApiCall call = insertCall(kApp, 443);

  engine.install(kApp, tpDstOnlyManifest(443));
  EXPECT_TRUE(engine.check(call).allowed);
  EXPECT_TRUE(engine.check(call).allowed);  // Memoized on this thread.

  engine.install(kApp, tpDstOnlyManifest(80));  // Recompile -> new instanceId.
  EXPECT_FALSE(engine.check(call).allowed);

  engine.uninstall(kApp);
  EXPECT_FALSE(engine.check(call).allowed);
}

}  // namespace
}  // namespace sdnshield::engine
