// Dynamic manifest generation (§III): profiling an app through a
// RecordingContext yields the minimum manifest covering its behaviour; the
// app then runs correctly under exactly that manifest.
#include "controller/manifest_recorder.h"

#include <gtest/gtest.h>

#include <chrono>

#include "apps/l2_learning.h"
#include "apps/monitoring.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace sdnshield::ctrl {
namespace {

using namespace std::chrono_literals;
using perm::Token;

struct ProfilingBed {
  ProfilingBed() : network(controller), runtime(controller) {
    network.buildLinear(1);
    h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
    h2 = network.addHost(1, 5, of::MacAddress::fromUint64(0xBB),
                         of::Ipv4Address(10, 0, 0, 99));
  }

  ctrl::Controller controller;
  sim::SimNetwork network;
  iso::BaselineRuntime runtime;
  std::shared_ptr<sim::SimHost> h1, h2;
};

/// Wraps an app so its init sees the recording context.
class ProfiledApp final : public App {
 public:
  ProfiledApp(std::shared_ptr<App> inner,
              std::shared_ptr<RecordingContext>& slot)
      : inner_(std::move(inner)), slot_(slot) {}

  std::string name() const override { return inner_->name(); }
  std::string requestedManifest() const override {
    return inner_->requestedManifest();
  }
  void init(AppContext& context) override {
    slot_ = std::make_shared<RecordingContext>(context);
    inner_->init(*slot_);
  }

 private:
  std::shared_ptr<App> inner_;
  std::shared_ptr<RecordingContext>& slot_;
};

TEST(ManifestRecorder, L2ProfileYieldsMinimalManifest) {
  ProfilingBed bed;
  std::shared_ptr<RecordingContext> recording;
  auto app = std::make_shared<apps::L2LearningSwitch>();
  bed.runtime.loadApp(std::make_shared<ProfiledApp>(app, recording));
  ASSERT_NE(recording, nullptr);

  // Exercise the app: unknown destination (flood) + learned path (rule).
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h2->mac(), bed.h1->ip(),
                                   bed.h2->ip(), 40000, 80, of::tcpflags::kSyn));
  bed.h2->send(of::Packet::makeTcp(bed.h2->mac(), bed.h1->mac(), bed.h2->ip(),
                                   bed.h1->ip(), 80, 40000, of::tcpflags::kAck));

  perm::PermissionSet recorded = recording->recordedPermissions();
  // Exactly the tokens the app used — no host access, no topology.
  EXPECT_TRUE(recorded.has(Token::kPktInEvent));
  EXPECT_TRUE(recorded.has(Token::kSendPktOut));
  EXPECT_TRUE(recorded.has(Token::kInsertFlow));
  EXPECT_FALSE(recorded.has(Token::kHostNetwork));
  EXPECT_FALSE(recorded.has(Token::kVisibleTopology));

  // The inferred filters are tight: forward-only inserts at the observed
  // priority, packet-outs always from packet-ins.
  perm::FilterExprPtr insertFilter = *recorded.filterFor(Token::kInsertFlow);
  ASSERT_NE(insertFilter, nullptr);
  of::FlowMod rewriting;
  of::SetFieldAction set;
  set.field = of::MatchField::kTpDst;
  rewriting.actions = {set, of::OutputAction{1}};
  EXPECT_FALSE(insertFilter->evaluate(perm::ApiCall::insertFlow(1, 1, rewriting)));
  perm::FilterExprPtr pktOutFilter = *recorded.filterFor(Token::kSendPktOut);
  ASSERT_NE(pktOutFilter, nullptr);
  of::PacketOut fabricated;
  fabricated.fromPacketIn = false;
  EXPECT_FALSE(
      pktOutFilter->evaluate(perm::ApiCall::sendPacketOut(1, fabricated)));
}

TEST(ManifestRecorder, GeneratedManifestTextParsesAndNamesTheApp) {
  ProfilingBed bed;
  std::shared_ptr<RecordingContext> recording;
  auto app = std::make_shared<apps::L2LearningSwitch>();
  bed.runtime.loadApp(std::make_shared<ProfiledApp>(app, recording));
  bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h2->mac(), bed.h1->ip(),
                                   bed.h2->ip(), 40000, 80, of::tcpflags::kSyn));
  auto manifest =
      lang::parseManifest(recording->manifestText("l2_learning"));
  EXPECT_EQ(manifest.appName, "l2_learning");
  EXPECT_TRUE(manifest.permissions.has(Token::kPktInEvent));
}

TEST(ManifestRecorder, AppRunsUnderItsOwnRecordedManifest) {
  // Profile on a baseline run...
  perm::PermissionSet recorded;
  {
    ProfilingBed bed;
    std::shared_ptr<RecordingContext> recording;
    auto app = std::make_shared<apps::L2LearningSwitch>();
    bed.runtime.loadApp(std::make_shared<ProfiledApp>(app, recording));
    bed.h1->send(of::Packet::makeTcp(bed.h1->mac(), bed.h2->mac(),
                                     bed.h1->ip(), bed.h2->ip(), 40000, 80,
                                     of::tcpflags::kSyn));
    bed.h2->send(of::Packet::makeTcp(bed.h2->mac(), bed.h1->mac(),
                                     bed.h2->ip(), bed.h1->ip(), 80, 40000,
                                     of::tcpflags::kAck));
    recorded = recording->recordedPermissions();
  }
  // ...then deploy under exactly the recorded grant: still fully functional.
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h2 = network.addHost(1, 5, of::MacAddress::fromUint64(0xBB),
                            of::Ipv4Address(10, 0, 0, 99));
  iso::ShieldRuntime shield(controller);
  auto app = std::make_shared<apps::L2LearningSwitch>();
  shield.loadApp(app, recorded);
  h1->send(of::Packet::makeTcp(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 40000,
                               80, of::tcpflags::kSyn));
  ASSERT_TRUE(h2->waitForPackets(1, 2000ms));
  h2->send(of::Packet::makeTcp(h2->mac(), h1->mac(), h2->ip(), h1->ip(), 80,
                               40000, of::tcpflags::kAck));
  ASSERT_TRUE(h1->waitForPackets(1, 2000ms));
  EXPECT_EQ(app->rulesInstalled(), 1u);
  EXPECT_EQ(controller.audit().deniedCount(), 0u);
}

TEST(ManifestRecorder, MonitoringProfileInfersNetworkPrefix) {
  ProfilingBed bed;
  std::shared_ptr<RecordingContext> recording;
  auto app = std::make_shared<apps::MonitoringApp>(of::Ipv4Address(10, 1, 0, 10));
  bed.runtime.loadApp(std::make_shared<ProfiledApp>(app, recording));
  // Exercise: reports to two collectors in the 10.1/16 admin network.
  app->collectAndReport();
  recording->host().netSend(of::Ipv4Address(10, 1, 4, 20), 8080, "x");

  perm::PermissionSet recorded = recording->recordedPermissions();
  ASSERT_TRUE(recorded.has(Token::kHostNetwork));
  perm::FilterExprPtr filter = *recorded.filterFor(Token::kHostNetwork);
  ASSERT_NE(filter, nullptr);
  // Inside the inferred common prefix: allowed; far outside: rejected.
  EXPECT_TRUE(filter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(10, 1, 2, 3), 80)));
  EXPECT_FALSE(filter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(203, 0, 113, 66), 80)));
  // Statistics granularities observed during the profile are preserved.
  ASSERT_TRUE(recorded.has(Token::kReadStatistics));
}

TEST(ManifestRecorder, SingleEndpointInfersSlash32) {
  ProfilingBed bed;
  std::shared_ptr<RecordingContext> recording;
  auto app = std::make_shared<apps::MonitoringApp>(of::Ipv4Address(10, 1, 0, 10));
  bed.runtime.loadApp(std::make_shared<ProfiledApp>(app, recording));
  recording->host().netSend(of::Ipv4Address(10, 1, 0, 10), 8080, "x");
  perm::FilterExprPtr filter =
      *recording->recordedPermissions().filterFor(Token::kHostNetwork);
  EXPECT_TRUE(filter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(10, 1, 0, 10), 80)));
  EXPECT_FALSE(filter->evaluate(
      perm::ApiCall::hostNetwork(1, of::Ipv4Address(10, 1, 0, 11), 80)));
}

}  // namespace
}  // namespace sdnshield::ctrl
