// Permission-language parser tests, anchored on the paper's own example
// listings (§IV, §VII) plus round-trip properties through the printer.
#include "core/lang/perm_parser.h"

#include <gtest/gtest.h>

#include "core/lang/printer.h"

namespace sdnshield::lang {
namespace {

using perm::Token;

TEST(PermParser, PaperPredicateFilterExample) {
  // §IV-a: read the flow entries targeting 10.13.0.0/16.
  auto set = parsePermissions(
      "PERM read_flow_table LIMITING \\\n"
      "IP_DST 10.13.0.0 MASK 255.255.0.0\n");
  ASSERT_TRUE(set.has(Token::kReadFlowTable));
  perm::FilterExprPtr filter = *set.filterFor(Token::kReadFlowTable);
  ASSERT_NE(filter, nullptr);
  of::FlowMod mod;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 13, 9, 9)};
  EXPECT_TRUE(filter->evaluate(perm::ApiCall::insertFlow(1, 1, mod)));
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 14, 9, 9)};
  EXPECT_FALSE(filter->evaluate(perm::ApiCall::insertFlow(1, 1, mod)));
}

TEST(PermParser, PaperWildcardExample) {
  // §IV-a: load balancer shuffling on the lower 8 bits of IP_dst.
  auto set = parsePermissions(
      "PERM insert_flow LIMITING \\\n"
      "WILDCARD IP_DST 255.255.255.0\n");
  ASSERT_TRUE(set.has(Token::kInsertFlow));
  perm::FilterExprPtr filter = *set.filterFor(Token::kInsertFlow);
  of::FlowMod lower8;
  lower8.match.ipDst =
      of::MaskedIpv4{of::Ipv4Address(0, 0, 0, 9),
                     of::Ipv4Address::parse("0.0.0.255")};
  EXPECT_TRUE(filter->evaluate(perm::ApiCall::insertFlow(1, 1, lower8)));
  of::FlowMod exact;
  exact.match.ipDst = of::MaskedIpv4{of::Ipv4Address(10, 1, 2, 3)};
  EXPECT_FALSE(filter->evaluate(perm::ApiCall::insertFlow(1, 1, exact)));
}

TEST(PermParser, PaperCompositionExample) {
  // §IV-b: own flows OR src/dst in 10.13.0.0/16.
  auto set = parsePermissions(
      "PERM read_flow_table LIMITING OWN_FLOWS OR \\\n"
      "IP_SRC 10.13.0.0 MASK 255.255.0.0 OR \\\n"
      "IP_DST 10.13.0.0 MASK 255.255.0.0\n");
  perm::FilterExprPtr filter = *set.filterFor(Token::kReadFlowTable);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->leafCount(), 3u);
}

TEST(PermParser, PaperVirtualTopologyExample) {
  auto set = parsePermissions(
      "PERM visible_topology LIMITING \\\n"
      "VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS\n");
  perm::FilterExprPtr filter = *set.filterFor(Token::kVisibleTopology);
  ASSERT_NE(filter, nullptr);
  const auto* vt =
      dynamic_cast<const perm::VirtualTopologyFilter*>(filter->filter().get());
  ASSERT_NE(vt, nullptr);
  EXPECT_TRUE(vt->isSingleBigSwitch());
}

TEST(PermParser, PaperScenario2Manifest) {
  auto set = parsePermissions(
      "PERM visible_topology\n"
      "PERM flow_event\n"
      "PERM send_pkt_out\n"
      "PERM insert_flow LIMITING \\\n"
      "ACTION FORWARD AND OWN_FLOWS\n");
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.has(Token::kVisibleTopology));
  EXPECT_TRUE(set.has(Token::kSendPktOut));
  perm::FilterExprPtr filter = *set.filterFor(Token::kInsertFlow);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->op(), perm::FilterExpr::Op::kAnd);
}

TEST(PermParser, TokenAliasesFromThePaperText) {
  auto set = parsePermissions(
      "PERM network_access\n"
      "PERM send_packet_out\n"
      "PERM read_topology\n");
  EXPECT_TRUE(set.has(Token::kHostNetwork));
  EXPECT_TRUE(set.has(Token::kSendPktOut));
  EXPECT_TRUE(set.has(Token::kVisibleTopology));
}

TEST(PermParser, AppHeaderNamesTheManifest) {
  PermissionManifest manifest =
      parseManifest("APP monitoring\nPERM read_statistics\n");
  EXPECT_EQ(manifest.appName, "monitoring");
  EXPECT_TRUE(manifest.permissions.has(Token::kReadStatistics));
}

TEST(PermParser, UnknownIdentifierInFilterPositionBecomesStub) {
  auto set = parsePermissions("PERM network_access LIMITING AdminRange\n");
  auto stubs = set.collectStubs();
  ASSERT_EQ(stubs.size(), 1u);
  EXPECT_EQ(stubs[0], "AdminRange");
}

TEST(PermParser, PhysicalTopologyFilterWithSwitchAndLinkSets) {
  auto expr = parseFilterExpr("SWITCH {1,2,3} LINK {(1,2),(2,3)}");
  const auto* topo =
      dynamic_cast<const perm::PhysicalTopologyFilter*>(expr->filter().get());
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->switches().size(), 3u);
  EXPECT_EQ(topo->links().size(), 2u);
}

TEST(PermParser, BareSwitchListWithoutBraces) {
  // The paper writes "SWITCH 0,1 LINK ..." without braces in Scenario 1.
  auto expr = parseFilterExpr("SWITCH 0,1 LINK {(0,1)}");
  const auto* topo =
      dynamic_cast<const perm::PhysicalTopologyFilter*>(expr->filter().get());
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->switches().size(), 2u);
}

TEST(PermParser, PriorityTableSizeAndPktOutFilters) {
  auto set = parsePermissions(
      "PERM insert_flow LIMITING MAX_PRIORITY 100 AND MIN_PRIORITY 5 "
      "AND MAX_RULE_COUNT 1000\n"
      "PERM send_pkt_out LIMITING FROM_PKT_IN\n");
  EXPECT_EQ((*set.filterFor(Token::kInsertFlow))->leafCount(), 3u);
  EXPECT_EQ((*set.filterFor(Token::kSendPktOut))->leafCount(), 1u);
}

TEST(PermParser, StatisticsAndCallbackFilters) {
  auto set = parsePermissions(
      "PERM read_statistics LIMITING PORT_LEVEL OR SWITCH_LEVEL\n"
      "PERM pkt_in_event LIMITING EVENT_INTERCEPTION\n");
  EXPECT_TRUE(set.has(Token::kReadStatistics));
  EXPECT_TRUE(set.has(Token::kPktInEvent));
}

TEST(PermParser, ParenthesesAndNotCompose) {
  auto expr = parseFilterExpr(
      "NOT (OWN_FLOWS AND MAX_PRIORITY 10) OR FROM_PKT_IN");
  EXPECT_EQ(expr->op(), perm::FilterExpr::Op::kOr);
  EXPECT_EQ(expr->leafCount(), 3u);
}

TEST(PermParser, OperatorPrecedenceAndBindsTighterThanOr) {
  auto expr = parseFilterExpr("OWN_FLOWS OR ALL_FLOWS AND MAX_PRIORITY 5");
  ASSERT_EQ(expr->op(), perm::FilterExpr::Op::kOr);
  EXPECT_EQ(expr->rhs()->op(), perm::FilterExpr::Op::kAnd);
}

TEST(PermParser, ErrorsCarryUsefulMessages) {
  EXPECT_THROW(parsePermissions("PERM not_a_token\n"), ParseError);
  EXPECT_THROW(parsePermissions("PERM insert_flow LIMITING MAX_PRIORITY\n"),
               ParseError);
  EXPECT_THROW(parsePermissions("insert_flow\n"), ParseError);
  EXPECT_THROW(parseFilterExpr("OWN_FLOWS trailing"), ParseError);
}

TEST(PermParser, MultipleStatementsOfSameTokenJoin) {
  auto set = parsePermissions(
      "PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0\n"
      "PERM insert_flow LIMITING IP_DST 10.2.0.0 MASK 255.255.0.0\n");
  perm::FilterExprPtr filter = *set.filterFor(Token::kInsertFlow);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->op(), perm::FilterExpr::Op::kOr);
}

TEST(PermParser, PrintedManifestReparsesEquivalently) {
  const char* sources[] = {
      "PERM read_flow_table LIMITING OWN_FLOWS OR IP_DST 10.13.0.0 MASK "
      "255.255.0.0\n",
      "PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\n"
      "PERM send_pkt_out LIMITING FROM_PKT_IN\n",
      "PERM visible_topology LIMITING SWITCH {1,2} LINK {(1,2)}\n"
      "PERM read_statistics LIMITING PORT_LEVEL\n",
      "PERM insert_flow LIMITING NOT OWN_FLOWS OR MAX_PRIORITY 9\n",
  };
  for (const char* source : sources) {
    auto original = parsePermissions(source);
    auto reparsed = parsePermissions(formatPermissions(original));
    EXPECT_TRUE(original.equivalent(reparsed)) << source;
  }
}

}  // namespace
}  // namespace sdnshield::lang
