// OpenFlow 1.0 wire codec: header framing, per-message round trips,
// wildcard/prefix-mask encoding rules, action codecs and malformed-input
// rejection.
#include "of/wire.h"

#include <gtest/gtest.h>

namespace sdnshield::of::wire {
namespace {

FlowMatch richMatch() {
  FlowMatch match;
  match.inPort = 3;
  match.ethSrc = MacAddress::parse("0a:00:00:00:00:01");
  match.ethDst = MacAddress::parse("0a:00:00:00:00:02");
  match.ethType = 0x0800;
  match.vlanId = 42;
  match.ipSrc = MaskedIpv4{Ipv4Address::parse("10.1.0.0"),
                           Ipv4Address::prefixMask(16)};
  match.ipDst = MaskedIpv4{Ipv4Address::parse("10.2.3.4")};
  match.ipProto = 6;
  match.tpSrc = 1234;
  match.tpDst = 80;
  return match;
}

TEST(WireHeader, VersionTypeLengthXid) {
  Bytes hello = encodeHello(0xdeadbeef);
  ASSERT_EQ(hello.size(), 8u);
  EXPECT_EQ(hello[0], kVersion);
  EXPECT_EQ(messageType(hello), MsgType::kHello);
  EXPECT_EQ(transactionId(hello), 0xdeadbeefu);
  EXPECT_EQ(frameLength(hello), 8u);
}

TEST(WireHeader, FrameLengthNeedsFullMessage) {
  Bytes hello = encodeHello(1);
  Bytes partial(hello.begin(), hello.begin() + 4);
  EXPECT_EQ(frameLength(partial), 0u);
  // Stream with trailing bytes of the next message still frames correctly.
  Bytes stream = hello;
  stream.push_back(0x01);
  EXPECT_EQ(frameLength(stream), 8u);
}

TEST(WireHeader, RejectsWrongVersion) {
  Bytes hello = encodeHello(1);
  hello[0] = 0x04;  // OF 1.3.
  EXPECT_THROW(frameLength(hello), DecodeError);
  EXPECT_THROW(decode(hello), DecodeError);
}

TEST(WireEcho, RoundTripsPayload) {
  Echo echo{true, 7, Bytes{1, 2, 3}};
  Message decoded = decode(encodeEcho(echo));
  const auto& out = std::get<Echo>(decoded);
  EXPECT_TRUE(out.isReply);
  EXPECT_EQ(out.xid, 7u);
  EXPECT_EQ(out.payload, (Bytes{1, 2, 3}));
}

TEST(WireFlowMod, FullRoundTrip) {
  FlowMod mod;
  mod.command = FlowModCommand::kAdd;
  mod.match = richMatch();
  mod.priority = 77;
  mod.cookie = 0x0123456789abcdefULL;
  mod.idleTimeout = 30;
  mod.hardTimeout = 300;
  SetFieldAction rewrite;
  rewrite.field = MatchField::kTpDst;
  rewrite.intValue = 8080;
  mod.actions.push_back(rewrite);
  mod.actions.push_back(OutputAction{9});

  Bytes wireBytes = encodeFlowMod(mod, 5);
  EXPECT_EQ(messageType(wireBytes), MsgType::kFlowMod);
  FlowMod decoded = std::get<FlowMod>(decode(wireBytes));
  EXPECT_EQ(decoded, mod);
}

TEST(WireFlowMod, AllCommandsRoundTrip) {
  for (FlowModCommand command :
       {FlowModCommand::kAdd, FlowModCommand::kModify,
        FlowModCommand::kModifyStrict, FlowModCommand::kDelete,
        FlowModCommand::kDeleteStrict}) {
    FlowMod mod;
    mod.command = command;
    mod.match.tpDst = 80;
    FlowMod decoded = std::get<FlowMod>(decode(encodeFlowMod(mod)));
    EXPECT_EQ(decoded.command, command);
  }
}

TEST(WireFlowMod, WildcardAllMatchRoundTrips) {
  FlowMod mod;
  mod.actions.push_back(OutputAction{1});
  FlowMod decoded = std::get<FlowMod>(decode(encodeFlowMod(mod)));
  EXPECT_TRUE(decoded.match.isWildcardAll());
}

TEST(WireFlowMod, AllSetFieldActionsRoundTrip) {
  FlowMod mod;
  mod.match.tpDst = 1;
  SetFieldAction setMac;
  setMac.field = MatchField::kEthDst;
  setMac.macValue = MacAddress::parse("0a:0b:0c:0d:0e:0f");
  SetFieldAction setIp;
  setIp.field = MatchField::kIpSrc;
  setIp.ipValue = Ipv4Address::parse("192.168.1.1");
  SetFieldAction setVlan;
  setVlan.field = MatchField::kVlanId;
  setVlan.intValue = 7;
  mod.actions = {setMac, setIp, setVlan, OutputAction{2}};
  FlowMod decoded = std::get<FlowMod>(decode(encodeFlowMod(mod)));
  EXPECT_EQ(decoded.actions, mod.actions);
}

TEST(WireFlowMod, DropIsEmptyActionList) {
  FlowMod mod;
  mod.match.tpDst = 23;
  mod.actions.push_back(DropAction{});
  FlowMod decoded = std::get<FlowMod>(decode(encodeFlowMod(mod)));
  EXPECT_TRUE(decoded.actions.empty());
  EXPECT_TRUE(isDrop(decoded.actions));
}

TEST(WireMatch, NonPrefixMaskIsRejected) {
  FlowMod mod;
  mod.match.ipDst = MaskedIpv4{Ipv4Address::parse("10.0.0.0"),
                               Ipv4Address::parse("255.0.255.0")};
  EXPECT_FALSE(isEncodable(mod.match));
  EXPECT_THROW(encodeFlowMod(mod), EncodeError);
  mod.match.ipDst = MaskedIpv4{Ipv4Address::parse("10.0.0.0"),
                               Ipv4Address::prefixMask(12)};
  EXPECT_TRUE(isEncodable(mod.match));
  EXPECT_NO_THROW(encodeFlowMod(mod));
}

TEST(WireMatch, UnsupportedSetFieldIsRejected) {
  FlowMod mod;
  SetFieldAction setEthType;
  setEthType.field = MatchField::kEthType;
  mod.actions.push_back(setEthType);
  EXPECT_THROW(encodeFlowMod(mod), EncodeError);
}

TEST(WirePacketIn, RoundTripsPacketAndMetadata) {
  PacketIn packetIn;
  packetIn.bufferId = 99;
  packetIn.inPort = 4;
  packetIn.reason = PacketInReason::kAction;
  packetIn.packet = Packet::makeTcp(
      MacAddress::fromUint64(1), MacAddress::fromUint64(2),
      Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 40000, 80,
      tcpflags::kSyn, Bytes{'h', 'i'});
  PacketIn decoded = std::get<PacketIn>(decode(encodePacketIn(packetIn, 3)));
  EXPECT_EQ(decoded.bufferId, 99u);
  EXPECT_EQ(decoded.inPort, 4u);
  EXPECT_EQ(decoded.reason, PacketInReason::kAction);
  EXPECT_EQ(decoded.packet, packetIn.packet);
}

TEST(WirePacketOut, RoundTripsActionsAndPayload) {
  PacketOut packetOut;
  packetOut.inPort = ports::kNone;
  packetOut.actions.push_back(OutputAction{ports::kFlood});
  packetOut.packet = Packet::makeArpRequest(MacAddress::fromUint64(1),
                                            Ipv4Address(10, 0, 0, 1),
                                            Ipv4Address(10, 0, 0, 2));
  PacketOut decoded =
      std::get<PacketOut>(decode(encodePacketOut(packetOut, 11)));
  EXPECT_EQ(decoded.inPort, ports::kNone);
  EXPECT_EQ(decoded.actions, packetOut.actions);
  EXPECT_EQ(decoded.packet, packetOut.packet);
}

TEST(WireFlowRemoved, RoundTripsIdentityFields) {
  FlowRemoved removed;
  removed.match = richMatch();
  removed.priority = 55;
  removed.cookie = 1234;
  FlowRemoved decoded =
      std::get<FlowRemoved>(decode(encodeFlowRemoved(removed)));
  EXPECT_EQ(decoded.match, removed.match);
  EXPECT_EQ(decoded.priority, 55);
  EXPECT_EQ(decoded.cookie, 1234u);
}

TEST(WireError, AllErrorTypesRoundTrip) {
  for (ErrorType type : {ErrorType::kBadRequest, ErrorType::kBadAction,
                         ErrorType::kBadMatch, ErrorType::kTableFull,
                         ErrorType::kPermError}) {
    ErrorMsg error;
    error.type = type;
    error.detail = "details here";
    ErrorMsg decoded = std::get<ErrorMsg>(decode(encodeError(error)));
    EXPECT_EQ(decoded.type, type);
    EXPECT_EQ(decoded.detail, "details here");
  }
}

TEST(WireStats, FlowRequestAndReplyRoundTrip) {
  StatsRequest request;
  request.level = StatsLevel::kFlow;
  request.match.tpDst = 80;
  StatsRequest decodedRequest =
      std::get<StatsRequest>(decode(encodeStatsRequest(request)));
  EXPECT_EQ(decodedRequest.level, StatsLevel::kFlow);
  EXPECT_EQ(decodedRequest.match.tpDst, 80);

  StatsReply reply;
  reply.level = StatsLevel::kFlow;
  reply.flows.push_back(FlowStatsEntry{richMatch(), 7, 100, 6400, 42});
  reply.flows.push_back(FlowStatsEntry{FlowMatch{}, 8, 1, 64, 43});
  StatsReply decodedReply =
      std::get<StatsReply>(decode(encodeStatsReply(reply)));
  ASSERT_EQ(decodedReply.flows.size(), 2u);
  EXPECT_EQ(decodedReply.flows[0].match, richMatch());
  EXPECT_EQ(decodedReply.flows[0].packetCount, 100u);
  EXPECT_EQ(decodedReply.flows[1].cookie, 43u);
}

TEST(WireStats, PortReplyRoundTripsCounters) {
  StatsReply reply;
  reply.level = StatsLevel::kPort;
  reply.ports.push_back(PortStats{1, 10, 20, 1000, 2000});
  reply.ports.push_back(PortStats{2, 1, 2, 3, 4});
  StatsReply decoded = std::get<StatsReply>(decode(encodeStatsReply(reply)));
  ASSERT_EQ(decoded.ports.size(), 2u);
  EXPECT_EQ(decoded.ports[0].rxPackets, 10u);
  EXPECT_EQ(decoded.ports[1].txBytes, 4u);
}

TEST(WireStats, TableReplyCarriesSwitchStats) {
  StatsReply reply;
  reply.level = StatsLevel::kSwitch;
  reply.switchStats = SwitchStats{0, 12, 3456, 3000};
  StatsReply decoded = std::get<StatsReply>(decode(encodeStatsReply(reply)));
  EXPECT_EQ(decoded.switchStats.activeFlows, 12u);
  EXPECT_EQ(decoded.switchStats.lookupCount, 3456u);
  EXPECT_EQ(decoded.switchStats.matchedCount, 3000u);
}

TEST(WireDecode, RejectsMalformedInput) {
  EXPECT_THROW(decode(Bytes{0x01, 0x00}), DecodeError);  // Truncated header.
  Bytes hello = encodeHello(1);
  hello[2] = 0;
  hello[3] = 20;  // Header claims more bytes than present.
  EXPECT_THROW(decode(hello), DecodeError);
  // Unknown message type.
  Bytes unknown = encodeHello(1);
  unknown[1] = 99;
  EXPECT_THROW(decode(unknown), DecodeError);
  // Flow-mod body cut short.
  FlowMod mod;
  mod.actions.push_back(OutputAction{1});
  Bytes wireBytes = encodeFlowMod(mod);
  Bytes truncated(wireBytes.begin(), wireBytes.begin() + 20);
  truncated[2] = 0;
  truncated[3] = 20;
  EXPECT_THROW(decode(truncated), DecodeError);
}

TEST(WireDecode, RejectsBadActionLengths) {
  FlowMod mod;
  mod.match.tpDst = 80;
  mod.actions.push_back(OutputAction{1});
  Bytes wireBytes = encodeFlowMod(mod);
  // Corrupt the action length field (last action starts 8 bytes from end).
  wireBytes[wireBytes.size() - 6] = 0;
  wireBytes[wireBytes.size() - 5] = 3;  // len 3 < 8.
  EXPECT_THROW(decode(wireBytes), DecodeError);
}

TEST(WireEncode, GenericEncodeDispatches) {
  Message messages[] = {
      Hello{1},
      Echo{false, 2, {}},
      FeaturesRequest{3},
      FeaturesReply{4, 0x1122334455667788ULL, 256, 1},
      FlowMod{},
      ErrorMsg{0, ErrorType::kPermError, "no"},
  };
  for (const Message& message : messages) {
    Bytes wireBytes = encode(message, 9);
    EXPECT_GE(wireBytes.size(), 8u);
    EXPECT_NO_THROW(decode(wireBytes));
  }
}

TEST(WireFeatures, RequestIsHeaderOnly) {
  Bytes wireBytes = encodeFeaturesRequest(0x31337);
  ASSERT_EQ(wireBytes.size(), 8u);
  EXPECT_EQ(messageType(wireBytes), MsgType::kFeaturesRequest);
  EXPECT_EQ(transactionId(wireBytes), 0x31337u);
  auto request = std::get<FeaturesRequest>(decode(wireBytes));
  EXPECT_EQ(request.xid, 0x31337u);
}

TEST(WireFeatures, ReplyCarriesDatapathIdentity) {
  FeaturesReply reply;
  reply.xid = 7;
  reply.dpid = 0x00a0b0c0d0e0f001ULL;
  reply.bufferCount = 64;
  reply.tableCount = 2;
  Bytes wireBytes = encodeFeaturesReply(reply);
  // ofp_switch_features with zero ports: 8 header + 24 body.
  ASSERT_EQ(wireBytes.size(), 32u);
  auto decoded = std::get<FeaturesReply>(decode(wireBytes));
  EXPECT_EQ(decoded.xid, 7u);
  EXPECT_EQ(decoded.dpid, reply.dpid);
  EXPECT_EQ(decoded.bufferCount, 64u);
  EXPECT_EQ(decoded.tableCount, 2);
}

TEST(WireFeatures, TruncatedReplyBodyIsRejected) {
  Bytes wireBytes = encodeFeaturesReply(FeaturesReply{1, 42, 0, 1});
  wireBytes.resize(16);
  wireBytes[2] = 0;
  wireBytes[3] = 16;  // Header length matches the truncated buffer.
  EXPECT_THROW(decode(wireBytes), DecodeError);
}

TEST(WireSpan, SpanDecodeMatchesBytesDecode) {
  // The span overload must read a message embedded mid-buffer without
  // copying it out first — exactly what the socket frontend does against
  // its receive window.
  FlowMod mod;
  mod.match = richMatch();
  mod.priority = 99;
  mod.cookie = 0xc001;
  mod.actions.push_back(OutputAction{4});
  Bytes frame = encodeFlowMod(mod, 0x55);
  Bytes padded;
  padded.insert(padded.end(), 3, 0xee);  // Garbage prefix.
  padded.insert(padded.end(), frame.begin(), frame.end());
  padded.insert(padded.end(), 5, 0xdd);  // Garbage suffix.

  ASSERT_EQ(frameLength(padded.data() + 3, padded.size() - 3), frame.size());
  EXPECT_EQ(messageType(padded.data() + 3, frame.size()), MsgType::kFlowMod);
  EXPECT_EQ(transactionId(padded.data() + 3, frame.size()), 0x55u);
  auto fromSpan = std::get<FlowMod>(decode(padded.data() + 3, frame.size()));
  auto fromBytes = std::get<FlowMod>(decode(frame));
  EXPECT_EQ(fromSpan.toString(), fromBytes.toString());
  EXPECT_EQ(fromSpan.priority, 99u);
  EXPECT_EQ(fromSpan.cookie, 0xc001u);
}

TEST(WireSpan, FrameLengthReportsIncompleteForShortSpan) {
  Bytes frame = encodeHello(1);
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_EQ(frameLength(frame.data(), n), 0u) << "prefix " << n;
  }
  EXPECT_EQ(frameLength(frame.data(), frame.size()), 8u);
}

}  // namespace
}  // namespace sdnshield::of::wire
