// Cross-module integration scenarios: the full pipeline (manifest text →
// reconciliation with distributed templates → shielded deployment → observed
// behaviour) and a concurrency stress over the whole runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/l2_learning.h"
#include "apps/malicious/info_leaker.h"
#include "apps/malicious/route_hijacker.h"
#include "apps/routing.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/reconcile/policy_templates.h"
#include "core/reconcile/reconciler.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace sdnshield {
namespace {

using namespace std::chrono_literals;

const of::Ipv4Address kEvil(203, 0, 113, 66);
const of::Ipv4Address kAdminNet(10, 1, 0, 0);

TEST(TemplatePipeline, BaselineProfileContainsTheLeakerEndToEnd) {
  // Manifest text -> template reconciliation -> shielded runtime -> attack.
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(2);
  iso::ShieldRuntime shield(controller);

  auto attacker = std::make_shared<apps::InfoLeakerApp>(kEvil);
  reconcile::Reconciler reconciler(lang::parsePolicy(
      reconcile::templates::baselineProfile("info_leaker", kAdminNet, 16)));
  auto reconciled =
      reconciler.reconcile(lang::parseManifest(attacker->requestedManifest()));
  of::AppId id = shield.loadApp(attacker, reconciled.finalPermissions);

  shield.container(id)->postAndWait([&] { attacker->leak(); });
  EXPECT_TRUE(shield.hostSystem().netMessagesTo(kEvil).empty());
}

TEST(TemplatePipeline, BaselineProfileContainsTheHijackerEndToEnd) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h2 = network.hostByIp(of::Ipv4Address(10, 0, 0, 2));
  auto h3 = network.hostByIp(of::Ipv4Address(10, 0, 0, 3));
  iso::ShieldRuntime shield(controller);

  auto routing = std::make_shared<apps::ShortestPathRoutingApp>();
  shield.loadApp(routing, lang::parsePermissions(routing->requestedManifest()));
  auto attacker =
      std::make_shared<apps::RouteHijackerApp>(h3->ip(), h2->ip());
  reconcile::Reconciler reconciler(lang::parsePolicy(
      reconcile::templates::baselineProfile("route_hijacker", kAdminNet, 16)));
  auto reconciled =
      reconciler.reconcile(lang::parseManifest(attacker->requestedManifest()));
  shield.loadApp(attacker, reconciled.finalPermissions);

  // The legitimate path comes up first...
  h1->send(of::Packet::makeTcp(h1->mac(), h3->mac(), h1->ip(), h3->ip(), 40000,
                               80, of::tcpflags::kSyn));
  ASSERT_TRUE(h3->waitForPackets(1, 2000ms));
  // ...and the template-confined attacker cannot override it (OWN_FLOWS).
  attacker->hijack();
  EXPECT_EQ(attacker->rulesInstalled(), 0u);
  h1->send(of::Packet::makeTcp(h1->mac(), h3->mac(), h1->ip(), h3->ip(), 40001,
                               80, of::tcpflags::kSyn));
  ASSERT_TRUE(h3->waitForPackets(2, 2000ms));
  EXPECT_EQ(h2->receivedCount(), 0u);
}

TEST(TemplatePipeline, BaselineProfileKeepsL2Functional) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h2 = network.addHost(1, 5, of::MacAddress::fromUint64(0xBB),
                            of::Ipv4Address(10, 0, 0, 99));
  iso::ShieldRuntime shield(controller);

  auto app = std::make_shared<apps::L2LearningSwitch>();
  reconcile::Reconciler reconciler(lang::parsePolicy(
      reconcile::templates::baselineProfile("l2_learning", kAdminNet, 16)));
  auto reconciled =
      reconciler.reconcile(lang::parseManifest(app->requestedManifest()));
  shield.loadApp(app, reconciled.finalPermissions);

  h1->send(of::Packet::makeTcp(h1->mac(), h2->mac(), h1->ip(), h2->ip(), 40000,
                               80, of::tcpflags::kSyn));
  ASSERT_TRUE(h2->waitForPackets(1, 2000ms));
  h2->send(of::Packet::makeTcp(h2->mac(), h1->mac(), h2->ip(), h1->ip(), 80,
                               40000, of::tcpflags::kAck));
  ASSERT_TRUE(h1->waitForPackets(1, 2000ms));
  EXPECT_EQ(app->rulesInstalled(), 1u);
}

// --- concurrency stress ----------------------------------------------------------

/// An app that hammers the mediated API from its event handler.
class StressApp final : public ctrl::App {
 public:
  StressApp(std::string name, std::atomic<std::uint64_t>& ops)
      : name_(std::move(name)), ops_(ops) {}

  std::string name() const override { return name_; }
  std::string requestedManifest() const override {
    return "PERM pkt_in_event\nPERM insert_flow LIMITING MAX_RULE_COUNT 64\n"
           "PERM read_flow_table\nPERM read_statistics\n";
  }
  void init(ctrl::AppContext& context) override {
    context_ = &context;
    context.subscribePacketIn([this](const ctrl::PacketInEvent& event) {
      of::FlowMod mod;
      mod.match.tpDst = static_cast<std::uint16_t>(ops_.load() % 64);
      mod.priority = 10;
      mod.actions.push_back(of::OutputAction{1});
      context_->api().insertFlow(event.packetIn.dpid, mod);
      context_->api().readFlowTable(event.packetIn.dpid);
      of::StatsRequest request;
      request.level = of::StatsLevel::kSwitch;
      request.dpid = event.packetIn.dpid;
      context_->api().readStatistics(request);
      ops_.fetch_add(1, std::memory_order_relaxed);
    });
  }

 private:
  std::string name_;
  std::atomic<std::uint64_t>& ops_;
  ctrl::AppContext* context_ = nullptr;
};

TEST(ConcurrencyStress, ManyAppsManyDriversNoLossNoCrash) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(4);
  iso::ShieldOptions options;
  options.ksdThreads = 4;
  iso::ShieldRuntime shield(controller, options);

  constexpr int kApps = 6;
  constexpr int kDrivers = 4;
  constexpr int kEventsPerDriver = 100;
  std::atomic<std::uint64_t> ops{0};
  for (int i = 0; i < kApps; ++i) {
    auto app = std::make_shared<StressApp>("stress" + std::to_string(i), ops);
    shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));
  }

  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&controller, d] {
      of::PacketIn packetIn;
      packetIn.dpid = static_cast<of::DatapathId>(d % 4 + 1);
      packetIn.inPort = 1;
      packetIn.packet = of::Packet::makeArpRequest(
          of::MacAddress::fromUint64(static_cast<std::uint64_t>(d) + 1),
          of::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(d + 1)),
          of::Ipv4Address(10, 0, 0, 200));
      for (int i = 0; i < kEventsPerDriver; ++i) {
        controller.onPacketIn(packetIn);
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();

  // Every event reaches every app exactly once; wait for the queues to
  // drain with a hard deadline.
  constexpr std::uint64_t kExpected =
      static_cast<std::uint64_t>(kApps) * kDrivers * kEventsPerDriver;
  auto deadline = std::chrono::steady_clock::now() + 30s;
  while (ops.load() < kExpected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ops.load(), kExpected);
  // The audit log saw at least one record per mediated call (3 per event
  // handler invocation, plus subscription checks).
  EXPECT_GE(controller.audit().totalRecorded(), kExpected * 3);
  // The MAX_RULE_COUNT quota held under concurrency: no app exceeds 64
  // rules on any switch.
  for (of::DatapathId dpid : controller.switchIds()) {
    for (int appIndex = 0; appIndex < kApps; ++appIndex) {
      EXPECT_LE(controller.ownership().countFor(
                    static_cast<of::AppId>(appIndex + 1), dpid),
                64u);
    }
  }
}

}  // namespace
}  // namespace sdnshield
