// Simulated switch and network harness: pipeline semantics, flooding,
// packet-in punting, header rewriting, port counters and canned topologies.
#include "switchsim/sim_network.h"

#include <gtest/gtest.h>

namespace sdnshield::sim {
namespace {

of::Packet tcpPacket(of::MacAddress src, of::MacAddress dst,
                     of::Ipv4Address srcIp, of::Ipv4Address dstIp,
                     std::uint16_t dstPort = 80) {
  return of::Packet::makeTcp(src, dst, srcIp, dstIp, 1234, dstPort,
                             of::tcpflags::kSyn);
}

TEST(SimSwitch, MissPuntsPacketInToController) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  std::vector<of::PacketIn> punted;
  controller.addPacketInSubscriber(1, [&](const ctrl::Event& event) {
    punted.push_back(std::get<ctrl::PacketInEvent>(event).packetIn);
  });
  sw->receivePacket(3, tcpPacket(of::MacAddress::fromUint64(1),
                                 of::MacAddress::fromUint64(2),
                                 of::Ipv4Address(10, 0, 0, 1),
                                 of::Ipv4Address(10, 0, 0, 2)));
  ASSERT_EQ(punted.size(), 1u);
  EXPECT_EQ(punted[0].dpid, 1u);
  EXPECT_EQ(punted[0].inPort, 3u);
  EXPECT_EQ(punted[0].reason, of::PacketInReason::kNoMatch);
  EXPECT_EQ(sw->packetInCount(), 1u);
}

TEST(SimSwitch, MatchingRuleForwardsWithoutPuntingAgain) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  auto host = network.addHost(1, 2, of::MacAddress::fromUint64(2),
                              of::Ipv4Address(10, 0, 0, 2));
  of::FlowMod mod;
  mod.match.ethDst = of::MacAddress::fromUint64(2);
  mod.priority = 10;
  mod.actions.push_back(of::OutputAction{2});
  ASSERT_TRUE(sw->applyFlowMod(mod));
  sw->receivePacket(1, tcpPacket(of::MacAddress::fromUint64(1),
                                 of::MacAddress::fromUint64(2),
                                 of::Ipv4Address(10, 0, 0, 1),
                                 of::Ipv4Address(10, 0, 0, 2)));
  EXPECT_EQ(host->receivedCount(), 1u);
  EXPECT_EQ(sw->packetInCount(), 0u);
}

TEST(SimSwitch, FloodReachesAllPortsExceptIngress) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  auto hostA = network.addHost(1, 1, of::MacAddress::fromUint64(0xA),
                               of::Ipv4Address(10, 0, 0, 1));
  auto hostB = network.addHost(1, 2, of::MacAddress::fromUint64(0xB),
                               of::Ipv4Address(10, 0, 0, 2));
  auto hostC = network.addHost(1, 3, of::MacAddress::fromUint64(0xC),
                               of::Ipv4Address(10, 0, 0, 3));
  of::PacketOut out;
  out.dpid = 1;
  out.inPort = 1;
  out.packet = tcpPacket(hostA->mac(), of::MacAddress::fromUint64(0xFF),
                         hostA->ip(), of::Ipv4Address(10, 0, 0, 9));
  out.actions.push_back(of::OutputAction{of::ports::kFlood});
  sw->transmitPacket(out);
  EXPECT_EQ(hostA->receivedCount(), 0u);  // Ingress excluded.
  EXPECT_EQ(hostB->receivedCount(), 1u);
  EXPECT_EQ(hostC->receivedCount(), 1u);
}

TEST(SimSwitch, SetFieldActionsRewriteHeaders) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  auto host = network.addHost(1, 2, of::MacAddress::fromUint64(2),
                              of::Ipv4Address(10, 0, 0, 2));
  of::FlowMod mod;
  mod.match.tpDst = 23;
  mod.priority = 10;
  of::SetFieldAction rewrite;
  rewrite.field = of::MatchField::kTpDst;
  rewrite.intValue = 80;
  mod.actions.push_back(rewrite);
  mod.actions.push_back(of::OutputAction{2});
  sw->applyFlowMod(mod);
  sw->receivePacket(1, tcpPacket(of::MacAddress::fromUint64(1),
                                 of::MacAddress::fromUint64(2),
                                 of::Ipv4Address(10, 0, 0, 1),
                                 of::Ipv4Address(10, 0, 0, 2), 23));
  ASSERT_EQ(host->receivedCount(), 1u);
  EXPECT_EQ(host->received()[0].tcp->dstPort, 80);
}

TEST(SimSwitch, DropRuleSilentlyDiscards) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  auto host = network.addHost(1, 2, of::MacAddress::fromUint64(2),
                              of::Ipv4Address(10, 0, 0, 2));
  of::FlowMod drop;
  drop.match.tpDst = 23;
  drop.priority = 100;
  drop.actions.push_back(of::DropAction{});
  sw->applyFlowMod(drop);
  sw->receivePacket(1, tcpPacket(of::MacAddress::fromUint64(1), host->mac(),
                                 of::Ipv4Address(10, 0, 0, 1), host->ip(), 23));
  EXPECT_EQ(host->receivedCount(), 0u);
  EXPECT_EQ(sw->packetInCount(), 0u);  // Matched, not punted.
}

TEST(SimSwitch, OutputToControllerPuntsWithActionReason) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  std::vector<of::PacketInReason> reasons;
  controller.addPacketInSubscriber(1, [&](const ctrl::Event& event) {
    reasons.push_back(std::get<ctrl::PacketInEvent>(event).packetIn.reason);
  });
  of::FlowMod mod;
  mod.priority = 1;
  mod.actions.push_back(of::OutputAction{of::ports::kController});
  sw->applyFlowMod(mod);
  sw->receivePacket(1, tcpPacket(of::MacAddress::fromUint64(1),
                                 of::MacAddress::fromUint64(2),
                                 of::Ipv4Address(10, 0, 0, 1),
                                 of::Ipv4Address(10, 0, 0, 2)));
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], of::PacketInReason::kAction);
}

TEST(SimSwitch, PortStatsCountRxAndTx) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  network.addHost(1, 2, of::MacAddress::fromUint64(2),
                  of::Ipv4Address(10, 0, 0, 2));
  of::FlowMod mod;
  mod.priority = 1;
  mod.actions.push_back(of::OutputAction{2});
  sw->applyFlowMod(mod);
  sw->receivePacket(1, tcpPacket(of::MacAddress::fromUint64(1),
                                 of::MacAddress::fromUint64(2),
                                 of::Ipv4Address(10, 0, 0, 1),
                                 of::Ipv4Address(10, 0, 0, 2)));
  of::StatsRequest request;
  request.level = of::StatsLevel::kPort;
  request.dpid = 1;
  of::StatsReply reply = sw->localStats(request);
  std::uint64_t rx = 0;
  std::uint64_t tx = 0;
  for (const of::PortStats& port : reply.ports) {
    rx += port.rxPackets;
    tx += port.txPackets;
  }
  EXPECT_EQ(rx, 1u);
  EXPECT_EQ(tx, 1u);
}

TEST(SimSwitch, FlowStatsRespectMatchSelector) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  of::FlowMod a;
  a.match.tpDst = 80;
  a.priority = 10;
  a.actions.push_back(of::OutputAction{1});
  of::FlowMod b;
  b.match.tpDst = 443;
  b.priority = 10;
  b.actions.push_back(of::OutputAction{1});
  sw->applyFlowMod(a);
  sw->applyFlowMod(b);
  of::StatsRequest request;
  request.level = of::StatsLevel::kFlow;
  request.dpid = 1;
  request.match.tpDst = 80;
  EXPECT_EQ(sw->localStats(request).flows.size(), 1u);
  request.match = of::FlowMatch::any();
  EXPECT_EQ(sw->localStats(request).flows.size(), 2u);
}

TEST(SimNetwork, LinkDeliversBetweenSwitches) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  network.addSwitch(1);
  network.addSwitch(2);
  network.link(1, 2, 2, 3);
  auto host = network.addHost(2, 1, of::MacAddress::fromUint64(2),
                              of::Ipv4Address(10, 0, 0, 2));
  // s1: forward everything out the link; s2: deliver to host port 1.
  of::FlowMod all1;
  all1.priority = 1;
  all1.actions.push_back(of::OutputAction{2});
  network.switchAt(1)->applyFlowMod(all1);
  of::FlowMod all2;
  all2.priority = 1;
  all2.actions.push_back(of::OutputAction{1});
  network.switchAt(2)->applyFlowMod(all2);
  network.switchAt(1)->receivePacket(
      1, tcpPacket(of::MacAddress::fromUint64(1), host->mac(),
                   of::Ipv4Address(10, 0, 0, 1), host->ip()));
  EXPECT_EQ(host->receivedCount(), 1u);
}

TEST(SimNetwork, BuildLinearCreatesChainWithHosts) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  network.buildLinear(4);
  net::Topology topo = controller.kernelReadTopology();
  EXPECT_EQ(topo.switchCount(), 4u);
  EXPECT_EQ(topo.links().size(), 3u);
  EXPECT_EQ(topo.hosts().size(), 4u);
  EXPECT_TRUE(topo.shortestPath(1, 4).has_value());
  EXPECT_TRUE(network.hostByIp(of::Ipv4Address(10, 0, 0, 3)) != nullptr);
}

TEST(SimNetwork, BuildTreeCreatesFanout) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  network.buildTree(3, 2);  // 1 + 2 + 4 switches.
  net::Topology topo = controller.kernelReadTopology();
  EXPECT_EQ(topo.switchCount(), 7u);
  EXPECT_EQ(topo.links().size(), 6u);
  EXPECT_EQ(topo.hosts().size(), 4u);  // One per leaf.
  EXPECT_TRUE(topo.shortestPath(4, 7).has_value());
}

TEST(SimSwitch, AdvanceTimeExpiresAndNotifiesController) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  std::vector<ctrl::FlowEvent> removedEvents;
  controller.addFlowSubscriber(1, [&](const ctrl::Event& event) {
    const auto& flow = std::get<ctrl::FlowEvent>(event);
    if (flow.change == ctrl::FlowChange::kRemoved) removedEvents.push_back(flow);
  });

  of::FlowMod mod;
  mod.match.tpDst = 80;
  mod.priority = 10;
  mod.idleTimeout = 30;
  mod.actions.push_back(of::OutputAction{1});
  ASSERT_TRUE(controller.kernelInsertFlow(7, 1, mod).ok());
  ASSERT_EQ(controller.ownership().countFor(7, 1), 1u);

  sw->advanceTime(29);
  EXPECT_TRUE(removedEvents.empty());
  sw->advanceTime(1);
  ASSERT_EQ(removedEvents.size(), 1u);
  EXPECT_EQ(removedEvents[0].issuer, 7u);  // Cookie round-trips as issuer.
  EXPECT_EQ(sw->flowCount(), 0u);
  // Ownership tracking follows the expiry.
  EXPECT_EQ(controller.ownership().countFor(7, 1), 0u);
}

TEST(SimSwitch, InterceptorConsumesBeforeObservers) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  auto sw = network.addSwitch(1);
  int observed = 0;
  bool consumeNext = true;
  controller.addPacketInInterceptor(1, [&](const ctrl::Event&) {
    return consumeNext;
  });
  controller.addPacketInSubscriber(2, [&](const ctrl::Event&) { ++observed; });

  auto packet = tcpPacket(of::MacAddress::fromUint64(1),
                          of::MacAddress::fromUint64(2),
                          of::Ipv4Address(10, 0, 0, 1),
                          of::Ipv4Address(10, 0, 0, 2));
  sw->receivePacket(1, packet);
  EXPECT_EQ(observed, 0);  // Consumed by the interceptor.
  consumeNext = false;
  sw->receivePacket(1, packet);
  EXPECT_EQ(observed, 1);  // Passed through.
}

TEST(SimHost, WaitForPacketsObservesDeliveries) {
  ctrl::Controller controller;
  SimNetwork network(controller);
  network.addSwitch(1);
  auto host = network.addHost(1, 1, of::MacAddress::fromUint64(1),
                              of::Ipv4Address(10, 0, 0, 1));
  EXPECT_FALSE(host->waitForPackets(1, std::chrono::milliseconds(10)));
  host->onDelivered(of::Packet{});
  EXPECT_TRUE(host->waitForPackets(1, std::chrono::milliseconds(10)));
  host->clearReceived();
  EXPECT_EQ(host->receivedCount(), 0u);
}

}  // namespace
}  // namespace sdnshield::sim
