// End-to-end tests of the SDNShield deployment: app loading, API mediation
// through the KSD pool, ownership/provenance enrichment, response
// projection, payload stripping and virtual-topology translation.
#include "isolation/api_proxy.h"

#include <gtest/gtest.h>

#include "core/lang/perm_parser.h"
#include "switchsim/sim_network.h"

namespace sdnshield::iso {
namespace {

using lang::parsePermissions;

/// A scriptable app: runs a user callback at init and keeps the context so
/// tests can issue API calls "as the app" afterwards.
class TestApp final : public ctrl::App {
 public:
  explicit TestApp(std::string name = "test_app") : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  std::string requestedManifest() const override { return ""; }
  void init(ctrl::AppContext& context) override { context_ = &context; }

  ctrl::AppContext& context() { return *context_; }

 private:
  std::string name_;
  ctrl::AppContext* context_ = nullptr;
};

of::FlowMod modTo(const char* ipDst, std::uint16_t priority = 10) {
  of::FlowMod mod;
  mod.match.ethType = 0x0800;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ipDst)};
  mod.priority = priority;
  mod.actions.push_back(of::OutputAction{1});
  return mod;
}

class ShieldRuntimeTest : public ::testing::Test {
 protected:
  ShieldRuntimeTest() : network_(controller_), shield_(controller_) {
    network_.buildLinear(3);
  }

  of::AppId load(std::shared_ptr<TestApp> app, const std::string& perms) {
    return shield_.loadApp(app, parsePermissions(perms));
  }

  ctrl::Controller controller_;
  sim::SimNetwork network_;
  ShieldRuntime shield_;
};

TEST_F(ShieldRuntimeTest, LoadAppRunsInitInsideSandbox) {
  auto app = std::make_shared<TestApp>();
  of::AppId id = load(app, "PERM visible_topology\n");
  EXPECT_GE(id, 1u);
  EXPECT_NE(shield_.container(id), nullptr);
  EXPECT_EQ(app->context().appId(), id);
}

TEST_F(ShieldRuntimeTest, GrantedInsertFlowReachesSwitch) {
  auto app = std::make_shared<TestApp>();
  load(app, "PERM insert_flow\n");
  ctrl::ApiResult result = app->context().api().insertFlow(1, modTo("10.0.0.9"));
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(network_.switchAt(1)->flowCount(), 1u);
}

TEST_F(ShieldRuntimeTest, DeniedInsertFlowNeverReachesSwitch) {
  auto app = std::make_shared<TestApp>();
  load(app, "PERM read_statistics\n");
  ctrl::ApiResult result = app->context().api().insertFlow(1, modTo("10.0.0.9"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ctrl::ApiErrc::kPermissionDenied);
  EXPECT_EQ(network_.switchAt(1)->flowCount(), 0u);
  EXPECT_GE(controller_.audit().deniedCount(), 1u);
}

TEST_F(ShieldRuntimeTest, FilterBoundInsertFlow) {
  auto app = std::make_shared<TestApp>();
  load(app,
       "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.255.255.0 AND "
       "MAX_PRIORITY 50\n");
  EXPECT_TRUE(app->context().api().insertFlow(1, modTo("10.0.0.9", 20)).ok());
  EXPECT_FALSE(app->context().api().insertFlow(1, modTo("10.9.0.9", 20)).ok());
  EXPECT_FALSE(app->context().api().insertFlow(1, modTo("10.0.0.9", 90)).ok());
}

TEST_F(ShieldRuntimeTest, OwnFlowsBlocksOverridingForeignRules) {
  auto firewall = std::make_shared<TestApp>("fw");
  load(firewall, "PERM insert_flow\n");
  auto routing = std::make_shared<TestApp>("routing");
  load(routing, "PERM insert_flow LIMITING OWN_FLOWS\n");

  // The firewall installs a drop rule for TCP:23.
  of::FlowMod fwRule;
  fwRule.match.ipProto = 6;
  fwRule.match.tpDst = 23;
  fwRule.priority = 100;
  fwRule.actions.push_back(of::DropAction{});
  ASSERT_TRUE(firewall->context().api().insertFlow(2, fwRule).ok());

  // The routing app may install non-overlapping rules...
  EXPECT_TRUE(routing->context().api().insertFlow(2, modTo("10.0.0.9", 10)).ok());
  // ...but not shadow the firewall's rule with a higher-priority overlap.
  of::FlowMod shadow;
  shadow.match.tpDst = 23;
  shadow.priority = 120;
  shadow.actions.push_back(of::OutputAction{1});
  EXPECT_FALSE(routing->context().api().insertFlow(2, shadow).ok());
}

TEST_F(ShieldRuntimeTest, TableSizeFilterCapsInstalledRules) {
  auto app = std::make_shared<TestApp>();
  load(app, "PERM insert_flow LIMITING MAX_RULE_COUNT 2\n");
  EXPECT_TRUE(app->context().api().insertFlow(1, modTo("10.0.0.1")).ok());
  EXPECT_TRUE(app->context().api().insertFlow(1, modTo("10.0.0.2")).ok());
  EXPECT_FALSE(app->context().api().insertFlow(1, modTo("10.0.0.3")).ok());
  // Other switches have their own budget.
  EXPECT_TRUE(app->context().api().insertFlow(2, modTo("10.0.0.3")).ok());
}

TEST_F(ShieldRuntimeTest, ModifyFlowRequiresOwnershipUnderOwnFlows) {
  auto owner = std::make_shared<TestApp>("owner");
  load(owner, "PERM insert_flow\n");
  auto other = std::make_shared<TestApp>("other");
  load(other, "PERM insert_flow LIMITING OWN_FLOWS\n");
  ASSERT_TRUE(owner->context().api().insertFlow(1, modTo("10.0.0.9")).ok());

  of::FlowMod rewrite = modTo("10.0.0.9");
  rewrite.command = of::FlowModCommand::kModifyStrict;
  rewrite.actions = {of::OutputAction{3}};
  // `other` may not rewrite the owner's rule...
  EXPECT_FALSE(other->context().api().insertFlow(1, rewrite).ok());
  // ...but may modify rules it owns itself.
  ASSERT_TRUE(other->context().api().insertFlow(1, modTo("10.0.0.7", 20)).ok());
  of::FlowMod own = modTo("10.0.0.7", 20);
  own.command = of::FlowModCommand::kModifyStrict;
  own.actions = {of::OutputAction{3}};
  EXPECT_TRUE(other->context().api().insertFlow(1, own).ok());
}

TEST_F(ShieldRuntimeTest, SubsetBigSwitchOnlySpansItsMembers) {
  auto app = std::make_shared<TestApp>();
  load(app,
       "PERM visible_topology LIMITING VIRTUAL {1,2}\n"
       "PERM insert_flow\n");
  auto view = app->context().api().readTopology();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().switchCount(), 1u);
  // Only the hosts attached inside the member subset are visible.
  EXPECT_EQ(view.value().hosts().size(), 2u);
  EXPECT_FALSE(view.value().hostByIp(of::Ipv4Address(10, 0, 0, 3)).has_value());
}

TEST_F(ShieldRuntimeTest, DeleteFlowRequiresOwnershipUnderOwnFlows) {
  auto owner = std::make_shared<TestApp>("owner");
  load(owner, "PERM insert_flow\nPERM delete_flow\n");
  auto other = std::make_shared<TestApp>("other");
  load(other, "PERM delete_flow LIMITING OWN_FLOWS\n");
  ASSERT_TRUE(owner->context().api().insertFlow(1, modTo("10.0.0.9")).ok());
  // `other` cannot delete the owner's rule...
  EXPECT_FALSE(
      other->context().api().deleteFlow(1, modTo("10.0.0.9").match, true, 10).ok());
  // ...while the owner can.
  EXPECT_TRUE(
      owner->context().api().deleteFlow(1, modTo("10.0.0.9").match, true, 10).ok());
}

TEST_F(ShieldRuntimeTest, ReadFlowTableProjectsVisibleEntries) {
  auto writer = std::make_shared<TestApp>("writer");
  load(writer, "PERM insert_flow\n");
  ASSERT_TRUE(writer->context().api().insertFlow(1, modTo("10.13.0.1")).ok());
  ASSERT_TRUE(writer->context().api().insertFlow(1, modTo("10.14.0.1", 20)).ok());

  auto reader = std::make_shared<TestApp>("reader");
  load(reader,
       "PERM read_flow_table LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0\n");
  auto response = reader->context().api().readFlowTable(1);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().size(), 1u);  // Only the 10.13/16 entry visible.
  EXPECT_TRUE(response.value()[0].match.ipDst->matches(
      of::Ipv4Address(10, 13, 0, 1)));

  auto blind = std::make_shared<TestApp>("blind");
  load(blind, "PERM read_statistics\n");
  EXPECT_FALSE(blind->context().api().readFlowTable(1).ok());
}

TEST_F(ShieldRuntimeTest, OwnFlowsReadProjection) {
  auto a = std::make_shared<TestApp>("a");
  load(a, "PERM insert_flow\nPERM read_flow_table LIMITING OWN_FLOWS\n");
  auto b = std::make_shared<TestApp>("b");
  load(b, "PERM insert_flow\n");
  ASSERT_TRUE(a->context().api().insertFlow(1, modTo("10.0.0.1")).ok());
  ASSERT_TRUE(b->context().api().insertFlow(1, modTo("10.0.0.2", 20)).ok());
  auto response = a->context().api().readFlowTable(1);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().size(), 1u);
  EXPECT_EQ(response.value()[0].priority, 10);
}

TEST_F(ShieldRuntimeTest, TopologyProjectionRestrictsView) {
  auto app = std::make_shared<TestApp>();
  load(app,
       "PERM visible_topology LIMITING SWITCH {1,2} LINK {(1,2)}\n");
  auto response = app->context().api().readTopology();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().switchCount(), 2u);
  EXPECT_TRUE(response.value().hasLink(1, 2));
  EXPECT_FALSE(response.value().hasSwitch(3));
}

TEST_F(ShieldRuntimeTest, MissingTopologyTokenDeniesRead) {
  auto app = std::make_shared<TestApp>();
  load(app, "PERM read_statistics\n");
  EXPECT_FALSE(app->context().api().readTopology().ok());
}

TEST_F(ShieldRuntimeTest, VirtualTopologyPresentsSingleBigSwitch) {
  auto app = std::make_shared<TestApp>();
  load(app,
       "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH\n"
       "PERM insert_flow\n");
  auto response = app->context().api().readTopology();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().switchCount(), 1u);
  EXPECT_TRUE(response.value().hasSwitch(kVirtualDpid));
  EXPECT_EQ(response.value().hosts().size(), 3u);  // All hosts re-attached.

  // A rule addressed to the big switch expands along physical paths.
  auto host3 = response.value().hostByIp(of::Ipv4Address(10, 0, 0, 3));
  ASSERT_TRUE(host3.has_value());
  of::FlowMod vmod;
  vmod.match.ethType = 0x0800;
  vmod.match.ipDst = of::MaskedIpv4{host3->ip};
  vmod.priority = 30;
  vmod.actions.push_back(of::OutputAction{host3->port});
  ASSERT_TRUE(app->context().api().insertFlow(kVirtualDpid, vmod).ok());
  // Destination-based realisation: every physical switch got a shard.
  EXPECT_EQ(network_.switchAt(1)->flowCount(), 1u);
  EXPECT_EQ(network_.switchAt(2)->flowCount(), 1u);
  EXPECT_EQ(network_.switchAt(3)->flowCount(), 1u);
}

TEST_F(ShieldRuntimeTest, StatsLevelFilterGatesGranularity) {
  auto app = std::make_shared<TestApp>();
  load(app, "PERM read_statistics LIMITING PORT_LEVEL\n");
  of::StatsRequest port;
  port.level = of::StatsLevel::kPort;
  port.dpid = 1;
  EXPECT_TRUE(app->context().api().readStatistics(port).ok());
  of::StatsRequest flow;
  flow.level = of::StatsLevel::kFlow;
  flow.dpid = 1;
  EXPECT_FALSE(app->context().api().readStatistics(flow).ok());
}

TEST_F(ShieldRuntimeTest, VirtualSwitchStatsAggregateMembers) {
  auto writer = std::make_shared<TestApp>("writer");
  load(writer, "PERM insert_flow\n");
  ASSERT_TRUE(writer->context().api().insertFlow(1, modTo("10.0.0.1")).ok());
  ASSERT_TRUE(writer->context().api().insertFlow(2, modTo("10.0.0.2")).ok());

  auto app = std::make_shared<TestApp>();
  load(app,
       "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH\n"
       "PERM read_statistics\n");
  of::StatsRequest request;
  request.level = of::StatsLevel::kSwitch;
  request.dpid = kVirtualDpid;
  auto response = app->context().api().readStatistics(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().switchStats.dpid, kVirtualDpid);
  EXPECT_EQ(response.value().switchStats.activeFlows, 2u);
}

TEST_F(ShieldRuntimeTest, PacketInPayloadStrippedWithoutReadPayload) {
  auto noPayload = std::make_shared<TestApp>("nopayload");
  load(noPayload, "PERM pkt_in_event\n");
  auto withPayload = std::make_shared<TestApp>("payload");
  load(withPayload, "PERM pkt_in_event\nPERM read_payload\n");

  std::promise<std::size_t> strippedSize;
  std::promise<std::size_t> fullSize;
  noPayload->context().subscribePacketIn(
      [&](const ctrl::PacketInEvent& event) {
        strippedSize.set_value(event.packetIn.packet.payload.size());
      });
  withPayload->context().subscribePacketIn(
      [&](const ctrl::PacketInEvent& event) {
        fullSize.set_value(event.packetIn.packet.payload.size());
      });

  of::Packet packet = of::Packet::makeTcp(
      of::MacAddress::fromUint64(1), of::MacAddress::fromUint64(2),
      of::Ipv4Address(10, 0, 0, 1), of::Ipv4Address(10, 0, 0, 2), 1, 80,
      of::tcpflags::kPsh, of::Bytes{'s', 'e', 'c', 'r', 'e', 't'});
  controller_.onPacketIn(of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0,
                                      packet});
  EXPECT_EQ(strippedSize.get_future().get(), 0u);
  EXPECT_EQ(fullSize.get_future().get(), 6u);
}

TEST_F(ShieldRuntimeTest, SubscriptionDeniedWithoutEventToken) {
  auto app = std::make_shared<TestApp>();
  load(app, "PERM read_statistics\n");
  ctrl::ApiResponse<ctrl::SubscriptionId> result =
      app->context().subscribePacketIn([](const ctrl::PacketInEvent&) {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ctrl::ApiErrc::kPermissionDenied);
  // No delivery happens either.
  controller_.onPacketIn(of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0, {}});
}

TEST_F(ShieldRuntimeTest, PacketOutProvenanceIsEstablishedByDeputy) {
  auto app = std::make_shared<TestApp>();
  load(app,
       "PERM pkt_in_event\n"
       "PERM send_pkt_out LIMITING FROM_PKT_IN\n");
  std::promise<of::Packet> delivered;
  app->context().subscribePacketIn([&](const ctrl::PacketInEvent& event) {
    delivered.set_value(event.packetIn.packet);
  });
  of::Packet seen = of::Packet::makeTcp(
      of::MacAddress::fromUint64(1), of::MacAddress::fromUint64(2),
      of::Ipv4Address(10, 0, 0, 1), of::Ipv4Address(10, 0, 0, 2), 1, 80,
      of::tcpflags::kSyn);
  controller_.onPacketIn(of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0,
                                      seen});
  of::Packet received = delivered.get_future().get();

  // Echoing the delivered packet is allowed...
  of::PacketOut echo;
  echo.dpid = 1;
  echo.packet = received;
  echo.fromPacketIn = false;  // App-supplied flag is ignored.
  echo.actions.push_back(of::OutputAction{1});
  EXPECT_TRUE(app->context().api().sendPacketOut(echo).ok());

  // ...but a fabricated packet is not, even if the app lies about it.
  of::PacketOut forged;
  forged.dpid = 1;
  forged.packet = of::Packet::makeTcp(
      of::MacAddress::fromUint64(9), of::MacAddress::fromUint64(2),
      of::Ipv4Address(10, 0, 0, 9), of::Ipv4Address(10, 0, 0, 2), 1, 80,
      of::tcpflags::kRst);
  forged.fromPacketIn = true;  // Lie.
  forged.actions.push_back(of::OutputAction{1});
  EXPECT_FALSE(app->context().api().sendPacketOut(forged).ok());
}

TEST_F(ShieldRuntimeTest, FlowEventsFilteredPerEvent) {
  auto watcher = std::make_shared<TestApp>("watcher");
  load(watcher,
       "PERM flow_event LIMITING OWN_FLOWS\nPERM insert_flow\n");
  auto other = std::make_shared<TestApp>("other");
  load(other, "PERM insert_flow\n");

  std::mutex mutex;
  std::vector<of::AppId> issuers;
  watcher->context().subscribeFlowEvents([&](const ctrl::FlowEvent& event) {
    std::lock_guard lock(mutex);
    issuers.push_back(event.issuer);
  });
  ASSERT_TRUE(other->context().api().insertFlow(1, modTo("10.0.0.8", 20)).ok());
  ASSERT_TRUE(watcher->context().api().insertFlow(1, modTo("10.0.0.9")).ok());
  // Drain the watcher's event queue.
  shield_.container(watcher->context().appId())->postAndWait([] {});
  std::lock_guard lock(mutex);
  ASSERT_EQ(issuers.size(), 1u);
  EXPECT_EQ(issuers[0], watcher->context().appId());
}

TEST_F(ShieldRuntimeTest, TransactionsRollBackOnDenial) {
  auto app = std::make_shared<TestApp>();
  load(app,
       "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0\n");
  std::vector<std::pair<of::DatapathId, of::FlowMod>> mods{
      {1, modTo("10.0.0.1")},
      {2, modTo("99.0.0.1")},  // Violates the filter.
  };
  ctrl::ApiResult result = app->context().api().commitFlowTransaction(mods);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(network_.switchAt(1)->flowCount(), 0u);
  EXPECT_EQ(network_.switchAt(2)->flowCount(), 0u);

  mods[1].second = modTo("10.0.0.2");
  EXPECT_TRUE(app->context().api().commitFlowTransaction(mods).ok());
  EXPECT_EQ(network_.switchAt(1)->flowCount(), 1u);
  EXPECT_EQ(network_.switchAt(2)->flowCount(), 1u);
}

TEST_F(ShieldRuntimeTest, PublishDataGatedByModifyTopology) {
  auto publisher = std::make_shared<TestApp>("pub");
  load(publisher, "PERM modify_topology\n");
  auto silenced = std::make_shared<TestApp>("nopub");
  load(silenced, "PERM read_statistics\n");
  EXPECT_TRUE(publisher->context().api().publishData("t", "x").ok());
  EXPECT_FALSE(silenced->context().api().publishData("t", "x").ok());
}

TEST_F(ShieldRuntimeTest, HostServicesRouteThroughReferenceMonitor) {
  auto app = std::make_shared<TestApp>();
  of::AppId id = load(app,
                      "PERM network_access LIMITING IP_DST 10.1.0.0 MASK "
                      "255.255.0.0\n");
  // Host calls must carry the app identity, so run them on the app's thread.
  shield_.container(id)->postAndWait([&] {
    EXPECT_TRUE(
        app->context().host().netSend(of::Ipv4Address(10, 1, 1, 1), 80, "ok"));
    EXPECT_FALSE(app->context().host().netSend(
        of::Ipv4Address(203, 0, 113, 66), 4444, "leak"));
  });
  EXPECT_EQ(shield_.hostSystem().netMessages().size(), 1u);
  EXPECT_EQ(shield_.hostSystem().netMessages()[0].app, id);
}

TEST_F(ShieldRuntimeTest, UnloadAppStopsMediationAndDelivery) {
  auto app = std::make_shared<TestApp>();
  of::AppId id = load(app, "PERM insert_flow\n");
  shield_.unloadApp(id);
  EXPECT_EQ(shield_.container(id), nullptr);
  EXPECT_EQ(shield_.engine().compiled(id), nullptr);
}

TEST_F(ShieldRuntimeTest, ManyAppsLoadConcurrentlyDistinctIds) {
  std::vector<of::AppId> ids;
  for (int i = 0; i < 8; ++i) {
    auto app = std::make_shared<TestApp>("app" + std::to_string(i));
    ids.push_back(load(app, "PERM read_statistics\n"));
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST_F(ShieldRuntimeTest, LoadAppCheckedReportsStaticDenials) {
  struct ManifestApp final : public ctrl::App {
    std::string name() const override { return "wants_much"; }
    std::string requestedManifest() const override {
      return "PERM insert_flow\nPERM network_access\n"
             "PERM read_statistics LIMITING PORT_LEVEL\n";
    }
    void init(ctrl::AppContext&) override {}
  };
  auto app = std::make_shared<ManifestApp>();
  // Granted: no network access at all, narrower insert_flow, identical
  // read_statistics.
  auto granted = lang::parsePermissions(
      "PERM insert_flow LIMITING OWN_FLOWS\n"
      "PERM read_statistics LIMITING PORT_LEVEL\n");
  ShieldRuntime::LoadReport report = shield_.loadAppChecked(app, granted);
  EXPECT_FALSE(report.fullyGranted());
  ASSERT_EQ(report.deniedTokens.size(), 1u);
  EXPECT_EQ(report.deniedTokens[0], perm::Token::kHostNetwork);
  ASSERT_EQ(report.narrowedTokens.size(), 1u);
  EXPECT_EQ(report.narrowedTokens[0], perm::Token::kInsertFlow);
  std::string text = report.toString();
  EXPECT_NE(text.find("host_network"), std::string::npos);
  EXPECT_NE(text.find("insert_flow"), std::string::npos);
}

TEST_F(ShieldRuntimeTest, LoadAppCheckedCleanWhenGrantCoversRequest) {
  struct ModestApp final : public ctrl::App {
    std::string name() const override { return "modest"; }
    std::string requestedManifest() const override {
      return "PERM read_statistics LIMITING PORT_LEVEL\n";
    }
    void init(ctrl::AppContext&) override {}
  };
  auto report = shield_.loadAppChecked(
      std::make_shared<ModestApp>(),
      lang::parsePermissions("PERM read_statistics\n"));
  EXPECT_TRUE(report.fullyGranted());
}

TEST_F(ShieldRuntimeTest, VirtualDeleteRemovesAllShards) {
  auto app = std::make_shared<TestApp>();
  load(app,
       "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH\n"
       "PERM insert_flow\nPERM delete_flow\n");
  auto view = app->context().api().readTopology();
  auto host3 = view.value().hostByIp(of::Ipv4Address(10, 0, 0, 3));
  ASSERT_TRUE(host3.has_value());
  of::FlowMod vmod;
  vmod.match.ethType = 0x0800;
  vmod.match.ipDst = of::MaskedIpv4{host3->ip};
  vmod.priority = 30;
  vmod.actions.push_back(of::OutputAction{host3->port});
  ASSERT_TRUE(app->context().api().insertFlow(kVirtualDpid, vmod).ok());
  ASSERT_EQ(network_.switchAt(2)->flowCount(), 1u);

  ASSERT_TRUE(app->context()
                  .api()
                  .deleteFlow(kVirtualDpid, vmod.match, /*strict=*/false, 30)
                  .ok());
  EXPECT_EQ(network_.switchAt(1)->flowCount(), 0u);
  EXPECT_EQ(network_.switchAt(2)->flowCount(), 0u);
  EXPECT_EQ(network_.switchAt(3)->flowCount(), 0u);
}

TEST_F(ShieldRuntimeTest, InterceptionRequiresTheCapability) {
  auto privileged = std::make_shared<TestApp>("ids");
  load(privileged,
       "PERM pkt_in_event LIMITING EVENT_INTERCEPTION\nPERM read_payload\n");
  auto plain = std::make_shared<TestApp>("observer_only");
  load(plain, "PERM pkt_in_event LIMITING MODIFY_EVENT_ORDER\n");

  // The capability-less app cannot register an interceptor.
  EXPECT_FALSE(plain->context()
                   .subscribePacketInInterceptor(
                       [](const ctrl::PacketInEvent&) { return true; })
                   .ok());
  // The privileged one can — and its consume decision gates observers.
  std::atomic<int> observed{0};
  std::promise<void> delivered;
  plain->context().subscribePacketIn([&](const ctrl::PacketInEvent&) {
    observed.fetch_add(1);
    delivered.set_value();
  });
  std::atomic<bool> consume{true};
  ASSERT_TRUE(privileged->context()
                  .subscribePacketInInterceptor(
                      [&](const ctrl::PacketInEvent&) { return consume.load(); })
                  .ok());

  of::PacketIn packetIn{1, 1, of::PacketInReason::kNoMatch, 0,
                        of::Packet::makeArpRequest(
                            of::MacAddress::fromUint64(1),
                            of::Ipv4Address(10, 0, 0, 1),
                            of::Ipv4Address(10, 0, 0, 2))};
  controller_.onPacketIn(packetIn);  // Consumed: observer sees nothing.
  shield_.container(plain->context().appId())->postAndWait([] {});
  EXPECT_EQ(observed.load(), 0);

  consume = false;
  controller_.onPacketIn(packetIn);  // Passed through.
  delivered.get_future().wait();
  EXPECT_EQ(observed.load(), 1);
}

TEST(RecentPacketIns, RemembersBoundedWindow) {
  RecentPacketIns recent(2);
  of::Packet a = of::Packet::makeArpRequest(of::MacAddress::fromUint64(1),
                                            of::Ipv4Address(10, 0, 0, 1),
                                            of::Ipv4Address(10, 0, 0, 2));
  of::Packet b = a;
  b.arp->senderIp = of::Ipv4Address(10, 0, 0, 3);
  of::Packet c = a;
  c.arp->senderIp = of::Ipv4Address(10, 0, 0, 4);
  recent.remember(a);
  recent.remember(b);
  EXPECT_TRUE(recent.seen(a));
  EXPECT_TRUE(recent.seen(b));
  recent.remember(c);  // Evicts a.
  EXPECT_FALSE(recent.seen(a));
  EXPECT_TRUE(recent.seen(b));
  EXPECT_TRUE(recent.seen(c));
}

}  // namespace
}  // namespace sdnshield::iso
