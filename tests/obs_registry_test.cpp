// Observability registry: shard merge across threads, retired-shard
// accounting, histogram bucket math, the global enable switch, tracer rings
// and the text/JSON renderers. The concurrency cases are the ones the CI
// TSan stage (`ctest -L concurrency`) exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace sdnshield;

// The registry is process-global and accumulates across tests, so every
// test uses its own metric names and asserts on deltas, never absolutes.

TEST(ObsRegistryTest, CounterAccumulatesOnOneThread) {
  obs::Counter counter = obs::Registry::global().counter("test.reg.single");
  std::uint64_t before = counter.value();
  counter.increment();
  counter.add(41);
  EXPECT_EQ(counter.value(), before + 42);
}

TEST(ObsRegistryTest, RegistrationIsIdempotentByName) {
  obs::Counter a = obs::Registry::global().counter("test.reg.same");
  obs::Counter b = obs::Registry::global().counter("test.reg.same");
  a.add(3);
  b.add(4);
  // Same name, same slot: both handles address one logical counter.
  EXPECT_EQ(a.value(), b.value());
  EXPECT_GE(a.value(), 7u);
}

TEST(ObsRegistryTest, KindMismatchThrows) {
  obs::Registry::global().counter("test.reg.kind");
  EXPECT_THROW(obs::Registry::global().gauge("test.reg.kind"),
               std::logic_error);
  EXPECT_THROW(obs::Registry::global().histogram("test.reg.kind"),
               std::logic_error);
}

TEST(ObsRegistryTest, ShardMergeAcrossLiveThreads) {
  obs::Counter counter = obs::Registry::global().counter("test.reg.merge");
  std::uint64_t before = counter.value();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Each thread owns its shard (single-writer record path), so nothing is
  // lost; the merged value is exact.
  EXPECT_EQ(counter.value(), before + kThreads * kPerThread);
}

TEST(ObsRegistryTest, RetiredThreadTotalsSurviveInSnapshot) {
  obs::Counter counter = obs::Registry::global().counter("test.reg.retired");
  std::uint64_t before = counter.value();
  std::thread worker([&counter] { counter.add(123); });
  worker.join();
  // The worker's shard was retired (folded) at thread exit; its total must
  // still be visible to both the handle and the snapshot.
  EXPECT_EQ(counter.value(), before + 123);
  obs::Snapshot snap = obs::Registry::global().snapshot();
  const obs::CounterSnapshot* found = snap.findCounter("test.reg.retired");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, before + 123);
}

TEST(ObsRegistryTest, ConcurrentWritersAndSnapshotReaders) {
  obs::Counter counter = obs::Registry::global().counter("test.reg.race");
  obs::Histogram hist = obs::Registry::global().histogram("test.reg.race.ns");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.increment();
        hist.record(100);
      }
    });
  }
  // Snapshot while writers hammer their shards: must be race-free (TSan)
  // and monotone. Bucket and sum are two independent relaxed stores, so a
  // mid-record snapshot may see them slightly out of step — exact
  // reconciliation is only guaranteed at quiescence, checked below.
  std::uint64_t lastCount = 0;
  for (int i = 0; i < 50; ++i) {
    obs::Snapshot snap = obs::Registry::global().snapshot();
    const obs::HistogramSnapshot* h = snap.findHistogram("test.reg.race.ns");
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->count, lastCount);
    lastCount = h->count;
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  obs::Snapshot snap = obs::Registry::global().snapshot();
  const obs::HistogramSnapshot* h = snap.findHistogram("test.reg.race.ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->sum, h->count * 100);
}

TEST(ObsRegistryTest, GaugeDeltasMergeAcrossThreads) {
  obs::Gauge gauge = obs::Registry::global().gauge("test.reg.gauge");
  std::int64_t before = gauge.value();
  // Producer increments on one thread, consumer decrements on another —
  // the queue-depth pattern the delta design exists for.
  std::thread producer([&gauge] {
    for (int i = 0; i < 500; ++i) gauge.add(1);
  });
  producer.join();
  std::thread consumer([&gauge] {
    for (int i = 0; i < 200; ++i) gauge.sub(1);
  });
  consumer.join();
  EXPECT_EQ(gauge.value(), before + 300);
}

TEST(ObsRegistryTest, DisabledRegistryDropsRecords) {
  obs::Counter counter = obs::Registry::global().counter("test.reg.disabled");
  std::uint64_t before = counter.value();
  obs::Registry::setEnabled(false);
  counter.add(1000);
  obs::Registry::setEnabled(true);
  EXPECT_EQ(counter.value(), before);
  counter.add(1);
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(ObsHistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket 0: non-positive. Bucket b (b >= 1): [2^(b-1), 2^b).
  EXPECT_EQ(obs::Histogram::bucketFor(-5), 0u);
  EXPECT_EQ(obs::Histogram::bucketFor(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketFor(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketFor(2), 2u);
  EXPECT_EQ(obs::Histogram::bucketFor(3), 2u);
  EXPECT_EQ(obs::Histogram::bucketFor(4), 3u);
  EXPECT_EQ(obs::Histogram::bucketFor(7), 3u);
  EXPECT_EQ(obs::Histogram::bucketFor(8), 4u);
  EXPECT_EQ(obs::Histogram::bucketFor(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucketFor(1024), 11u);
  // Overflow bucket catches everything >= 2^30 ns.
  EXPECT_EQ(obs::Histogram::bucketFor(1LL << 30), obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::Histogram::bucketFor(1LL << 62), obs::kHistogramBuckets - 1);
}

TEST(ObsHistogramTest, RecordedValuesLandInSnapshotBuckets) {
  obs::Histogram hist = obs::Registry::global().histogram("test.hist.land");
  hist.record(1);     // bucket 1
  hist.record(3);     // bucket 2
  hist.record(3);     // bucket 2
  hist.record(1000);  // bucket 10
  obs::Snapshot snap = obs::Registry::global().snapshot();
  const obs::HistogramSnapshot* h = snap.findHistogram("test.hist.land");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->sum, 1007u);
  EXPECT_EQ(h->buckets[1], 1u);
  EXPECT_EQ(h->buckets[2], 2u);
  EXPECT_EQ(h->buckets[10], 1u);
  EXPECT_DOUBLE_EQ(h->mean(), 1007.0 / 4.0);
  // p50 falls in bucket 2 (upper bound 3ns), p99 in bucket 10 (1023ns).
  EXPECT_EQ(h->percentileNs(0.5), 3u);
  EXPECT_EQ(h->percentileNs(0.99), 1023u);
}

TEST(ObsTracerTest, SpansAppearInRecentSpansInOrder) {
  obs::Tracer& tracer = obs::Tracer::global();
  std::int64_t now = obs::Tracer::nowNs();
  tracer.record("test.span.first", now, 1000);
  tracer.record("test.span.second", now + 1000, 2000);
  std::vector<obs::SpanSnapshot> spans = tracer.recentSpans(1024);
  // Oldest-first ordering by global seq.
  std::size_t first = spans.size(), second = spans.size();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "test.span.first") first = i;
    if (spans[i].name == "test.span.second") second = i;
  }
  ASSERT_LT(first, spans.size());
  ASSERT_LT(second, spans.size());
  EXPECT_LT(first, second);
}

TEST(ObsTracerTest, SpansFromExitedThreadsAreRetained) {
  std::thread worker([] {
    OBS_SPAN("test.span.exited");
  });
  worker.join();
  std::vector<obs::SpanSnapshot> spans =
      obs::Tracer::global().recentSpans(1024);
  bool found = false;
  for (const obs::SpanSnapshot& span : spans) {
    if (span.name == "test.span.exited") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ObsTracerTest, FormatTrailRendersNewestLast) {
  std::vector<obs::SpanSnapshot> spans;
  spans.push_back(obs::SpanSnapshot{"alpha", 0, 1500, 1});
  spans.push_back(obs::SpanSnapshot{"beta", 0, 2000000, 2});
  std::string trail = obs::Tracer::formatTrail(spans);
  EXPECT_NE(trail.find("alpha"), std::string::npos);
  EXPECT_NE(trail.find("beta"), std::string::npos);
  EXPECT_LT(trail.find("alpha"), trail.find("beta"));
  EXPECT_TRUE(obs::Tracer::formatTrail({}).empty());
}

TEST(ObsTracerTest, ConcurrentRecordAndRead) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        OBS_SPAN("test.span.race");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    std::vector<obs::SpanSnapshot> spans =
        obs::Tracer::global().recentSpans(64);
    EXPECT_LE(spans.size(), 64u);
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
}

TEST(ObsExportTest, TextAndJsonCarryRegisteredMetrics) {
  obs::Counter counter = obs::Registry::global().counter("test.export.c");
  obs::Histogram hist = obs::Registry::global().histogram("test.export.h");
  counter.add(5);
  hist.record(100);
  obs::Snapshot snap = obs::Registry::global().snapshot();
  std::string text = obs::renderText(snap);
  EXPECT_NE(text.find("test.export.c"), std::string::npos);
  EXPECT_NE(text.find("test.export.h"), std::string::npos);
  std::string json = obs::renderJson(snap);
  EXPECT_NE(json.find("\"test.export.c\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Minimal structural sanity: balanced braces, starts/ends as an object.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
