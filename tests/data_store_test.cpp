// Model-driven data store (§VIII-B): per-subtree sensitivity annotations,
// mediated reads/writes/lists/subscriptions, longest-prefix resolution,
// kernel bypass and fail-closed behaviour for undeclared nodes.
#include "controller/data_store.h"

#include <gtest/gtest.h>

#include "core/lang/perm_parser.h"

namespace sdnshield::ctrl {
namespace {

using lang::parsePermissions;
using perm::Token;

class DataStoreTest : public ::testing::Test {
 protected:
  DataStoreTest() : store_(&engine_, &audit_) {
    engine_.install(1, parsePermissions("PERM visible_topology\n"
                                        "PERM read_statistics\n"));
    engine_.install(2, parsePermissions("PERM modify_topology\n"
                                        "PERM visible_topology\n"));
    engine_.install(3, parsePermissions("PERM read_statistics\n"));
    // The YANG-extension analogue: annotate subtrees with required tokens.
    store_.defineSensitivity("topology", Token::kVisibleTopology,
                             Token::kModifyTopology);
    store_.defineSensitivity("statistics", Token::kReadStatistics,
                             std::nullopt);
    // Kernel seeds the tree.
    store_.write(of::kKernelAppId, "topology/switches", "1,2,3");
    store_.write(of::kKernelAppId, "statistics/s1", "lookups=10");
  }

  engine::PermissionEngine engine_;
  engine::AuditLog audit_;
  DataStore store_;
};

TEST_F(DataStoreTest, ReadRequiresTheSubtreeReadToken) {
  auto allowed = store_.read(1, "topology/switches");
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(allowed.value(), "1,2,3");
  auto deniedApp = store_.read(3, "topology/switches");  // No topo token.
  EXPECT_FALSE(deniedApp.ok());
  EXPECT_EQ(deniedApp.code(), ApiErrc::kPermissionDenied);
}

TEST_F(DataStoreTest, WriteRequiresTheSubtreeWriteToken) {
  EXPECT_FALSE(store_.write(1, "topology/links", "x").ok());  // Read-only app.
  EXPECT_TRUE(store_.write(2, "topology/links", "(1,2)").ok());
  EXPECT_EQ(store_.read(2, "topology/links").value(), "(1,2)");
}

TEST_F(DataStoreTest, NoWriteTokenMeansSubtreeIsAppWritable) {
  // statistics has no write token declared: any installed app may publish.
  EXPECT_TRUE(store_.write(3, "statistics/s2", "lookups=0").ok());
}

TEST_F(DataStoreTest, UndeclaredSubtreesFailClosedForApps) {
  ASSERT_TRUE(store_.write(of::kKernelAppId, "secrets/key", "hunter2").ok());
  EXPECT_FALSE(store_.read(1, "secrets/key").ok());
  EXPECT_FALSE(store_.write(2, "secrets/key", "x").ok());
  // Kernel is unrestricted.
  EXPECT_TRUE(store_.read(of::kKernelAppId, "secrets/key").ok());
}

TEST_F(DataStoreTest, LongestPrefixAnnotationWins) {
  // A nested, stricter annotation overrides the parent's.
  store_.defineSensitivity("topology/secrets", Token::kProcessRuntime,
                           Token::kProcessRuntime);
  store_.write(of::kKernelAppId, "topology/secrets/inventory", "x");
  EXPECT_TRUE(store_.read(1, "topology/switches").ok());
  EXPECT_FALSE(store_.read(1, "topology/secrets/inventory").ok());
}

TEST_F(DataStoreTest, PrefixMatchingRespectsSegmentBoundaries) {
  store_.defineSensitivity("stat", Token::kProcessRuntime,
                           Token::kProcessRuntime);
  // "statistics/s1" is NOT under the "stat" subtree.
  EXPECT_TRUE(store_.read(1, "statistics/s1").ok());
}

TEST_F(DataStoreTest, ListIsMediatedAndScoped) {
  store_.write(of::kKernelAppId, "topology/hosts", "h1");
  auto listing = store_.list(1, "topology");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.value().size(), 2u);
  EXPECT_FALSE(store_.list(3, "topology").ok());
}

TEST_F(DataStoreTest, ReadOfMissingNodeFailsAfterPassingTheCheck) {
  auto missing = store_.read(1, "topology/nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), ApiErrc::kInvalidArgument);
}

TEST_F(DataStoreTest, SubscriptionsAreMediatedAndNotified) {
  std::vector<std::string> seen;
  // App 3 lacks the topology read token: subscription rejected.
  EXPECT_FALSE(store_
                   .subscribe(3, "topology",
                              [&](const std::string&, const std::string&) {})
                   .ok());
  // App 1 may subscribe; it sees subsequent writes under the prefix.
  ASSERT_TRUE(store_
                  .subscribe(1, "topology",
                             [&](const std::string& path, const std::string&) {
                               seen.push_back(path);
                             })
                  .ok());
  store_.write(2, "topology/links", "(1,2)");
  store_.write(of::kKernelAppId, "statistics/s1", "lookups=11");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "topology/links");
}

TEST_F(DataStoreTest, DeniedAccessesAreAudited) {
  store_.read(3, "topology/switches");
  bool sawDenied = false;
  for (const auto& entry : audit_.entriesFor(3)) {
    if (!entry.allowed) sawDenied = true;
  }
  EXPECT_TRUE(sawDenied);
}

TEST(DataStoreBaseline, NullEngineIsPassThrough) {
  DataStore store;  // Monolithic: no mediation.
  EXPECT_TRUE(store.write(42, "anything/goes", "x").ok());
  EXPECT_TRUE(store.read(42, "anything/goes").ok());
  EXPECT_EQ(store.nodeCount(), 1u);
}

}  // namespace
}  // namespace sdnshield::ctrl
