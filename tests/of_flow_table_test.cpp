#include "of/flow_table.h"

#include <gtest/gtest.h>

#include <random>

#include "of/actions.h"

namespace sdnshield::of {
namespace {

FlowMod addRule(std::uint16_t priority, std::optional<std::uint16_t> tpDst,
                PortNo outPort) {
  FlowMod mod;
  mod.command = FlowModCommand::kAdd;
  mod.priority = priority;
  if (tpDst) mod.match.tpDst = *tpDst;
  mod.actions.push_back(OutputAction{outPort});
  return mod;
}

HeaderFields tcpTo(std::uint16_t tpDst) {
  HeaderFields f;
  f.inPort = 1;
  f.ethType = 0x0800;
  f.ipSrc = Ipv4Address::parse("10.0.0.1");
  f.ipDst = Ipv4Address::parse("10.0.0.2");
  f.ipProto = 6;
  f.tpSrc = 1234;
  f.tpDst = tpDst;
  return f;
}

TEST(FlowTable, LookupPrefersHighestPriority) {
  FlowTable table;
  ASSERT_TRUE(table.apply(addRule(10, std::nullopt, 1)));
  ASSERT_TRUE(table.apply(addRule(100, 80, 2)));
  const FlowEntry* hit = table.lookup(tcpTo(80), 64);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 100);
  hit = table.lookup(tcpTo(443), 64);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 10);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  EXPECT_EQ(table.lookup(tcpTo(443), 64), nullptr);
}

TEST(FlowTable, AddReplacesIdenticalMatchAndPriority) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  table.apply(addRule(10, 80, 2));
  EXPECT_EQ(table.size(), 1u);
  const FlowEntry* hit = table.lookup(tcpTo(80), 64);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(std::get<OutputAction>(hit->actions[0]).port, 2u);
}

TEST(FlowTable, AddKeepsDistinctPrioritiesSeparate) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  table.apply(addRule(20, 80, 2));
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlowTable, CountersAccumulatePacketsAndBytes) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  table.lookup(tcpTo(80), 100);
  table.lookup(tcpTo(80), 50);
  const FlowEntry& entry = table.entries()[0];
  EXPECT_EQ(entry.packetCount, 2u);
  EXPECT_EQ(entry.byteCount, 150u);
  TableStats stats = table.stats();
  EXPECT_EQ(stats.lookupCount, 2u);
  EXPECT_EQ(stats.matchedCount, 2u);
}

TEST(FlowTable, PeekDoesNotTouchCounters) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  EXPECT_NE(table.peek(tcpTo(80)), nullptr);
  EXPECT_EQ(table.entries()[0].packetCount, 0u);
  EXPECT_EQ(table.stats().lookupCount, 0u);
}

TEST(FlowTable, NonStrictDeleteRemovesSubsumedEntries) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  table.apply(addRule(20, 443, 2));
  FlowMod del;
  del.command = FlowModCommand::kDelete;
  del.match.tpDst = 80;
  table.apply(del);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.entries()[0].priority, 20);
  // Wildcard delete clears everything.
  FlowMod delAll;
  delAll.command = FlowModCommand::kDelete;
  table.apply(delAll);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, StrictDeleteRequiresExactMatchAndPriority) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  FlowMod del;
  del.command = FlowModCommand::kDeleteStrict;
  del.match.tpDst = 80;
  del.priority = 20;  // Wrong priority: no-op.
  table.apply(del);
  EXPECT_EQ(table.size(), 1u);
  del.priority = 10;
  table.apply(del);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, ModifyRewritesActionsOfOverlappingEntries) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  table.apply(addRule(10, 443, 2));
  FlowMod mod;
  mod.command = FlowModCommand::kModify;
  mod.match.tpDst = 80;
  mod.actions.push_back(OutputAction{9});
  table.apply(mod);
  EXPECT_EQ(std::get<OutputAction>(table.lookup(tcpTo(80), 1)->actions[0]).port,
            9u);
  EXPECT_EQ(std::get<OutputAction>(table.lookup(tcpTo(443), 1)->actions[0]).port,
            2u);
}

TEST(FlowTable, ModifyStrictOnlyTouchesExactEntry) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  table.apply(addRule(20, 80, 2));
  FlowMod mod;
  mod.command = FlowModCommand::kModifyStrict;
  mod.match.tpDst = 80;
  mod.priority = 20;
  mod.actions.push_back(OutputAction{9});
  table.apply(mod);
  auto entries = table.entries();
  EXPECT_EQ(std::get<OutputAction>(entries[0].actions[0]).port, 9u);  // prio 20.
  EXPECT_EQ(std::get<OutputAction>(entries[1].actions[0]).port, 1u);  // prio 10.
}

TEST(FlowTable, CapacityRejectsNewAddsButAllowsReplace) {
  FlowTable table(2);
  EXPECT_TRUE(table.apply(addRule(10, 80, 1)));
  EXPECT_TRUE(table.apply(addRule(10, 443, 1)));
  EXPECT_FALSE(table.apply(addRule(10, 22, 1)));
  EXPECT_TRUE(table.apply(addRule(10, 80, 5)));  // Replacement still fits.
}

TEST(FlowTable, SelectFindsEntriesUnderPattern) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  table.apply(addRule(10, 443, 1));
  FlowMatch pattern;  // Wildcard: selects all.
  EXPECT_EQ(table.select(pattern).size(), 2u);
  pattern.tpDst = 443;
  auto selected = table.select(pattern);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].match.tpDst, 443);
}

TEST(FlowTable, SelectByCookieFiltersOwner) {
  FlowTable table;
  FlowMod mod = addRule(10, 80, 1);
  mod.cookie = 42;
  table.apply(mod);
  mod = addRule(10, 443, 1);
  mod.cookie = 43;
  table.apply(mod);
  EXPECT_EQ(table.selectByCookie(42).size(), 1u);
  EXPECT_EQ(table.selectByCookie(99).size(), 0u);
}

TEST(FlowTable, IdleTimeoutExpiresQuietEntries) {
  FlowTable table;
  FlowMod mod = addRule(10, 80, 1);
  mod.idleTimeout = 5;
  table.apply(mod);
  EXPECT_TRUE(table.tick(4).empty());
  auto expired = table.tick(1);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].match.tpDst, 80);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, TrafficResetsIdleAge) {
  FlowTable table;
  FlowMod mod = addRule(10, 80, 1);
  mod.idleTimeout = 5;
  table.apply(mod);
  table.tick(4);
  table.lookup(tcpTo(80), 64);  // Hit: idle age resets.
  EXPECT_TRUE(table.tick(4).empty());
  EXPECT_EQ(table.tick(1).size(), 1u);
}

TEST(FlowTable, HardTimeoutExpiresRegardlessOfTraffic) {
  FlowTable table;
  FlowMod mod = addRule(10, 80, 1);
  mod.hardTimeout = 5;
  table.apply(mod);
  table.tick(4);
  table.lookup(tcpTo(80), 64);  // Traffic does not help.
  EXPECT_EQ(table.tick(1).size(), 1u);
}

TEST(FlowTable, ZeroTimeoutsNeverExpire) {
  FlowTable table;
  table.apply(addRule(10, 80, 1));
  EXPECT_TRUE(table.tick(100000).empty());
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, ApplyBatchMatchesSequentialApply) {
  // Differential: applyBatch must be observationally identical to applying
  // each mod in order — same per-mod outcomes, same entry order, same
  // lookup behaviour — across random add/duplicate/delete mixes.
  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<FlowMod> mods;
    std::size_t count = 1 + rng() % 24;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint16_t priority = static_cast<std::uint16_t>(rng() % 8);
      std::uint16_t port = static_cast<std::uint16_t>(80 + rng() % 4);
      FlowMod mod = addRule(priority, port, static_cast<PortNo>(1 + rng() % 4));
      if (rng() % 8 == 0) mod.command = FlowModCommand::kDelete;
      mods.push_back(mod);
    }
    FlowTable sequential(/*maxEntries=*/12);
    FlowTable batched(/*maxEntries=*/12);
    std::vector<bool> expected;
    expected.reserve(mods.size());
    for (const FlowMod& mod : mods) expected.push_back(sequential.apply(mod));
    std::vector<bool> got = batched.applyBatch(mods);
    ASSERT_EQ(got, expected) << "round " << round;
    ASSERT_EQ(batched.size(), sequential.size()) << "round " << round;
    for (std::size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched.entries()[i].priority, sequential.entries()[i].priority)
          << "round " << round << " entry " << i;
      EXPECT_EQ(batched.entries()[i].match.toString(),
                sequential.entries()[i].match.toString())
          << "round " << round << " entry " << i;
      EXPECT_EQ(toString(batched.entries()[i].actions),
                toString(sequential.entries()[i].actions))
          << "round " << round << " entry " << i;
    }
  }
}

TEST(FlowTable, ApplyBatchCountsPendingAgainstCapacity) {
  FlowTable table(/*maxEntries=*/2);
  std::vector<FlowMod> mods{addRule(10, 80, 1), addRule(10, 81, 1),
                            addRule(10, 82, 1)};
  std::vector<bool> results = table.applyBatch(mods);
  EXPECT_EQ(results, (std::vector<bool>{true, true, false}));
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlowTable, ApplyBatchDuplicateInRunUpdatesInPlace) {
  FlowTable table;
  FlowMod first = addRule(10, 80, 1);
  FlowMod second = addRule(10, 80, 2);  // Same rule, new action.
  std::vector<bool> results = table.applyBatch({first, second});
  EXPECT_EQ(results, (std::vector<bool>{true, true}));
  ASSERT_EQ(table.size(), 1u);
  const FlowEntry* hit = table.lookup(tcpTo(80), 64);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(std::get<OutputAction>(hit->actions[0]).port, 2u);
}

TEST(FlowTable, EqualPrioritiesKeepInsertionOrderOnLookup) {
  FlowTable table;
  FlowMod first = addRule(10, std::nullopt, 1);
  first.match.ipProto = 6;
  FlowMod second = addRule(10, std::nullopt, 2);
  table.apply(first);
  table.apply(second);
  const FlowEntry* hit = table.lookup(tcpTo(80), 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(std::get<OutputAction>(hit->actions[0]).port, 1u);
}

}  // namespace
}  // namespace sdnshield::of
