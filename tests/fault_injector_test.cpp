// Seeded probabilistic arming and fire-count windows (the chaos campaign's
// storm primitives): the firing pattern must be a pure function of the seed
// and the visit sequence — a campaign scorecard is only replayable if its
// storm is.
#include "isolation/fault_injector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sdnshield::iso {
namespace {

using Fault = FaultInjector::Fault;

/// Runs @p visits eligible visits against @p site and records which fired.
std::vector<bool> firingPattern(std::string_view site, int visits) {
  std::vector<bool> pattern;
  pattern.reserve(visits);
  for (int i = 0; i < visits; ++i) {
    bool fired = false;
    try {
      FaultInjector::instance().inject(site);
    } catch (const FaultInjected&) {
      fired = true;
    }
    pattern.push_back(fired);
  }
  return pattern;
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectorTest, ProbabilisticPatternIsSeedDeterministic) {
  FaultInjector& injector = FaultInjector::instance();
  injector.armProbabilistic("t.prob", Fault::kThrow, 0.5, 42);
  std::vector<bool> first = firingPattern("t.prob", 200);

  injector.reset();
  injector.armProbabilistic("t.prob", Fault::kThrow, 0.5, 42);
  std::vector<bool> second = firingPattern("t.prob", 200);
  EXPECT_EQ(first, second);

  // The pattern actually mixes fired and unfired visits at p=0.5.
  std::size_t fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 50u);
  EXPECT_LT(fires, 150u);
}

TEST_F(FaultInjectorTest, DistinctSeedsProduceDistinctPatterns) {
  FaultInjector& injector = FaultInjector::instance();
  injector.armProbabilistic("t.prob", Fault::kThrow, 0.5, 1);
  std::vector<bool> a = firingPattern("t.prob", 200);
  injector.reset();
  injector.armProbabilistic("t.prob", Fault::kThrow, 0.5, 2);
  std::vector<bool> b = firingPattern("t.prob", 200);
  EXPECT_NE(a, b);
}

TEST_F(FaultInjectorTest, SitesSharingOneSeedSeeIndependentStreams) {
  // One campaign seed arms many sites; the site name is mixed into the
  // stream so they must not fire in lockstep.
  FaultInjector& injector = FaultInjector::instance();
  injector.armProbabilistic("t.site_a", Fault::kThrow, 0.5, 7);
  injector.armProbabilistic("t.site_b", Fault::kThrow, 0.5, 7);
  EXPECT_NE(firingPattern("t.site_a", 200), firingPattern("t.site_b", 200));
}

TEST_F(FaultInjectorTest, ProbabilityZeroNeverFiresAndOneAlwaysFires) {
  FaultInjector& injector = FaultInjector::instance();
  injector.armProbabilistic("t.never", Fault::kThrow, 0.0, 9);
  for (bool fired : firingPattern("t.never", 50)) EXPECT_FALSE(fired);
  injector.armProbabilistic("t.always", Fault::kThrow, 1.0, 9);
  for (bool fired : firingPattern("t.always", 50)) EXPECT_TRUE(fired);
}

TEST_F(FaultInjectorTest, ProbabilisticRespectsTimesBudget) {
  FaultInjector& injector = FaultInjector::instance();
  injector.armProbabilistic("t.budget", Fault::kThrow, 1.0, 3, /*times=*/4);
  std::size_t fires = 0;
  for (bool fired : firingPattern("t.budget", 50)) fires += fired ? 1 : 0;
  EXPECT_EQ(fires, 4u);
  EXPECT_EQ(injector.fired("t.budget"), 4u);
}

TEST_F(FaultInjectorTest, WindowSkipsThenFiresThenExhausts) {
  FaultInjector& injector = FaultInjector::instance();
  injector.armWindow("t.window", Fault::kThrow, /*skip=*/5, /*times=*/3);
  std::vector<bool> pattern = firingPattern("t.window", 12);
  std::vector<bool> expected = {false, false, false, false, false, true,
                                true,  true,  false, false, false, false};
  EXPECT_EQ(pattern, expected);
}

TEST_F(FaultInjectorTest, WindowQueueFullVariant) {
  FaultInjector& injector = FaultInjector::instance();
  injector.armWindow("t.qf", Fault::kQueueFull, /*skip=*/2, /*times=*/2);
  std::vector<bool> pattern;
  for (int i = 0; i < 6; ++i) {
    pattern.push_back(FaultInjector::instance().injectQueueFull("t.qf"));
  }
  EXPECT_EQ(pattern, (std::vector<bool>{false, false, true, true, false,
                                        false}));
}

TEST_F(FaultInjectorTest, ScopedFaultProbabilisticDisarmsOnExit) {
  {
    ScopedFault scoped("t.scoped", Fault::kThrow, FireProbability{1.0, 11});
    EXPECT_THROW(FaultInjector::instance().inject("t.scoped"), FaultInjected);
  }
  EXPECT_NO_THROW(FaultInjector::instance().inject("t.scoped"));
}

TEST_F(FaultInjectorTest, ScopedFaultWindowDisarmsOnExit) {
  {
    ScopedFault scoped("t.scoped_w", Fault::kThrow, FireWindow{1, -1});
    EXPECT_NO_THROW(FaultInjector::instance().inject("t.scoped_w"));
    EXPECT_THROW(FaultInjector::instance().inject("t.scoped_w"),
                 FaultInjected);
  }
  EXPECT_NO_THROW(FaultInjector::instance().inject("t.scoped_w"));
}

}  // namespace
}  // namespace sdnshield::iso
