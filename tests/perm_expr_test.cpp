#include "core/perm/filter_expr.h"

#include <gtest/gtest.h>

namespace sdnshield::perm {
namespace {

FilterExprPtr ipDstFilter(const char* ip, int bits) {
  return FilterExpr::singleton(FilterPtr{new FieldPredicateFilter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address::parse(ip),
                     of::Ipv4Address::prefixMask(bits)})});
}

FilterExprPtr maxPriority(std::uint16_t bound) {
  return FilterExpr::singleton(FilterPtr{new PriorityFilter(true, bound)});
}

ApiCall call(const char* ipDst, std::uint16_t priority) {
  of::FlowMod mod;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ipDst)};
  mod.priority = priority;
  mod.actions.push_back(of::OutputAction{1});
  return ApiCall::insertFlow(1, 1, mod);
}

TEST(FilterExpr, SingletonEvaluatesUnderlyingFilter) {
  FilterExprPtr expr = ipDstFilter("10.13.0.0", 16);
  EXPECT_TRUE(expr->evaluate(call("10.13.1.1", 5)));
  EXPECT_FALSE(expr->evaluate(call("10.14.1.1", 5)));
  EXPECT_EQ(expr->leafCount(), 1u);
}

TEST(FilterExpr, ConjunctionRequiresBothOperands) {
  FilterExprPtr expr =
      FilterExpr::conj(ipDstFilter("10.13.0.0", 16), maxPriority(100));
  EXPECT_TRUE(expr->evaluate(call("10.13.1.1", 100)));
  EXPECT_FALSE(expr->evaluate(call("10.13.1.1", 101)));
  EXPECT_FALSE(expr->evaluate(call("10.14.1.1", 100)));
  EXPECT_EQ(expr->leafCount(), 2u);
}

TEST(FilterExpr, DisjunctionRequiresEitherOperand) {
  FilterExprPtr expr = FilterExpr::disj(ipDstFilter("10.13.0.0", 16),
                                        ipDstFilter("10.14.0.0", 16));
  EXPECT_TRUE(expr->evaluate(call("10.13.1.1", 5)));
  EXPECT_TRUE(expr->evaluate(call("10.14.1.1", 5)));
  EXPECT_FALSE(expr->evaluate(call("10.15.1.1", 5)));
}

TEST(FilterExpr, NegationInverts) {
  FilterExprPtr expr = FilterExpr::negate(ipDstFilter("10.13.0.0", 16));
  EXPECT_FALSE(expr->evaluate(call("10.13.1.1", 5)));
  EXPECT_TRUE(expr->evaluate(call("10.14.1.1", 5)));
}

TEST(FilterExpr, ConstructorsRejectNullOperands) {
  EXPECT_THROW(FilterExpr::singleton(nullptr), std::invalid_argument);
  EXPECT_THROW(FilterExpr::conj(nullptr, maxPriority(1)),
               std::invalid_argument);
  EXPECT_THROW(FilterExpr::negate(nullptr), std::invalid_argument);
}

TEST(FilterExpr, StructuralEqualityComparesShapeAndFilters) {
  FilterExprPtr a =
      FilterExpr::conj(ipDstFilter("10.13.0.0", 16), maxPriority(100));
  FilterExprPtr b =
      FilterExpr::conj(ipDstFilter("10.13.0.0", 16), maxPriority(100));
  FilterExprPtr c =
      FilterExpr::conj(maxPriority(100), ipDstFilter("10.13.0.0", 16));
  EXPECT_TRUE(a->structurallyEquals(*b));
  EXPECT_FALSE(a->structurallyEquals(*c));  // Structural, not semantic.
}

TEST(FilterExpr, CollectStubsFindsAllUnresolvedMacros) {
  FilterExprPtr expr = FilterExpr::conj(
      FilterExpr::singleton(FilterPtr{new StubFilter("AdminRange")}),
      FilterExpr::disj(
          ipDstFilter("10.0.0.0", 8),
          FilterExpr::singleton(FilterPtr{new StubFilter("LocalTopo")})));
  std::vector<std::string> stubs;
  expr->collectStubs(stubs);
  ASSERT_EQ(stubs.size(), 2u);
  EXPECT_EQ(stubs[0], "AdminRange");
  EXPECT_EQ(stubs[1], "LocalTopo");
}

TEST(FilterExpr, SubstituteStubsReplacesBoundMacros) {
  FilterExprPtr expr = FilterExpr::conj(
      FilterExpr::singleton(FilterPtr{new StubFilter("AdminRange")}),
      maxPriority(100));
  std::map<std::string, FilterExprPtr> bindings{
      {"AdminRange", ipDstFilter("10.1.0.0", 16)}};
  FilterExprPtr substituted = FilterExpr::substituteStubs(expr, bindings);
  EXPECT_TRUE(substituted->evaluate(call("10.1.2.3", 50)));
  EXPECT_FALSE(substituted->evaluate(call("10.2.2.3", 50)));
  std::vector<std::string> stubs;
  substituted->collectStubs(stubs);
  EXPECT_TRUE(stubs.empty());
}

TEST(FilterExpr, SubstituteStubsKeepsUnboundMacrosAndSharesSubtrees) {
  FilterExprPtr unchangedBranch = maxPriority(100);
  FilterExprPtr expr = FilterExpr::conj(
      FilterExpr::singleton(FilterPtr{new StubFilter("Missing")}),
      unchangedBranch);
  FilterExprPtr substituted = FilterExpr::substituteStubs(expr, {});
  EXPECT_EQ(substituted, expr);  // Nothing bound: same tree shared.
  std::vector<std::string> stubs;
  substituted->collectStubs(stubs);
  EXPECT_EQ(stubs.size(), 1u);
}

TEST(FilterExpr, UnresolvedStubFailsClosedInEvaluation) {
  FilterExprPtr expr = FilterExpr::disj(
      FilterExpr::singleton(FilterPtr{new StubFilter("Missing")}),
      ipDstFilter("10.13.0.0", 16));
  // The stub contributes false; the disjunction can still pass via the
  // other branch.
  EXPECT_TRUE(expr->evaluate(call("10.13.1.1", 5)));
  EXPECT_FALSE(expr->evaluate(call("10.14.1.1", 5)));
}

TEST(FilterExpr, ToStringShowsOperatorsAndParens) {
  FilterExprPtr expr = FilterExpr::negate(
      FilterExpr::conj(ipDstFilter("10.13.0.0", 16), maxPriority(100)));
  std::string text = expr->toString();
  EXPECT_NE(text.find("NOT"), std::string::npos);
  EXPECT_NE(text.find("AND"), std::string::npos);
  EXPECT_NE(text.find("MAX_PRIORITY 100"), std::string::npos);
}

TEST(FilterExpr, DeepCompositionEvaluates) {
  // OR-chain of 32 disjoint /24 windows: only the last matches.
  FilterExprPtr expr;
  for (int i = 0; i < 32; ++i) {
    std::string prefix = "10.50." + std::to_string(i) + ".0";
    FilterExprPtr clause = ipDstFilter(prefix.c_str(), 24);
    expr = expr ? FilterExpr::disj(expr, clause) : clause;
  }
  EXPECT_EQ(expr->leafCount(), 32u);
  EXPECT_TRUE(expr->evaluate(call("10.50.31.7", 5)));
  EXPECT_FALSE(expr->evaluate(call("10.51.0.7", 5)));
}

}  // namespace
}  // namespace sdnshield::perm
