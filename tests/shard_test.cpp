// The sharded controller substrate (src/shard, DESIGN.md §16):
//
//  * ring/doorbell/router unit coverage (FIFO per producer, full-ring
//    back-pressure, multi-producer stress, deterministic routing);
//  * runtime semantics — call() runs on the owning loop and propagates
//    exceptions, fence() barriers every loop and refuses from a loop;
//  * the shard-local FlowTable mirrors track kernel flow operations;
//  * the engine publish fence barriers every shard on installAll;
//  * the ISSUE acceptance differentials — shards=1 is byte-identical to
//    the pre-shard inline pipeline, and per-switch flow-mod streams are
//    identical across shard counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/l2_learning.h"
#include "controller/controller.h"
#include "core/engine/permission_engine.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "of/wire.h"
#include "shard/ring.h"
#include "shard/router.h"
#include "shard/shard_runtime.h"

namespace sdnshield {
namespace {

namespace wire = of::wire;

// --- ring + doorbell --------------------------------------------------------

TEST(ShardRing, PreservesFifoAndRejectsWhenFull) {
  shard::MpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int value = i;
    EXPECT_TRUE(ring.tryPush(value));
  }
  int overflow = 99;
  EXPECT_FALSE(ring.tryPush(overflow));
  EXPECT_EQ(overflow, 99);  // Failed push must not consume the value.
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.tryPop(out));
}

TEST(ShardRing, MultiProducerStressDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  shard::MpscRing<std::uint64_t> ring(256);
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> seen;
  std::thread consumer([&] {
    std::uint64_t item = 0;
    while (!done.load(std::memory_order_acquire) || ring.sizeApprox() > 0) {
      while (ring.tryPop(item)) seen.push_back(item);
      std::this_thread::yield();
    }
    while (ring.tryPop(item)) seen.push_back(item);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t item =
            (static_cast<std::uint64_t>(p) << 32) | static_cast<std::uint32_t>(i);
        while (!ring.tryPush(item)) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::set<std::uint64_t> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), seen.size());
  // Per-producer FIFO: each producer's items appear in increasing order.
  std::vector<std::int64_t> last(kProducers, -1);
  for (std::uint64_t item : seen) {
    int p = static_cast<int>(item >> 32);
    auto i = static_cast<std::int64_t>(item & 0xffffffffu);
    EXPECT_LT(last[p], i);
    last[p] = i;
  }
}

TEST(ShardDoorbell, WakesAWaiterAndCoalescesRings) {
  shard::Doorbell bell;
  EXPECT_FALSE(bell.wait(std::chrono::milliseconds(1)));
  bell.ring();
  bell.ring();  // Coalesced into the same pending wakeup.
  EXPECT_TRUE(bell.wait(std::chrono::milliseconds(100)));
  EXPECT_FALSE(bell.wait(std::chrono::milliseconds(1)));  // Drained.
}

// --- router -----------------------------------------------------------------

TEST(ShardRouter, IsDeterministicCoversAllShardsAndMapsEverythingToShard0) {
  shard::Router router4(4);
  std::set<std::size_t> used;
  for (of::DatapathId dpid = 1; dpid <= 256; ++dpid) {
    std::size_t s = router4.shardOf(dpid);
    EXPECT_EQ(s, router4.shardOf(dpid));  // Stable.
    EXPECT_LT(s, 4u);
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 4u) << "dense dpids must spread over every shard";

  shard::Router router1(1);
  for (of::DatapathId dpid = 1; dpid <= 64; ++dpid) {
    EXPECT_EQ(router1.shardOf(dpid), 0u);
    EXPECT_EQ(router1.shardOfApp(dpid), 0u);
  }
  // A fresh instance maps identically (process-stable constants).
  shard::Router again(4);
  for (of::DatapathId dpid = 1; dpid <= 64; ++dpid) {
    EXPECT_EQ(again.shardOf(dpid), router4.shardOf(dpid));
  }
}

// --- runtime semantics ------------------------------------------------------

TEST(ShardRuntime, CallRunsOnOwningLoopAndPropagatesExceptions) {
  shard::ShardOptions options;
  options.shards = 3;
  shard::ShardRuntime runtime(options);
  runtime.start();
  EXPECT_TRUE(runtime.running());
  EXPECT_EQ(runtime.shardCount(), 3u);

  for (std::size_t s = 0; s < 3; ++s) {
    std::optional<std::size_t> observed;
    runtime.call(s, [&] { observed = runtime.currentShard(); });
    ASSERT_TRUE(observed.has_value());
    EXPECT_EQ(*observed, s);
  }
  EXPECT_FALSE(runtime.currentShard().has_value());

  EXPECT_THROW(
      runtime.call(1, [] { throw std::runtime_error("loop task failed"); }),
      std::runtime_error);

  // Nested call onto the same shard runs inline (no self-deadlock).
  bool nested = false;
  runtime.call(2, [&] { runtime.call(2, [&] { nested = true; }); });
  EXPECT_TRUE(nested);

  shard::ShardStats stats = runtime.stats();
  EXPECT_GE(stats.calls, 5u);
  EXPECT_GE(stats.tasks, 4u);
  runtime.stop();
  EXPECT_FALSE(runtime.running());

  // Stopped: everything degrades to inline execution.
  bool inlineRan = false;
  runtime.call(0, [&] { inlineRan = true; });
  EXPECT_TRUE(inlineRan);
}

TEST(ShardRuntime, FenceBarriersEveryLoopAndRefusesFromALoop) {
  shard::ShardOptions options;
  options.shards = 4;
  shard::ShardRuntime runtime(options);
  runtime.start();

  std::set<std::size_t> visited;
  std::mutex mutex;
  EXPECT_TRUE(runtime.fence([&](std::size_t s) {
    std::lock_guard lock(mutex);
    visited.insert(s);
  }));
  EXPECT_EQ(visited.size(), 4u);

  bool refused = true;
  runtime.call(0, [&] { refused = !runtime.fence({}); });
  EXPECT_TRUE(refused) << "a loop fencing its siblings could deadlock";

  // Fence observes everything posted before it (the mailbox contract).
  std::atomic<int> posted{0};
  for (std::size_t s = 0; s < 4; ++s) {
    runtime.post(s, [&] { posted.fetch_add(1); });
  }
  EXPECT_TRUE(runtime.fence({}));
  EXPECT_EQ(posted.load(), 4);
  runtime.stop();
}

// --- FlowTable mirrors ------------------------------------------------------

/// Minimal southbound peer backed by a real FlowTable, so mirror contents
/// can be differenced against the switch's actual table.
class TableConn final : public ctrl::SwitchConn {
 public:
  ctrl::ApiResult applyFlowMod(const of::FlowMod& mod) override {
    std::lock_guard lock(mutex_);
    if (!table_.apply(mod)) {
      return ctrl::ApiResult::failure(ctrl::ApiErrc::kTableFull,
                                      "table full");
    }
    return ctrl::ApiResult::success();
  }
  ctrl::ApiResult transmitPacket(const of::PacketOut&) override {
    return ctrl::ApiResult::success();
  }
  ctrl::ApiResponse<std::vector<of::FlowEntry>> dumpFlows() const override {
    std::lock_guard lock(mutex_);
    return ctrl::ApiResponse<std::vector<of::FlowEntry>>::success(
        table_.entries());
  }
  ctrl::ApiResponse<of::StatsReply> queryStats(
      const of::StatsRequest&) const override {
    return ctrl::ApiResponse<of::StatsReply>::success({});
  }
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return table_.size();
  }

 private:
  mutable std::mutex mutex_;
  of::FlowTable table_;
};

of::FlowMod addMod(std::uint8_t lastOctet, std::uint16_t priority) {
  of::FlowMod mod;
  mod.match.ipDst =
      of::MaskedIpv4{of::Ipv4Address(10, 0, 0, lastOctet)};
  mod.priority = priority;
  return mod;
}

TEST(ShardRuntime, FlowTableMirrorsTrackKernelFlowOps) {
  shard::ShardOptions options;
  options.shards = 2;
  shard::ShardRuntime runtime(options);
  runtime.start();
  ctrl::Controller controller;
  runtime.attach(controller);

  constexpr of::DatapathId kSwitches = 6;
  std::vector<std::shared_ptr<TableConn>> conns;
  for (of::DatapathId dpid = 1; dpid <= kSwitches; ++dpid) {
    auto conn = std::make_shared<TableConn>();
    ASSERT_TRUE(static_cast<bool>(controller.attachSwitch(
        conn, ctrl::ConnectionInfo{dpid, "sim", "in-process", 0})));
    conns.push_back(conn);
  }
  EXPECT_EQ(runtime.mirroredSwitchCount(), kSwitches);

  for (of::DatapathId dpid = 1; dpid <= kSwitches; ++dpid) {
    ASSERT_TRUE(static_cast<bool>(controller.kernelInsertFlow(
        7, dpid, addMod(static_cast<std::uint8_t>(dpid), 10))));
    std::vector<of::FlowMod> batch{addMod(100, 20), addMod(101, 30)};
    ASSERT_TRUE(
        static_cast<bool>(controller.kernelInsertFlows(7, dpid, batch)));
  }
  EXPECT_EQ(runtime.mirroredFlowCount(), kSwitches * 3);
  for (of::DatapathId dpid = 1; dpid <= kSwitches; ++dpid) {
    EXPECT_EQ(runtime.mirroredFlows(dpid).size(), conns[dpid - 1]->size());
  }

  ASSERT_TRUE(static_cast<bool>(controller.kernelDeleteFlow(
      7, 1, addMod(100, 20).match, /*strict=*/true, 20)));
  EXPECT_EQ(runtime.mirroredFlows(1).size(), conns[0]->size());

  controller.detachSwitch(2);
  EXPECT_EQ(runtime.mirroredSwitchCount(), kSwitches - 1);

  runtime.detach(controller);
  runtime.stop();
}

// --- engine publish fence ---------------------------------------------------

TEST(ShardRuntime, InstallAllEpochPublishFencesEveryShard) {
  shard::ShardOptions options;
  options.shards = 3;
  shard::ShardRuntime runtime(options);
  runtime.start();
  engine::PermissionEngine engine;
  runtime.attachEngine(engine);

  std::uint64_t fencesBefore = runtime.stats().fences;
  std::uint64_t epochBefore = engine.epoch();
  engine.installAll(
      std::vector<std::pair<of::AppId, perm::PermissionSet>>{{42, {}}});
  EXPECT_EQ(engine.epoch(), epochBefore + 1);
  EXPECT_EQ(runtime.stats().fences, fencesBefore + 1)
      << "installAll must barrier every shard loop";

  // After the fence returns, every loop resolves against the new epoch.
  std::vector<std::uint64_t> observed(3, 0);
  runtime.fence([&](std::size_t s) { observed[s] = engine.epoch(); });
  for (std::uint64_t epoch : observed) EXPECT_EQ(epoch, epochBefore + 1);

  runtime.detachEngine(engine);
  std::uint64_t fencesAfterDetach = runtime.stats().fences;
  engine.installAll(
      std::vector<std::pair<of::AppId, perm::PermissionSet>>{{43, {}}});
  EXPECT_EQ(runtime.stats().fences, fencesAfterDetach);
  runtime.stop();
}

// --- differentials (ISSUE acceptance) ---------------------------------------

/// Records the exact bytes the wire would carry for every flow-mod, per
/// switch — the differential currency shared with wire_sim_differential.
class RecordingConn final : public ctrl::SwitchConn {
 public:
  ctrl::ApiResult applyFlowMod(const of::FlowMod& mod) override {
    std::lock_guard lock(mutex_);
    frames_.push_back(wire::encodeFlowMod(mod));
    return ctrl::ApiResult::success();
  }
  ctrl::ApiResult transmitPacket(const of::PacketOut&) override {
    return ctrl::ApiResult::success();
  }
  ctrl::ApiResponse<std::vector<of::FlowEntry>> dumpFlows() const override {
    return ctrl::ApiResponse<std::vector<of::FlowEntry>>::success({});
  }
  ctrl::ApiResponse<of::StatsReply> queryStats(
      const of::StatsRequest&) const override {
    return ctrl::ApiResponse<of::StatsReply>::success({});
  }
  std::vector<of::Bytes> frames() const {
    std::lock_guard lock(mutex_);
    return frames_;
  }
  std::size_t frameCount() const {
    std::lock_guard lock(mutex_);
    return frames_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<of::Bytes> frames_;
};

/// One emulated switch's workload (the cbench shape): two MAC
/// announcements, then identical TCP SYN probes that each provoke one
/// flow-mod from the L2 learning app.
struct Workload {
  of::PacketIn announceTarget;
  of::PacketIn announceProbe;
  of::PacketIn probe;
};

Workload workloadFor(std::size_t index, of::DatapathId firstDpid) {
  std::uint64_t serial = index + 1;
  of::DatapathId dpid = firstDpid + index;
  of::MacAddress targetMac =
      of::MacAddress::fromUint64(0x020000000000ULL + serial);
  of::MacAddress probeMac =
      of::MacAddress::fromUint64(0x040000000000ULL + serial);
  of::Ipv4Address targetIp(10, 0, static_cast<std::uint8_t>(serial >> 8),
                           static_cast<std::uint8_t>(serial & 0xff));
  of::Ipv4Address probeIp(10, 9, static_cast<std::uint8_t>(serial >> 8),
                          static_cast<std::uint8_t>(serial & 0xff));
  Workload w;
  w.announceTarget.dpid = dpid;
  w.announceTarget.inPort = 1;
  w.announceTarget.packet = of::Packet::makeArpRequest(
      targetMac, targetIp, of::Ipv4Address(10, 255, 255, 254));
  w.announceProbe.dpid = dpid;
  w.announceProbe.inPort = 4;
  w.announceProbe.packet = of::Packet::makeArpRequest(
      probeMac, probeIp, of::Ipv4Address(10, 255, 255, 254));
  w.probe.dpid = dpid;
  w.probe.inPort = 4;
  w.probe.reason = of::PacketInReason::kNoMatch;
  w.probe.packet = of::Packet::makeTcp(probeMac, targetMac, probeIp, targetIp,
                                       12345, 80, of::tcpflags::kSyn);
  return w;
}

/// The full shielded stack (controller + ShieldRuntime + L2 app), driven
/// in-process — optionally behind a shard runtime with N loops.
struct Stack {
  std::unique_ptr<shard::ShardRuntime> runtime;
  ctrl::Controller controller;
  iso::ShieldRuntime shield{controller};
  std::vector<std::shared_ptr<RecordingConn>> conns;

  explicit Stack(std::size_t shards) {
    if (shards > 0) {
      shard::ShardOptions options;
      options.shards = shards;
      runtime = std::make_unique<shard::ShardRuntime>(options);
      runtime->start();
      runtime->attach(controller);
      runtime->attachEngine(shield.engine());
    }
    auto app = std::make_shared<apps::L2LearningSwitch>();
    shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));
  }

  ~Stack() {
    shield.shutdown();
    if (runtime) {
      runtime->detachEngine(shield.engine());
      runtime->detach(controller);
      runtime->stop();
    }
  }

  void run(std::size_t connections, std::size_t rounds,
           of::DatapathId firstDpid) {
    for (std::size_t i = 0; i < connections; ++i) {
      auto conn = std::make_shared<RecordingConn>();
      ASSERT_TRUE(static_cast<bool>(controller.attachSwitch(
          conn, ctrl::ConnectionInfo{firstDpid + i, "sim", "in-process", 0})));
      conns.push_back(conn);
    }
    for (std::size_t i = 0; i < connections; ++i) {
      Workload w = workloadFor(i, firstDpid);
      controller.onPacketIn(w.announceTarget);
      controller.onPacketIn(w.announceProbe);
      for (std::size_t round = 0; round < rounds; ++round) {
        controller.onPacketIn(w.probe);
      }
    }
    // The shield posts events to the app thread; wait for every probe's
    // flow-mod to land.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (auto& conn : conns) {
      while (conn->frameCount() < rounds &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      ASSERT_EQ(conn->frameCount(), rounds);
    }
  }
};

void expectIdenticalFrames(Stack& a, Stack& b) {
  ASSERT_EQ(a.conns.size(), b.conns.size());
  for (std::size_t i = 0; i < a.conns.size(); ++i) {
    std::vector<of::Bytes> aFrames = a.conns[i]->frames();
    std::vector<of::Bytes> bFrames = b.conns[i]->frames();
    ASSERT_EQ(aFrames.size(), bFrames.size()) << "connection " << i;
    for (std::size_t f = 0; f < aFrames.size(); ++f) {
      ASSERT_EQ(aFrames[f], bFrames[f])
          << "connection " << i << " frame " << f;
    }
  }
  EXPECT_EQ(a.controller.audit().totalRecorded(),
            b.controller.audit().totalRecorded());
  EXPECT_EQ(a.controller.audit().deniedCount(),
            b.controller.audit().deniedCount());
  EXPECT_EQ(a.controller.dispatchFaultCount(), 0u);
  EXPECT_EQ(b.controller.dispatchFaultCount(), 0u);
}

TEST(ShardDifferential, Shards1IsByteIdenticalToTheUnshardedPipeline) {
  constexpr std::size_t kConnections = 16;
  constexpr std::size_t kRounds = 4;

  Stack unsharded(0);  // No runtime: the pre-shard inline pipeline.
  unsharded.run(kConnections, kRounds, 1);

  Stack sharded(1);
  sharded.run(kConnections, kRounds, 1);

  expectIdenticalFrames(unsharded, sharded);
  // Everything routed: shard 0 ran every dispatch.
  ASSERT_NE(sharded.runtime, nullptr);
  EXPECT_GT(sharded.runtime->stats().calls, 0u);
}

TEST(ShardDifferential, FlowModStreamsAreIdenticalAcrossShardCounts) {
  constexpr std::size_t kConnections = 16;
  constexpr std::size_t kRounds = 4;

  Stack one(1);
  one.run(kConnections, kRounds, 1);

  Stack four(4);
  four.run(kConnections, kRounds, 1);

  expectIdenticalFrames(one, four);
}

}  // namespace
}  // namespace sdnshield
