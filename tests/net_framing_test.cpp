// Incremental-framing differential fuzz (ISSUE: satellite 3): captured wire
// bytes fed to the Framer in randomized 1..N-byte slices must yield exactly
// the frame sequence a whole-buffer split yields, and malformed
// length/version headers must poison only their own framer — the adjacent
// connection's framer keeps streaming.
#include "net/framer.h"

#include <gtest/gtest.h>

#include <random>

#include "of/wire.h"

namespace sdnshield::net {
namespace {

namespace wire = of::wire;

/// A representative captured stream: the handshake plus the southbound
/// vocabulary the cbench loop exercises.
of::Bytes capturedStream() {
  of::Bytes stream;
  auto push = [&stream](const of::Bytes& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  push(wire::encodeHello(1));
  push(wire::encodeFeaturesRequest(2));
  push(wire::encodeFeaturesReply(wire::FeaturesReply{2, 7, 256, 1}));
  of::PacketIn packetIn;
  packetIn.inPort = 4;
  packetIn.packet = of::Packet::makeTcp(
      of::MacAddress::fromUint64(0x0401), of::MacAddress::fromUint64(0x0201),
      of::Ipv4Address(10, 9, 0, 1), of::Ipv4Address(10, 0, 0, 1), 12345, 80,
      of::tcpflags::kSyn);
  push(wire::encodePacketIn(packetIn));
  of::FlowMod mod;
  mod.match.ethDst = of::MacAddress::fromUint64(0x0201);
  mod.priority = 10;
  mod.idleTimeout = 300;
  mod.actions.push_back(of::OutputAction{1});
  push(wire::encodeFlowMod(mod));
  of::PacketOut packetOut;
  packetOut.inPort = 4;
  packetOut.packet = packetIn.packet;
  packetOut.actions.push_back(of::OutputAction{1});
  push(wire::encodePacketOut(packetOut));
  push(wire::encodeEcho({false, 9, {0xde, 0xad}}));
  push(wire::encodeEcho({true, 9, {0xde, 0xad}}));
  of::StatsRequest statsRequest;
  statsRequest.level = of::StatsLevel::kFlow;
  push(wire::encodeStatsRequest(statsRequest, 0x200));
  of::ErrorMsg error{0, of::ErrorType::kTableFull, "full"};
  push(wire::encodeError(error));
  return stream;
}

/// Reference: split the whole buffer in one pass.
std::vector<of::Bytes> wholeBufferFrames(const of::Bytes& stream) {
  std::vector<of::Bytes> frames;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    std::size_t length =
        wire::frameLength(stream.data() + offset, stream.size() - offset);
    if (length == 0) break;
    frames.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(offset),
                        stream.begin() +
                            static_cast<std::ptrdiff_t>(offset + length));
    offset += length;
  }
  return frames;
}

std::vector<of::Bytes> slicedFrames(const of::Bytes& stream,
                                    std::mt19937& rng,
                                    std::size_t maxSlice) {
  Framer framer;
  std::vector<of::Bytes> frames;
  std::uniform_int_distribution<std::size_t> sliceDist(1, maxSlice);
  std::size_t offset = 0;
  while (offset < stream.size()) {
    std::size_t n = std::min(sliceDist(rng), stream.size() - offset);
    framer.append(stream.data() + offset, n);
    offset += n;
    Framer::Frame frame;
    while (framer.next(frame) == Framer::Status::kFrame) {
      frames.emplace_back(frame.data, frame.data + frame.size);
    }
    EXPECT_TRUE(framer.error().empty());
  }
  return frames;
}

TEST(NetFraming, RandomSlicingIsIdenticalToWholeBufferParse) {
  of::Bytes stream = capturedStream();
  std::vector<of::Bytes> expected = wholeBufferFrames(stream);
  ASSERT_EQ(expected.size(), 10u);

  std::mt19937 rng(0xf4a3);
  for (int trial = 0; trial < 200; ++trial) {
    // Mix byte-at-a-time with jumbo slices across trials.
    std::size_t maxSlice = 1 + static_cast<std::size_t>(trial) % 97;
    std::vector<of::Bytes> got = slicedFrames(stream, rng, maxSlice);
    ASSERT_EQ(got.size(), expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "trial " << trial << " frame " << i;
    }
  }
}

TEST(NetFraming, EveryFrameDecodesIdenticallyAfterSlicing) {
  of::Bytes stream = capturedStream();
  std::mt19937 rng(0x5eed);
  std::vector<of::Bytes> frames = slicedFrames(stream, rng, 3);
  for (const of::Bytes& frame : frames) {
    // The sliced frame must decode exactly like the original encoding
    // (same variant alternative, re-encodes to the same bytes).
    wire::Message message = wire::decode(frame);
    EXPECT_EQ(wire::encode(message, wire::transactionId(frame)), frame);
  }
}

TEST(NetFraming, BadVersionHeaderPoisonsOnlyThatFramer) {
  Framer bad;
  Framer neighbour;

  of::Bytes good = wire::encodeHello(1);
  of::Bytes corrupt = good;
  corrupt[0] = 0x04;  // OF 1.3 version: unsupported.

  bad.append(corrupt.data(), corrupt.size());
  neighbour.append(good.data(), good.size());

  Framer::Frame frame;
  EXPECT_EQ(bad.next(frame), Framer::Status::kCorrupt);
  EXPECT_FALSE(bad.error().empty());
  // Once corrupt, stays corrupt: the stream cannot re-synchronise.
  bad.append(good.data(), good.size());
  EXPECT_EQ(bad.next(frame), Framer::Status::kCorrupt);

  // The neighbouring connection's framer is untouched.
  ASSERT_EQ(neighbour.next(frame), Framer::Status::kFrame);
  EXPECT_EQ(of::Bytes(frame.data, frame.data + frame.size), good);
}

TEST(NetFraming, UndersizedLengthHeaderIsCorrupt) {
  of::Bytes frame = wire::encodeHello(1);
  frame[2] = 0;
  frame[3] = 4;  // Length 4 < the 8-byte header minimum.
  Framer framer;
  framer.append(frame.data(), frame.size());
  Framer::Frame out;
  EXPECT_EQ(framer.next(out), Framer::Status::kCorrupt);
}

TEST(NetFraming, PartialHeaderNeedsMoreWithoutError) {
  Framer framer;
  of::Bytes frame = wire::encodeEcho({false, 1, {1, 2, 3}});
  Framer::Frame out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    framer.append(&frame[i], 1);
    EXPECT_EQ(framer.next(out), Framer::Status::kNeedMore) << "byte " << i;
  }
  framer.append(&frame[frame.size() - 1], 1);
  ASSERT_EQ(framer.next(out), Framer::Status::kFrame);
  EXPECT_EQ(out.size, frame.size());
  EXPECT_EQ(framer.buffered(), frame.size());  // Consumed on the NEXT call.
  EXPECT_EQ(framer.next(out), Framer::Status::kNeedMore);
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(NetFraming, CompactionSurvivesLongStreams) {
  // Push well past the compaction threshold and verify frame accounting.
  Framer framer;
  of::Bytes frame = wire::encodeEcho({false, 7, of::Bytes(100, 0xab)});
  constexpr std::size_t kCount = 2000;  // ~216KB through a 16KB threshold.
  Framer::Frame out;
  for (std::size_t i = 0; i < kCount; ++i) {
    framer.append(frame.data(), frame.size());
    ASSERT_EQ(framer.next(out), Framer::Status::kFrame);
    ASSERT_EQ(out.size, frame.size());
  }
  EXPECT_EQ(framer.frameCount(), kCount);
  EXPECT_EQ(framer.next(out), Framer::Status::kNeedMore);
  EXPECT_EQ(framer.buffered(), 0u);
}

}  // namespace
}  // namespace sdnshield::net
