#include "core/lang/lexer.h"

#include <gtest/gtest.h>

#include "of/types.h"

namespace sdnshield::lang {
namespace {

std::vector<TokenType> types(const std::string& input) {
  std::vector<TokenType> out;
  for (const LexToken& token : lex(input)) out.push_back(token.type);
  return out;
}

TEST(Lexer, TokenizesIdentifiersIntsAndIps) {
  auto tokens = lex("PERM insert_flow 42 10.13.0.0");
  ASSERT_EQ(tokens.size(), 5u);  // 4 tokens + end.
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[0].text, "PERM");
  EXPECT_EQ(tokens[1].text, "insert_flow");
  EXPECT_EQ(tokens[2].type, TokenType::kInt);
  EXPECT_EQ(tokens[2].intValue, 42u);
  EXPECT_EQ(tokens[3].type, TokenType::kIp);
  EXPECT_EQ(tokens[3].ipValue, of::Ipv4Address(10, 13, 0, 0).value());
  EXPECT_EQ(tokens[4].type, TokenType::kEnd);
}

TEST(Lexer, PunctuationAndComparisons) {
  auto tokenTypes = types("{ } ( ) , = <= >= < >");
  std::vector<TokenType> expected{
      TokenType::kLBrace, TokenType::kRBrace, TokenType::kLParen,
      TokenType::kRParen, TokenType::kComma,  TokenType::kAssign,
      TokenType::kLe,     TokenType::kGe,     TokenType::kLt,
      TokenType::kGt,     TokenType::kEnd};
  EXPECT_EQ(tokenTypes, expected);
}

TEST(Lexer, NewlinesSeparateStatementsAndCollapse) {
  auto tokenTypes = types("a\n\n\nb");
  std::vector<TokenType> expected{TokenType::kIdent, TokenType::kNewline,
                                  TokenType::kIdent, TokenType::kEnd};
  EXPECT_EQ(tokenTypes, expected);
}

TEST(Lexer, LeadingAndTrailingNewlinesAreDropped) {
  auto tokenTypes = types("\n\na\n\n");
  std::vector<TokenType> expected{TokenType::kIdent, TokenType::kEnd};
  EXPECT_EQ(tokenTypes, expected);
}

TEST(Lexer, BackslashContinuesTheLine) {
  // The paper's listings wrap statements with a trailing backslash.
  auto tokenTypes = types("PERM read_flow_table LIMITING \\\n  IP_DST 10.13.0.0");
  for (TokenType type : tokenTypes) EXPECT_NE(type, TokenType::kNewline);
}

TEST(Lexer, StrayBackslashIsAnError) {
  EXPECT_THROW(lex("a \\ b"), ParseError);
}

TEST(Lexer, CommentsRunToEndOfLine) {
  auto tokens = lex("a # comment with PERM tokens\nb // another\nc");
  std::vector<std::string> idents;
  for (const LexToken& token : tokens) {
    if (token.type == TokenType::kIdent) idents.push_back(token.text);
  }
  EXPECT_EQ(idents, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Lexer, TracksLineAndColumn) {
  auto tokens = lex("first\n  second");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  // tokens[1] is the newline separator; tokens[2] is "second".
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW(lex("a $ b"), ParseError);
  EXPECT_THROW(lex("a @"), ParseError);
}

TEST(Lexer, RejectsMalformedIpLiterals) {
  EXPECT_THROW(lex("10.13.0"), ParseError);
  EXPECT_THROW(lex("1.2.3.4.5"), ParseError);
}

TEST(Lexer, ParseErrorCarriesPosition) {
  try {
    lex("good\nbad $");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 2);
    EXPECT_GT(error.column(), 1);
  }
}

}  // namespace
}  // namespace sdnshield::lang
