// API-call transactions (§VI-B.2): all-or-nothing permission checking and
// rollback of partially executed groups.
#include "core/engine/transaction.h"

#include <gtest/gtest.h>

#include "core/lang/perm_parser.h"

namespace sdnshield::engine {
namespace {

using lang::parsePermissions;
using perm::ApiCall;

of::FlowMod modTo(const char* ipDst) {
  of::FlowMod mod;
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address::parse(ipDst)};
  mod.actions.push_back(of::OutputAction{1});
  return mod;
}

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() {
    engine_.install(1, parsePermissions(
                           "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK "
                           "255.255.0.0\n"));
  }

  TxOperation op(const char* ip, bool execOk = true) {
    return TxOperation{
        ApiCall::insertFlow(1, 1, modTo(ip)),
        [this, execOk] {
          executed_.push_back(true);
          return execOk;
        },
        [this] { undone_.push_back(true); }};
  }

  PermissionEngine engine_;
  std::vector<bool> executed_;
  std::vector<bool> undone_;
};

TEST_F(TransactionTest, AllAllowedCommits) {
  Transaction tx;
  tx.add(op("10.13.0.1"));
  tx.add(op("10.13.0.2"));
  TxResult result = tx.commit(engine_);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(executed_.size(), 2u);
  EXPECT_TRUE(undone_.empty());
}

TEST_F(TransactionTest, OneDeniedCallAbortsBeforeAnyExecution) {
  Transaction tx;
  tx.add(op("10.13.0.1"));
  tx.add(op("10.99.0.1"));  // Violates the filter.
  tx.add(op("10.13.0.2"));
  TxResult result = tx.commit(engine_);
  EXPECT_FALSE(result.committed);
  EXPECT_EQ(result.failedIndex, 1u);
  EXPECT_FALSE(result.failureReason.empty());
  // Key property: the allowed first call never executed — no problematic
  // intermediate state.
  EXPECT_TRUE(executed_.empty());
  EXPECT_TRUE(undone_.empty());
}

TEST_F(TransactionTest, RuntimeFailureRollsBackExecutedPrefix) {
  Transaction tx;
  tx.add(op("10.13.0.1"));
  tx.add(op("10.13.0.2"));
  tx.add(op("10.13.0.3", /*execOk=*/false));  // Fails at runtime.
  TxResult result = tx.commit(engine_);
  EXPECT_FALSE(result.committed);
  EXPECT_EQ(result.failedIndex, 2u);
  EXPECT_EQ(executed_.size(), 3u);  // All three attempted up to the failure.
  EXPECT_EQ(undone_.size(), 2u);    // The two successful ones undone.
}

TEST_F(TransactionTest, EmptyTransactionCommitsTrivially) {
  Transaction tx;
  EXPECT_TRUE(tx.empty());
  EXPECT_TRUE(tx.commit(engine_).committed);
}

TEST_F(TransactionTest, MissingThunksAreTolerated) {
  Transaction tx;
  tx.add(TxOperation{ApiCall::insertFlow(1, 1, modTo("10.13.0.1")), nullptr,
                     nullptr});
  EXPECT_TRUE(tx.commit(engine_).committed);
}

TEST_F(TransactionTest, KernelTransactionsSkipPermissionDenials) {
  Transaction tx;
  TxOperation kernelOp = op("10.99.0.1");
  kernelOp.call.app = of::kKernelAppId;
  tx.add(std::move(kernelOp));
  EXPECT_TRUE(tx.commit(engine_).committed);
}

}  // namespace
}  // namespace sdnshield::engine
