#include "of/types.h"

#include <gtest/gtest.h>

namespace sdnshield::of {
namespace {

TEST(MacAddress, RoundTripsThroughString) {
  MacAddress mac = MacAddress::parse("0a:1b:2c:3d:4e:5f");
  EXPECT_EQ(mac.toString(), "0a:1b:2c:3d:4e:5f");
  EXPECT_EQ(MacAddress::parse(mac.toString()), mac);
}

TEST(MacAddress, FromUint64PreservesLow48Bits) {
  MacAddress mac = MacAddress::fromUint64(0x0a1b2c3d4e5fULL);
  EXPECT_EQ(mac.toUint64(), 0x0a1b2c3d4e5fULL);
  EXPECT_EQ(mac.toString(), "0a:1b:2c:3d:4e:5f");
}

TEST(MacAddress, FromUint64TruncatesHighBits) {
  EXPECT_EQ(MacAddress::fromUint64(0xff0a1b2c3d4e5fULL).toUint64(),
            0x0a1b2c3d4e5fULL);
}

TEST(MacAddress, ParseRejectsMalformedInput) {
  EXPECT_THROW(MacAddress::parse("not-a-mac"), std::invalid_argument);
  EXPECT_THROW(MacAddress::parse("0a:1b:2c:3d:4e"), std::invalid_argument);
  EXPECT_THROW(MacAddress::parse(""), std::invalid_argument);
}

TEST(MacAddress, BroadcastAndMulticastDetection) {
  EXPECT_TRUE(MacAddress::fromUint64(0xffffffffffffULL).isBroadcast());
  EXPECT_TRUE(MacAddress::parse("01:00:5e:00:00:01").isMulticast());
  EXPECT_FALSE(MacAddress::parse("0a:00:00:00:00:01").isBroadcast());
  EXPECT_FALSE(MacAddress::parse("0a:00:00:00:00:01").isMulticast());
}

TEST(MacAddress, OrderingFollowsNumericValue) {
  EXPECT_LT(MacAddress::fromUint64(1), MacAddress::fromUint64(2));
  EXPECT_EQ(MacAddress::fromUint64(7), MacAddress::fromUint64(7));
}

TEST(Ipv4Address, RoundTripsThroughString) {
  Ipv4Address ip = Ipv4Address::parse("10.13.0.1");
  EXPECT_EQ(ip.toString(), "10.13.0.1");
  EXPECT_EQ(Ipv4Address::parse(ip.toString()), ip);
}

TEST(Ipv4Address, OctetConstructorMatchesParse) {
  EXPECT_EQ(Ipv4Address(192, 168, 1, 42), Ipv4Address::parse("192.168.1.42"));
}

TEST(Ipv4Address, ParseRejectsMalformedInput) {
  EXPECT_THROW(Ipv4Address::parse("10.13.0"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("10.13.0.256"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("banana"), std::invalid_argument);
}

TEST(Ipv4Address, PrefixMaskBuildsCanonicalMasks) {
  EXPECT_EQ(Ipv4Address::prefixMask(0).value(), 0u);
  EXPECT_EQ(Ipv4Address::prefixMask(8), Ipv4Address::parse("255.0.0.0"));
  EXPECT_EQ(Ipv4Address::prefixMask(16), Ipv4Address::parse("255.255.0.0"));
  EXPECT_EQ(Ipv4Address::prefixMask(24), Ipv4Address::parse("255.255.255.0"));
  EXPECT_EQ(Ipv4Address::prefixMask(32).value(), 0xffffffffu);
}

TEST(Ipv4Address, PrefixMaskClampsOutOfRange) {
  EXPECT_EQ(Ipv4Address::prefixMask(-4).value(), 0u);
  EXPECT_EQ(Ipv4Address::prefixMask(64).value(), 0xffffffffu);
}

TEST(EnumNames, EtherTypeAndIpProto) {
  EXPECT_EQ(toString(EtherType::kIpv4), "ipv4");
  EXPECT_EQ(toString(EtherType::kArp), "arp");
  EXPECT_EQ(toString(IpProto::kTcp), "tcp");
  EXPECT_EQ(toString(IpProto::kUdp), "udp");
  EXPECT_EQ(toString(IpProto::kIcmp), "icmp");
}

}  // namespace
}  // namespace sdnshield::of
