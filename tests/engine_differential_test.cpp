// Randomized differential harness for the filter algebra and the optimized
// permission engine (ISSUE 1): pins CompiledPermissions' optimizer + branch
// VM and PermissionEngine's decision memo to the naive tree-walk reference
// (FilterExpr::evaluate), pins CNF/DNF against the same reference, and
// checks Algorithm 1's soundness property over expressions that span every
// filter kind.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/engine/permission_engine.h"
#include "core/perm/interner.h"
#include "core/perm/normal_form.h"
#include "core/perm/permission.h"

namespace sdnshield::engine {
namespace {

using perm::ApiCall;
using perm::ApiCallType;
using perm::CallbackOp;
using perm::FilterExpr;
using perm::FilterExprPtr;
using perm::FilterPtr;
using perm::Token;

using Rng = std::mt19937;

// --- random filters: every singleton kind ------------------------------------

FilterPtr randomFilter(Rng& rng) {
  switch (rng() % 12) {
    case 0: {  // Field predicate, IP form: a /8, /16 or /24 window.
      of::MatchField field =
          rng() % 2 == 0 ? of::MatchField::kIpDst : of::MatchField::kIpSrc;
      int prefix = 8 * static_cast<int>(1 + rng() % 3);
      of::Ipv4Address base(10, static_cast<std::uint8_t>(rng() % 4),
                           static_cast<std::uint8_t>(rng() % 4), 0);
      return FilterPtr{new perm::FieldPredicateFilter(
          field, of::MaskedIpv4{base, of::Ipv4Address::prefixMask(prefix)})};
    }
    case 1: {  // Field predicate, exact-integer form.
      of::MatchField field =
          rng() % 2 == 0 ? of::MatchField::kTpDst : of::MatchField::kEthType;
      std::uint64_t value = field == of::MatchField::kEthType
                                ? (rng() % 2 == 0 ? 0x0800 : 0x0806)
                                : 20 + rng() % 5;
      return FilterPtr{new perm::FieldPredicateFilter(field, value)};
    }
    case 2: {  // Wildcard.
      if (rng() % 2 == 0) {
        return FilterPtr{new perm::WildcardFilter(
            of::MatchField::kIpDst,
            of::Ipv4Address(0, 0, 0, static_cast<std::uint8_t>(rng() % 256)))};
      }
      return FilterPtr{new perm::WildcardFilter(of::MatchField::kTpSrc)};
    }
    case 3:
      switch (rng() % 3) {
        case 0:
          return perm::ActionFilter::drop();
        case 1:
          return perm::ActionFilter::forward();
        default:
          return perm::ActionFilter::modify(of::MatchField::kIpDst);
      }
    case 4:
      return FilterPtr{new perm::OwnershipFilter(rng() % 2 == 0)};
    case 5:
      return FilterPtr{new perm::PriorityFilter(
          rng() % 2 == 0, static_cast<std::uint16_t>((rng() % 5) * 50))};
    case 6:
      return FilterPtr{new perm::TableSizeFilter(rng() % 8)};
    case 7:
      return FilterPtr{new perm::PktOutFilter(rng() % 2 == 0)};
    case 8: {  // Physical topology over a 4-switch universe.
      std::set<of::DatapathId> switches;
      for (of::DatapathId dpid = 1; dpid <= 4; ++dpid) {
        if (rng() % 2 == 0) switches.insert(dpid);
      }
      std::set<perm::PhysicalTopologyFilter::LinkPair> links;
      if (switches.size() >= 2) {
        auto it = switches.begin();
        of::DatapathId a = *it++;
        links.emplace(a, *it);
      }
      return FilterPtr{
          new perm::PhysicalTopologyFilter(std::move(switches), std::move(links))};
    }
    case 9:  // Virtual topology (constant-true marker for the optimizer).
      return FilterPtr{new perm::VirtualTopologyFilter(
          rng() % 2 == 0 ? std::set<of::DatapathId>{}
                         : std::set<of::DatapathId>{1, 2})};
    case 10:
      switch (rng() % 3) {
        case 0:
          return FilterPtr{new perm::CallbackFilter(
              perm::CallbackFilter::Capability::kInterception)};
        case 1:
          return FilterPtr{new perm::CallbackFilter(
              perm::CallbackFilter::Capability::kModifyOrder)};
        default:
          return FilterPtr{new perm::StatisticsFilter(
              static_cast<of::StatsLevel>(rng() % 3))};
      }
    default:  // Stub (constant-false customization macro).
      return FilterPtr{
          new perm::StubFilter("MACRO_" + std::to_string(rng() % 3))};
  }
}

FilterExprPtr randomExpr(Rng& rng, int depth) {
  if (depth == 0 || rng() % 3 == 0) {
    return FilterExpr::singleton(randomFilter(rng));
  }
  switch (rng() % 4) {
    case 0:
    case 1:  // Bias toward conjunction, the common manifest shape.
      return FilterExpr::conj(randomExpr(rng, depth - 1),
                              randomExpr(rng, depth - 1));
    case 2:
      return FilterExpr::disj(randomExpr(rng, depth - 1),
                              randomExpr(rng, depth - 1));
    default:
      return FilterExpr::negate(randomExpr(rng, depth - 1));
  }
}

// --- random API calls: every call shape --------------------------------------

of::FlowMatch randomMatch(Rng& rng) {
  of::FlowMatch match;
  if (rng() % 2 == 0) match.ethType = rng() % 2 == 0 ? 0x0800 : 0x0806;
  if (rng() % 2 == 0) {
    match.ipDst = of::MaskedIpv4{
        of::Ipv4Address(10, static_cast<std::uint8_t>(rng() % 4),
                        static_cast<std::uint8_t>(rng() % 4),
                        static_cast<std::uint8_t>(rng() % 250 + 1)),
        of::Ipv4Address::prefixMask(8 * static_cast<int>(2 + rng() % 3))};
  }
  if (rng() % 3 == 0) {
    match.ipSrc = of::MaskedIpv4{
        of::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng() % 250 + 1))};
  }
  if (rng() % 3 == 0) match.tpDst = static_cast<std::uint16_t>(20 + rng() % 5);
  if (rng() % 4 == 0) match.tpSrc = static_cast<std::uint16_t>(rng() % 1024);
  if (rng() % 4 == 0) match.inPort = rng() % 8;
  return match;
}

of::ActionList randomActions(Rng& rng) {
  of::ActionList actions;
  switch (rng() % 4) {
    case 0:
      actions.push_back(of::DropAction{});
      break;
    case 1:
      actions.push_back(of::OutputAction{static_cast<of::PortNo>(rng() % 8)});
      break;
    case 2: {
      of::SetFieldAction set;
      set.field =
          rng() % 2 == 0 ? of::MatchField::kIpDst : of::MatchField::kIpSrc;
      set.ipValue = of::Ipv4Address(10, 0, 0, 1);
      actions.push_back(set);
      actions.push_back(of::OutputAction{1});
      break;
    }
    default:
      actions.push_back(of::OutputAction{1});
      actions.push_back(of::OutputAction{2});
      break;
  }
  return actions;
}

ApiCall randomCall(Rng& rng, of::AppId app) {
  static constexpr ApiCallType kTypes[] = {
      ApiCallType::kInsertFlow,       ApiCallType::kModifyFlow,
      ApiCallType::kDeleteFlow,       ApiCallType::kReadFlowTable,
      ApiCallType::kSubscribeFlowEvent, ApiCallType::kReadTopology,
      ApiCallType::kModifyTopology,   ApiCallType::kSubscribeTopologyEvent,
      ApiCallType::kReadStatistics,   ApiCallType::kSubscribeErrorEvent,
      ApiCallType::kReadPayload,      ApiCallType::kSendPacketOut,
      ApiCallType::kSubscribePacketIn, ApiCallType::kHostNetworkAccess,
      ApiCallType::kFileSystemAccess, ApiCallType::kProcessRuntimeAccess,
  };
  ApiCall call;
  call.type = kTypes[rng() % std::size(kTypes)];
  call.app = app;
  if (rng() % 2 == 0) call.dpid = 1 + rng() % 4;
  if (rng() % 4 != 0) call.match = randomMatch(rng);
  if (rng() % 2 == 0) call.actions = randomActions(rng);
  if (rng() % 2 == 0) call.priority = static_cast<std::uint16_t>(rng() % 250);
  call.ownFlow = rng() % 2 == 0;
  if (rng() % 3 == 0) call.ruleCountAfter = rng() % 10;
  if (rng() % 3 == 0) call.statsLevel = static_cast<of::StatsLevel>(rng() % 3);
  call.pktOutFromPacketIn = rng() % 2 == 0;
  if (rng() % 4 == 0) call.callbackOp = static_cast<CallbackOp>(rng() % 3);
  if (rng() % 3 == 0) {
    call.topoSwitches.push_back(1 + rng() % 4);
    if (rng() % 2 == 0) call.topoLinks.emplace_back(1 + rng() % 2, 3);
  }
  if (rng() % 4 == 0) {
    call.remoteIp = of::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng() % 4),
                                    static_cast<std::uint8_t>(rng() % 250 + 1));
    call.remotePort = static_cast<std::uint16_t>(20 + rng() % 5);
  }
  if (rng() % 5 == 0) call.path = "/tmp/app" + std::to_string(rng() % 3);
  return call;
}

/// The naive reference the engine must agree with: token gate + recursive
/// tree walk over the uncompiled, unoptimized expression.
Decision referenceCheck(const perm::PermissionSet& permissions,
                        const ApiCall& call) {
  Token token = perm::requiredToken(call.type);
  std::optional<FilterExprPtr> filter = permissions.filterFor(token);
  if (!filter) return Decision::deny("token missing");
  if (!*filter) return Decision::allow();  // Unrestricted grant.
  return (*filter)->evaluate(call) ? Decision::allow()
                                   : Decision::deny("filter rejected");
}

perm::PermissionSet randomPermissionSet(Rng& rng) {
  perm::PermissionSet set;
  std::size_t grants = 1 + rng() % 5;
  for (std::size_t i = 0; i < grants; ++i) {
    Token token = perm::kAllTokens[rng() % std::size(perm::kAllTokens)];
    // 1 in 8 grants is unrestricted; the rest carry a random filter tree.
    set.grant(token, rng() % 8 == 0 ? nullptr : randomExpr(rng, 5));
  }
  return set;
}

// --- differential: optimized engine vs naive reference -----------------------

class EngineDifferentialTest : public ::testing::TestWithParam<unsigned> {};

// ≥5,000 (permission set, call) pairs across the 10 seeds: 10 x 25 sets x
// 25 calls = 6,250 compiled-path comparisons, plus the same pairs again
// through PermissionEngine (memoized path, each call issued twice).
TEST_P(EngineDifferentialTest, CompiledCheckMatchesNaiveTreeWalk) {
  Rng rng(GetParam());
  for (int setIdx = 0; setIdx < 25; ++setIdx) {
    perm::PermissionSet permissions = randomPermissionSet(rng);
    CompiledPermissions compiled(permissions);
    for (int callIdx = 0; callIdx < 25; ++callIdx) {
      ApiCall call = randomCall(rng, 1);
      Decision expected = referenceCheck(permissions, call);
      Decision actual = compiled.check(call);
      ASSERT_EQ(actual.allowed, expected.allowed)
          << "set=" << permissions.toString() << "\ncall=" << call.toString();
    }
  }
}

TEST_P(EngineDifferentialTest, MemoizedEngineMatchesNaiveTreeWalk) {
  Rng rng(GetParam() + 10'000);
  PermissionEngine engine;
  for (int setIdx = 0; setIdx < 25; ++setIdx) {
    perm::PermissionSet permissions = randomPermissionSet(rng);
    constexpr of::AppId kApp = 3;
    engine.install(kApp, permissions);
    for (int callIdx = 0; callIdx < 25; ++callIdx) {
      ApiCall call = randomCall(rng, kApp);
      Decision expected = referenceCheck(permissions, call);
      // Twice: the second check exercises the memo-hit path, and a stale
      // entry surviving the reinstall above would be caught here too.
      for (int repeat = 0; repeat < 2; ++repeat) {
        Decision actual = engine.check(call);
        ASSERT_EQ(actual.allowed, expected.allowed)
            << "repeat=" << repeat << " set=" << permissions.toString()
            << "\ncall=" << call.toString();
      }
    }
  }
}

// --- differential: normal forms vs naive reference ---------------------------

TEST_P(EngineDifferentialTest, NormalFormsMatchNaiveTreeWalk) {
  Rng rng(GetParam() + 20'000);
  for (int exprIdx = 0; exprIdx < 20; ++exprIdx) {
    FilterExprPtr expr = randomExpr(rng, 5);
    perm::Cnf cnf = perm::toCnf(expr);
    perm::Dnf dnf = perm::toDnf(expr);
    for (int callIdx = 0; callIdx < 25; ++callIdx) {
      ApiCall call = randomCall(rng, 1);
      bool expected = expr->evaluate(call);
      ASSERT_EQ(cnf.evaluate(call), expected) << "expr=" << expr->toString();
      ASSERT_EQ(dnf.evaluate(call), expected) << "expr=" << expr->toString();
    }
  }
}

// Soundness property from normal_form.h: includes(a, b) == true must never
// be contradicted by a call that b allows and a denies.
TEST_P(EngineDifferentialTest, InclusionVerdictIsSoundOverAllFilterKinds) {
  Rng rng(GetParam() + 30'000);
  int verdicts = 0;
  for (int pairIdx = 0; pairIdx < 40; ++pairIdx) {
    FilterExprPtr a = randomExpr(rng, 3);
    FilterExprPtr b = rng() % 4 == 0 ? a : randomExpr(rng, 3);
    if (!perm::filterIncludes(a, b)) continue;
    ++verdicts;
    for (int callIdx = 0; callIdx < 50; ++callIdx) {
      ApiCall call = randomCall(rng, 1);
      if (b->evaluate(call)) {
        ASSERT_TRUE(a->evaluate(call))
            << "a=" << a->toString() << "\nb=" << b->toString()
            << "\ncall=" << call.toString();
      }
    }
  }
  EXPECT_GT(verdicts, 0) << "no positive inclusion verdicts sampled";
}

// The interner must never merge filters that differ semantically: two
// interned filters compare equal exactly when equals() says so.
TEST_P(EngineDifferentialTest, InternerPreservesSemantics) {
  Rng rng(GetParam() + 40'000);
  std::vector<FilterPtr> interned;
  for (int i = 0; i < 60; ++i) {
    interned.push_back(perm::FilterInterner::global().intern(randomFilter(rng)));
  }
  for (const FilterPtr& a : interned) {
    for (const FilterPtr& b : interned) {
      ASSERT_EQ(a.get() == b.get(), a->equals(*b))
          << "a=" << a->toString() << " b=" << b->toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Range(0u, 10u));

}  // namespace
}  // namespace sdnshield::engine
