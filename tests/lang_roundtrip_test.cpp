// Parser/printer round-trip property (ISSUE 1 satellite): for randomized
// permission sets drawn from the full parser-supported grammar,
// parse(print(set)) must be semantically equal to the original (mutual
// PermissionSet::includes), and the printed form must be a fixed point of
// print∘parse. This covers core/lang against the interner-backed normal
// forms: Algorithm 1 now compares interned literals by pointer, and a
// re-parsed set holds freshly built filters, so any interner/equality skew
// would break the mutual inclusion here.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

#include "core/lang/perm_parser.h"
#include "core/lang/printer.h"
#include "core/perm/permission.h"

namespace sdnshield::lang {
namespace {

using Rng = std::mt19937;

// Emits one random filter in permission-language syntax, spanning every
// grammar production parseFilter understands.
std::string randomFilterText(Rng& rng) {
  switch (rng() % 12) {
    case 0: {
      std::ostringstream out;
      out << (rng() % 2 == 0 ? "IP_DST " : "IP_SRC ") << "10." << rng() % 4
          << "." << rng() % 4 << ".0 MASK 255.255.255.0";
      return out.str();
    }
    case 1:
      return "TP_DST " + std::to_string(20 + rng() % 5);
    case 2:
      return rng() % 2 == 0 ? "WILDCARD TP_SRC"
                            : "WILDCARD IP_DST 0.0.0.255";
    case 3:
      switch (rng() % 3) {
        case 0:
          return "ACTION DROP";
        case 1:
          return "ACTION FORWARD";
        default:
          return "ACTION MODIFY IP_DST";
      }
    case 4:
      return rng() % 2 == 0 ? "OWN_FLOWS" : "ALL_FLOWS";
    case 5:
      return (rng() % 2 == 0 ? "MAX_PRIORITY " : "MIN_PRIORITY ") +
             std::to_string((rng() % 5) * 50);
    case 6:
      return "MAX_RULE_COUNT " + std::to_string(1 + rng() % 8);
    case 7:
      return rng() % 2 == 0 ? "FROM_PKT_IN" : "ARBITRARY";
    case 8: {
      std::ostringstream out;
      out << "SWITCH { 1, 2, " << 3 + rng() % 2 << " }";
      if (rng() % 2 == 0) out << " LINK { (1, 2) }";
      return out.str();
    }
    case 9:
      return rng() % 2 == 0 ? "EVENT_INTERCEPTION" : "MODIFY_EVENT_ORDER";
    case 10:
      switch (rng() % 3) {
        case 0:
          return "FLOW_LEVEL";
        case 1:
          return "PORT_LEVEL";
        default:
          return "SWITCH_LEVEL";
      }
    default:
      return "ETH_TYPE " + std::to_string(rng() % 2 == 0 ? 2048 : 2054);
  }
}

std::string randomFilterExprText(Rng& rng, int depth) {
  if (depth == 0 || rng() % 3 == 0) return randomFilterText(rng);
  switch (rng() % 4) {
    case 0:
      return "(" + randomFilterExprText(rng, depth - 1) + " AND " +
             randomFilterExprText(rng, depth - 1) + ")";
    case 1:
      return "(" + randomFilterExprText(rng, depth - 1) + " OR " +
             randomFilterExprText(rng, depth - 1) + ")";
    case 2:
      return "NOT (" + randomFilterExprText(rng, depth - 1) + ")";
    default:
      return randomFilterText(rng);
  }
}

std::string randomManifestText(Rng& rng) {
  std::ostringstream out;
  std::size_t grants = 1 + rng() % 5;
  for (std::size_t i = 0; i < grants; ++i) {
    perm::Token token =
        perm::kAllTokens[rng() % std::size(perm::kAllTokens)];
    out << "PERM " << perm::toString(token);
    if (rng() % 8 != 0) {
      out << " LIMITING " << randomFilterExprText(rng, 3);
    }
    out << "\n";
  }
  return out.str();
}

class LangRoundTripTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LangRoundTripTest, PrintedPermissionsReparseToEquivalentSet) {
  Rng rng(GetParam());
  for (int sample = 0; sample < 40; ++sample) {
    std::string text = randomManifestText(rng);
    perm::PermissionSet original = parsePermissions(text);
    std::string printed = formatPermissions(original);
    perm::PermissionSet reparsed = parsePermissions(printed);

    EXPECT_TRUE(original.includes(reparsed))
        << "original does not cover reparse\ninput:\n"
        << text << "printed:\n"
        << printed;
    EXPECT_TRUE(reparsed.includes(original))
        << "reparse does not cover original\ninput:\n"
        << text << "printed:\n"
        << printed;
  }
}

TEST_P(LangRoundTripTest, PrintingIsAFixedPointOfParsing) {
  Rng rng(GetParam() + 1'000);
  for (int sample = 0; sample < 40; ++sample) {
    std::string printed = formatPermissions(
        parsePermissions(randomManifestText(rng)));
    EXPECT_EQ(formatPermissions(parsePermissions(printed)), printed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LangRoundTripTest, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace sdnshield::lang
