#include "of/packet.h"

#include <gtest/gtest.h>

namespace sdnshield::of {
namespace {

MacAddress macA() { return MacAddress::parse("0a:00:00:00:00:01"); }
MacAddress macB() { return MacAddress::parse("0a:00:00:00:00:02"); }
Ipv4Address ipA() { return Ipv4Address::parse("10.0.0.1"); }
Ipv4Address ipB() { return Ipv4Address::parse("10.0.0.2"); }

TEST(Packet, ArpRequestRoundTrip) {
  Packet pkt = Packet::makeArpRequest(macA(), ipA(), ipB());
  Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_EQ(parsed, pkt);
  ASSERT_TRUE(parsed.arp.has_value());
  EXPECT_EQ(parsed.arp->op, 1);
  EXPECT_EQ(parsed.arp->senderIp, ipA());
  EXPECT_EQ(parsed.arp->targetIp, ipB());
  EXPECT_TRUE(parsed.eth.dst.isBroadcast());
}

TEST(Packet, ArpReplyRoundTrip) {
  Packet pkt = Packet::makeArpReply(macB(), ipB(), macA(), ipA());
  Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_EQ(parsed, pkt);
  ASSERT_TRUE(parsed.arp.has_value());
  EXPECT_EQ(parsed.arp->op, 2);
}

TEST(Packet, TcpRoundTripWithPayload) {
  Bytes payload{'G', 'E', 'T', ' ', '/'};
  Packet pkt = Packet::makeTcp(macA(), macB(), ipA(), ipB(), 49152, 80,
                               tcpflags::kSyn | tcpflags::kAck, payload);
  pkt.tcp->seq = 0xdeadbeef;
  pkt.tcp->ack = 0x12345678;
  Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_EQ(parsed, pkt);
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_EQ(parsed.tcp->seq, 0xdeadbeefu);
  EXPECT_EQ(parsed.tcp->ack, 0x12345678u);
  EXPECT_EQ(parsed.payload, payload);
}

TEST(Packet, UdpRoundTrip) {
  Packet pkt = Packet::makeUdp(macA(), macB(), ipA(), ipB(), 5353, 53,
                               Bytes{1, 2, 3});
  Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_EQ(parsed, pkt);
  ASSERT_TRUE(parsed.udp.has_value());
  EXPECT_EQ(parsed.udp->dstPort, 53);
}

TEST(Packet, ParseRejectsTruncatedInput) {
  Packet pkt = Packet::makeTcp(macA(), macB(), ipA(), ipB(), 1, 2, 0);
  Bytes wire = pkt.serialize();
  wire.resize(wire.size() / 2);
  EXPECT_THROW(Packet::parse(wire), std::invalid_argument);
  EXPECT_THROW(Packet::parse(Bytes{0x01, 0x02}), std::invalid_argument);
}

TEST(Packet, FieldsExtractTcpFiveTuple) {
  Packet pkt = Packet::makeTcp(macA(), macB(), ipA(), ipB(), 49152, 80,
                               tcpflags::kSyn);
  HeaderFields fields = pkt.fields(7);
  EXPECT_EQ(fields.inPort, 7u);
  EXPECT_EQ(fields.ethSrc, macA());
  EXPECT_EQ(fields.ethDst, macB());
  EXPECT_EQ(fields.ethType, 0x0800);
  EXPECT_EQ(fields.ipSrc, ipA());
  EXPECT_EQ(fields.ipDst, ipB());
  EXPECT_EQ(fields.ipProto, 6);
  EXPECT_EQ(fields.tpSrc, 49152);
  EXPECT_EQ(fields.tpDst, 80);
}

TEST(Packet, FieldsExposeArpAddressesAsNwFields) {
  Packet pkt = Packet::makeArpRequest(macA(), ipA(), ipB());
  HeaderFields fields = pkt.fields(1);
  EXPECT_EQ(fields.ethType, 0x0806);
  EXPECT_EQ(fields.ipSrc, ipA());
  EXPECT_EQ(fields.ipDst, ipB());
  EXPECT_FALSE(fields.tpDst.has_value());
}

TEST(Packet, TtlSurvivesRoundTrip) {
  Packet pkt = Packet::makeUdp(macA(), macB(), ipA(), ipB(), 1, 2);
  pkt.ipv4->ttl = 3;
  EXPECT_EQ(Packet::parse(pkt.serialize()).ipv4->ttl, 3);
}

TEST(Packet, ToStringDescribesTcpFlags) {
  Packet pkt = Packet::makeTcp(macA(), macB(), ipA(), ipB(), 1, 80,
                               tcpflags::kRst | tcpflags::kAck);
  std::string text = pkt.toString();
  EXPECT_NE(text.find("RST"), std::string::npos);
  EXPECT_NE(text.find("ACK"), std::string::npos);
}

TEST(Packet, NonIpNonArpPayloadPassesThrough) {
  Packet pkt;
  pkt.eth.src = macA();
  pkt.eth.dst = macB();
  pkt.eth.etherType = 0x88cc;  // LLDP-ish.
  pkt.payload = Bytes{9, 9, 9};
  Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_EQ(parsed, pkt);
  EXPECT_FALSE(parsed.fields(1).ipDst.has_value());
}

}  // namespace
}  // namespace sdnshield::of
