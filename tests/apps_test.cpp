// Application suite: the L2 learning switch, shortest-path routing,
// ALTO + traffic engineering pipeline and the firewall, each exercised on
// the simulated network — in the baseline (monolithic) deployment and,
// where the paper's scenarios demand it, under SDNShield.
#include <gtest/gtest.h>

#include <chrono>

#include "apps/alto.h"
#include "apps/firewall.h"
#include "apps/l2_learning.h"
#include "apps/routing.h"
#include "apps/traffic_engineering.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/reconcile/reconciler.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace sdnshield::apps {
namespace {

using namespace std::chrono_literals;

of::Packet tcpSyn(const sim::SimHost& src, const sim::SimHost& dst,
                  std::uint16_t dstPort = 80) {
  return of::Packet::makeTcp(src.mac(), dst.mac(), src.ip(), dst.ip(), 40000,
                             dstPort, of::tcpflags::kSyn);
}

TEST(L2LearningBaseline, LearnsFloodsAndInstallsRules) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h2 = network.addHost(1, 5, of::MacAddress::fromUint64(0xBB),
                            of::Ipv4Address(10, 0, 0, 99));

  iso::BaselineRuntime runtime(controller);
  auto app = std::make_shared<L2LearningSwitch>();
  runtime.loadApp(app);

  // Unknown destination: flooded, h2 still reached.
  h1->send(tcpSyn(*h1, *h2));
  EXPECT_EQ(h2->receivedCount(), 1u);
  EXPECT_EQ(app->packetsSeen(), 1u);
  EXPECT_EQ(app->rulesInstalled(), 0u);

  // h2 replies: now h1's MAC is known, a rule is installed and used.
  h2->send(tcpSyn(*h2, *h1));
  EXPECT_EQ(h1->receivedCount(), 1u);
  EXPECT_EQ(app->rulesInstalled(), 1u);
  EXPECT_EQ(network.switchAt(1)->flowCount(), 1u);

  // Subsequent traffic to h1 hits the rule: no more packet-ins.
  std::uint64_t punts = network.switchAt(1)->packetInCount();
  h2->send(tcpSyn(*h2, *h1));
  EXPECT_EQ(network.switchAt(1)->packetInCount(), punts);
  EXPECT_EQ(h1->receivedCount(), 2u);
}

TEST(L2LearningShielded, SameBehaviourThroughTheShield) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h2 = network.addHost(1, 5, of::MacAddress::fromUint64(0xBB),
                            of::Ipv4Address(10, 0, 0, 99));

  iso::ShieldRuntime shield(controller);
  auto app = std::make_shared<L2LearningSwitch>();
  shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));

  h1->send(tcpSyn(*h1, *h2));
  ASSERT_TRUE(h2->waitForPackets(1, 2000ms));
  h2->send(tcpSyn(*h2, *h1));
  ASSERT_TRUE(h1->waitForPackets(1, 2000ms));
  EXPECT_EQ(app->rulesInstalled(), 1u);
  EXPECT_EQ(network.switchAt(1)->flowCount(), 1u);
}

TEST(L2LearningShielded, ManifestParsesAndGrantsExpectedTokens) {
  L2LearningSwitch app;
  auto manifest = lang::parseManifest(app.requestedManifest());
  EXPECT_EQ(manifest.appName, "l2_learning");
  EXPECT_TRUE(manifest.permissions.has(perm::Token::kPktInEvent));
  EXPECT_TRUE(manifest.permissions.has(perm::Token::kSendPktOut));
  EXPECT_TRUE(manifest.permissions.has(perm::Token::kInsertFlow));
  EXPECT_FALSE(manifest.permissions.has(perm::Token::kHostNetwork));
}

TEST(RoutingBaseline, InstallsPathAndDeliversAcrossChain) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h3 = network.hostByIp(of::Ipv4Address(10, 0, 0, 3));

  iso::BaselineRuntime runtime(controller);
  auto app = std::make_shared<ShortestPathRoutingApp>();
  runtime.loadApp(app);

  h1->send(tcpSyn(*h1, *h3));
  EXPECT_EQ(h3->receivedCount(), 1u);
  EXPECT_EQ(app->pathsInstalled(), 1u);
  // Per-hop rules installed along s1-s2-s3.
  EXPECT_EQ(network.switchAt(1)->flowCount(), 1u);
  EXPECT_EQ(network.switchAt(2)->flowCount(), 1u);
  EXPECT_EQ(network.switchAt(3)->flowCount(), 1u);
  // Follow-up packets ride the rules without new packet-ins.
  std::uint64_t punts = network.switchAt(1)->packetInCount();
  h1->send(tcpSyn(*h1, *h3));
  EXPECT_EQ(network.switchAt(1)->packetInCount(), punts);
  EXPECT_EQ(h3->receivedCount(), 2u);
}

TEST(RoutingShielded, WorksUnderScenario2Permissions) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h3 = network.hostByIp(of::Ipv4Address(10, 0, 0, 3));

  iso::ShieldRuntime shield(controller);
  auto app = std::make_shared<ShortestPathRoutingApp>();
  shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));

  h1->send(tcpSyn(*h1, *h3));
  ASSERT_TRUE(h3->waitForPackets(1, 2000ms));
  EXPECT_EQ(app->pathsInstalled(), 1u);
}

TEST(AltoTe, CostMapRoundTripsThroughEncoding) {
  std::vector<std::tuple<of::Ipv4Address, of::Ipv4Address, int>> map{
      {of::Ipv4Address(10, 0, 0, 1), of::Ipv4Address(10, 0, 0, 2), 3},
      {of::Ipv4Address(10, 0, 0, 2), of::Ipv4Address(10, 0, 0, 1), 3},
  };
  auto decoded = decodeCostMap(encodeCostMap(map));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(std::get<0>(decoded[0]), of::Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(std::get<2>(decoded[0]), 3);
  // Malformed entries are skipped, not fatal.
  EXPECT_TRUE(decodeCostMap("garbage;;1,2;").empty());
}

TEST(AltoTe, BaselinePipelinePublishesAndInstallsRoutes) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);

  iso::BaselineRuntime runtime(controller);
  auto alto = std::make_shared<AltoService>();
  auto te = std::make_shared<TrafficEngineeringApp>();
  runtime.loadApp(alto);
  runtime.loadApp(te);

  ASSERT_TRUE(alto->publishUpdate());
  EXPECT_EQ(alto->updatesPublished(), 1u);
  EXPECT_EQ(te->updatesProcessed(), 1u);
  EXPECT_GT(te->rulesInstalled(), 0u);
  // TE rules landed on the switches.
  EXPECT_GT(network.switchAt(2)->flowCount(), 0u);
}

TEST(AltoTe, ShieldedPipelineChecksAllFourMediationPoints) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);

  iso::ShieldRuntime shield(controller);
  auto alto = std::make_shared<AltoService>();
  auto te = std::make_shared<TrafficEngineeringApp>();
  of::AppId altoId =
      shield.loadApp(alto, lang::parsePermissions(alto->requestedManifest()));
  of::AppId teId =
      shield.loadApp(te, lang::parsePermissions(te->requestedManifest()));

  ASSERT_TRUE(alto->publishUpdate());
  // The TE app reacts on its own thread; drain it.
  shield.container(teId)->postAndWait([] {});
  EXPECT_EQ(te->updatesProcessed(), 1u);
  EXPECT_GT(te->rulesInstalled(), 0u);
  // The audit log saw the checks from both apps.
  EXPECT_FALSE(controller.audit().entriesFor(altoId).empty());
  EXPECT_FALSE(controller.audit().entriesFor(teId).empty());
}

TEST(AltoTe, TeWithoutInsertPermissionInstallsNothing) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);

  iso::ShieldRuntime shield(controller);
  auto alto = std::make_shared<AltoService>();
  auto te = std::make_shared<TrafficEngineeringApp>();
  shield.loadApp(alto, lang::parsePermissions(alto->requestedManifest()));
  // Strip insert_flow from the TE app's grant.
  auto granted = lang::parsePermissions(te->requestedManifest());
  granted.revoke(perm::Token::kInsertFlow);
  of::AppId teId = shield.loadApp(te, granted);

  ASSERT_TRUE(alto->publishUpdate());
  shield.container(teId)->postAndWait([] {});
  EXPECT_EQ(te->updatesProcessed(), 1u);
  EXPECT_EQ(te->rulesInstalled(), 0u);
  EXPECT_EQ(network.switchAt(2)->flowCount(), 0u);
}

TEST(Firewall, BlocksConfiguredPortAtChokepoint) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(3);
  auto h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
  auto h3 = network.hostByIp(of::Ipv4Address(10, 0, 0, 3));

  iso::BaselineRuntime runtime(controller);
  auto routing = std::make_shared<ShortestPathRoutingApp>();
  auto firewall = std::make_shared<FirewallApp>();
  runtime.loadApp(routing);
  runtime.loadApp(firewall);
  ASSERT_TRUE(firewall->blockTcpDstPort(2, 23));

  // Port 80 passes end to end.
  h1->send(tcpSyn(*h1, *h3, 80));
  EXPECT_EQ(h3->receivedCount(), 1u);
  // Port 23 dies at the chokepoint.
  h1->send(tcpSyn(*h1, *h3, 23));
  EXPECT_EQ(h3->receivedCount(), 1u);

  // Unblocking restores delivery.
  ASSERT_TRUE(firewall->unblockTcpDstPort(2, 23));
  h1->send(tcpSyn(*h1, *h3, 23));
  EXPECT_EQ(h3->receivedCount(), 2u);
}

TEST(Manifests, AllBundledAppManifestsParse) {
  std::vector<std::unique_ptr<ctrl::App>> apps;
  apps.push_back(std::make_unique<L2LearningSwitch>());
  apps.push_back(std::make_unique<AltoService>());
  apps.push_back(std::make_unique<TrafficEngineeringApp>());
  apps.push_back(std::make_unique<ShortestPathRoutingApp>());
  apps.push_back(std::make_unique<FirewallApp>());
  for (const auto& app : apps) {
    auto manifest = lang::parseManifest(app->requestedManifest());
    EXPECT_EQ(manifest.appName, app->name());
    EXPECT_FALSE(manifest.permissions.empty()) << app->name();
  }
}

TEST(Manifests, RoutingManifestPassesScenario2BoundaryPolicy) {
  ShortestPathRoutingApp app;
  auto manifest = lang::parseManifest(app.requestedManifest());
  reconcile::Reconciler reconciler(lang::parsePolicy(
      "LET routingBound = {\n"
      "PERM visible_topology\nPERM pkt_in_event\nPERM flow_event\n"
      "PERM send_pkt_out LIMITING FROM_PKT_IN\n"
      "PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\n"
      "}\n"
      "LET appPerm = APP routing\n"
      "ASSERT appPerm <= routingBound\n"));
  auto result = reconciler.reconcile(manifest);
  EXPECT_TRUE(result.clean());
}

}  // namespace
}  // namespace sdnshield::apps
