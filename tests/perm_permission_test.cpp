// PermissionSet: grant/revoke/restrict semantics and the MEET/JOIN lattice
// the reconciliation engine relies on.
#include "core/perm/permission.h"

#include <gtest/gtest.h>

#include <random>

namespace sdnshield::perm {
namespace {

FilterExprPtr ipDst(std::uint8_t b, int bits) {
  return FilterExpr::singleton(FilterPtr{new FieldPredicateFilter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, b, 0, 0),
                     of::Ipv4Address::prefixMask(bits)})});
}

FilterExprPtr maxPriority(std::uint16_t bound) {
  return FilterExpr::singleton(FilterPtr{new PriorityFilter(true, bound)});
}

TEST(PermissionSet, GrantAndQuery) {
  PermissionSet set;
  EXPECT_TRUE(set.empty());
  set.grant(Token::kInsertFlow, ipDst(1, 16));
  set.grant(Token::kReadStatistics);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.has(Token::kInsertFlow));
  EXPECT_FALSE(set.has(Token::kDeleteFlow));
  ASSERT_TRUE(set.filterFor(Token::kInsertFlow).has_value());
  EXPECT_NE(*set.filterFor(Token::kInsertFlow), nullptr);
  EXPECT_EQ(*set.filterFor(Token::kReadStatistics), nullptr);  // Unrestricted.
  EXPECT_FALSE(set.filterFor(Token::kDeleteFlow).has_value());
}

TEST(PermissionSet, RegrantWidensByDisjunction) {
  PermissionSet set;
  set.grant(Token::kInsertFlow, ipDst(1, 16));
  set.grant(Token::kInsertFlow, ipDst(2, 16));
  PermissionSet either;
  either.grant(Token::kInsertFlow,
               FilterExpr::disj(ipDst(1, 16), ipDst(2, 16)));
  EXPECT_TRUE(set.equivalent(either));
}

TEST(PermissionSet, UnrestrictedGrantAbsorbsFilters) {
  PermissionSet set;
  set.grant(Token::kInsertFlow, ipDst(1, 16));
  set.grant(Token::kInsertFlow);  // Now unrestricted.
  EXPECT_EQ(*set.filterFor(Token::kInsertFlow), nullptr);
}

TEST(PermissionSet, RestrictConjoins) {
  PermissionSet set;
  set.grant(Token::kInsertFlow, ipDst(1, 16));
  set.restrict(Token::kInsertFlow, maxPriority(100));
  PermissionSet expected;
  expected.grant(Token::kInsertFlow,
                 FilterExpr::conj(ipDst(1, 16), maxPriority(100)));
  EXPECT_TRUE(set.equivalent(expected));
  // Restricting an unrestricted grant installs the filter.
  PermissionSet open;
  open.grant(Token::kReadFlowTable);
  open.restrict(Token::kReadFlowTable, ipDst(1, 16));
  EXPECT_NE(*open.filterFor(Token::kReadFlowTable), nullptr);
  // Restricting an absent token is a no-op.
  open.restrict(Token::kDeleteFlow, ipDst(1, 16));
  EXPECT_FALSE(open.has(Token::kDeleteFlow));
}

TEST(PermissionSet, RevokeRemovesToken) {
  PermissionSet set;
  set.grant(Token::kInsertFlow);
  set.revoke(Token::kInsertFlow);
  EXPECT_FALSE(set.has(Token::kInsertFlow));
}

TEST(PermissionSet, IncludesRequiresTokenCoverage) {
  PermissionSet big;
  big.grant(Token::kInsertFlow);
  big.grant(Token::kReadStatistics);
  PermissionSet small;
  small.grant(Token::kInsertFlow, ipDst(1, 16));
  EXPECT_TRUE(big.includes(small));
  EXPECT_FALSE(small.includes(big));  // Missing read_statistics + narrower.
}

TEST(PermissionSet, IncludesComparesFiltersPerToken) {
  PermissionSet wide;
  wide.grant(Token::kInsertFlow, ipDst(1, 8));
  PermissionSet narrow;
  narrow.grant(Token::kInsertFlow, ipDst(1, 16));
  // 10.1/8? Note ipDst(1,8) is 10.0.0.0/8 canonically; includes 10.1/16.
  EXPECT_TRUE(wide.includes(narrow));
  EXPECT_FALSE(narrow.includes(wide));
}

TEST(PermissionSet, MeetKeepsCommonTokensWithNarrowerFilter) {
  PermissionSet a;
  a.grant(Token::kInsertFlow, ipDst(1, 8));
  a.grant(Token::kReadStatistics);
  PermissionSet b;
  b.grant(Token::kInsertFlow, ipDst(1, 16));
  b.grant(Token::kDeleteFlow);
  PermissionSet met = PermissionSet::meet(a, b);
  EXPECT_EQ(met.size(), 1u);
  ASSERT_TRUE(met.has(Token::kInsertFlow));
  // Provable inclusion keeps the narrower operand verbatim.
  EXPECT_TRUE(filterEquivalent(*met.filterFor(Token::kInsertFlow), ipDst(1, 16)));
}

TEST(PermissionSet, MeetOfIncomparableFiltersConjoins) {
  PermissionSet a;
  a.grant(Token::kInsertFlow, ipDst(1, 16));
  PermissionSet b;
  b.grant(Token::kInsertFlow, maxPriority(100));
  PermissionSet met = PermissionSet::meet(a, b);
  PermissionSet expected;
  expected.grant(Token::kInsertFlow,
                 FilterExpr::conj(ipDst(1, 16), maxPriority(100)));
  EXPECT_TRUE(met.equivalent(expected));
}

TEST(PermissionSet, MeetWithUnrestrictedKeepsOtherFilter) {
  PermissionSet a;
  a.grant(Token::kInsertFlow);
  PermissionSet b;
  b.grant(Token::kInsertFlow, ipDst(1, 16));
  PermissionSet met = PermissionSet::meet(a, b);
  EXPECT_TRUE(filterEquivalent(*met.filterFor(Token::kInsertFlow), ipDst(1, 16)));
}

TEST(PermissionSet, JoinUnionsTokensAndWidensFilters) {
  PermissionSet a;
  a.grant(Token::kInsertFlow, ipDst(1, 16));
  PermissionSet b;
  b.grant(Token::kInsertFlow, ipDst(2, 16));
  b.grant(Token::kDeleteFlow);
  PermissionSet joined = PermissionSet::join(a, b);
  EXPECT_EQ(joined.size(), 2u);
  EXPECT_TRUE(joined.includes(a));
  EXPECT_TRUE(joined.includes(b));
}

TEST(PermissionSet, StubCollectionAndSubstitution) {
  PermissionSet set;
  set.grant(Token::kHostNetwork,
            FilterExpr::singleton(FilterPtr{new StubFilter("AdminRange")}));
  EXPECT_EQ(set.collectStubs().size(), 1u);
  std::map<std::string, FilterExprPtr> bindings{
      {"AdminRange", ipDst(1, 16)}};
  PermissionSet substituted = set.substituteStubs(bindings);
  EXPECT_TRUE(substituted.collectStubs().empty());
  EXPECT_TRUE(
      filterEquivalent(*substituted.filterFor(Token::kHostNetwork), ipDst(1, 16)));
}

TEST(PermissionSet, ToStringUsesPermissionLanguage) {
  PermissionSet set;
  set.grant(Token::kInsertFlow, ipDst(1, 16));
  set.grant(Token::kReadStatistics);
  std::string text = set.toString();
  EXPECT_NE(text.find("PERM insert_flow LIMITING"), std::string::npos);
  EXPECT_NE(text.find("PERM read_statistics"), std::string::npos);
}

// --- lattice property tests ------------------------------------------------------

class LatticePropertyTest : public ::testing::TestWithParam<unsigned> {};

PermissionSet randomSet(std::mt19937& rng) {
  PermissionSet set;
  const Token tokens[] = {Token::kInsertFlow, Token::kDeleteFlow,
                          Token::kReadStatistics, Token::kHostNetwork};
  for (Token token : tokens) {
    switch (rng() % 3) {
      case 0:
        break;  // Not granted.
      case 1:
        set.grant(token);
        break;
      default:
        set.grant(token, ipDst(static_cast<std::uint8_t>(rng() % 3),
                               (rng() % 2) ? 8 : 16));
        break;
    }
  }
  return set;
}

TEST_P(LatticePropertyTest, MeetIsLowerBound) {
  std::mt19937 rng(GetParam());
  PermissionSet a = randomSet(rng);
  PermissionSet b = randomSet(rng);
  PermissionSet met = PermissionSet::meet(a, b);
  EXPECT_TRUE(a.includes(met));
  EXPECT_TRUE(b.includes(met));
}

TEST_P(LatticePropertyTest, JoinIsUpperBound) {
  std::mt19937 rng(GetParam() + 100);
  PermissionSet a = randomSet(rng);
  PermissionSet b = randomSet(rng);
  PermissionSet joined = PermissionSet::join(a, b);
  EXPECT_TRUE(joined.includes(a));
  EXPECT_TRUE(joined.includes(b));
}

TEST_P(LatticePropertyTest, MeetJoinCommute) {
  std::mt19937 rng(GetParam() + 200);
  PermissionSet a = randomSet(rng);
  PermissionSet b = randomSet(rng);
  EXPECT_TRUE(
      PermissionSet::meet(a, b).equivalent(PermissionSet::meet(b, a)));
  EXPECT_TRUE(
      PermissionSet::join(a, b).equivalent(PermissionSet::join(b, a)));
}

TEST_P(LatticePropertyTest, IncludesIsReflexiveAndAbsorbs) {
  std::mt19937 rng(GetParam() + 300);
  PermissionSet a = randomSet(rng);
  EXPECT_TRUE(a.includes(a));
  EXPECT_TRUE(a.includes(PermissionSet::meet(a, a)));
  EXPECT_TRUE(PermissionSet::join(a, a).includes(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticePropertyTest,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace sdnshield::perm
