// Security-policy-language parser tests, anchored on the paper's §V and §VII
// listings.
#include "core/lang/policy_parser.h"

#include <gtest/gtest.h>

#include "core/lang/printer.h"

namespace sdnshield::lang {
namespace {

TEST(PolicyParser, PaperMutualExclusionExample) {
  // §V: ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }.
  PolicyProgram program = parsePolicy(
      "ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }\n");
  ASSERT_EQ(program.constraints.size(), 1u);
  const Constraint& constraint = program.constraints[0];
  EXPECT_EQ(constraint.kind, Constraint::Kind::kMutualExclusion);
  ASSERT_EQ(constraint.exclusiveA->kind, PermSetExpr::Kind::kLiteral);
  EXPECT_TRUE(constraint.exclusiveA->literal.has(perm::Token::kHostNetwork));
  EXPECT_TRUE(constraint.exclusiveB->literal.has(perm::Token::kSendPktOut));
}

TEST(PolicyParser, PaperBoundaryTemplateExample) {
  // §V: monitoring apps bounded by a template permission set.
  PolicyProgram program = parsePolicy(
      "LET templatePerm = {\n"
      "PERM read_topology\n"
      "PERM read_statistics LIMITING PORT_LEVEL\n"
      "PERM network_access LIMITING \\\n"
      "IP_DST 192.168.0.0 MASK 255.255.0.0\n"
      "}\n"
      "ASSERT monitorAppPerm <= templatePerm\n");
  ASSERT_TRUE(program.setBindings.contains("templatePerm"));
  const PermSetExprPtr& binding = program.setBindings.at("templatePerm");
  EXPECT_EQ(binding->kind, PermSetExpr::Kind::kLiteral);
  EXPECT_EQ(binding->literal.size(), 3u);
  ASSERT_EQ(program.constraints.size(), 1u);
  const Constraint& constraint = program.constraints[0];
  EXPECT_EQ(constraint.kind, Constraint::Kind::kAssertion);
  EXPECT_EQ(constraint.assertion->kind, BoolExpr::Kind::kCompare);
  EXPECT_EQ(constraint.assertion->op, CmpOp::kLe);
  EXPECT_EQ(constraint.assertion->lhs->kind, PermSetExpr::Kind::kVar);
  EXPECT_EQ(constraint.assertion->lhs->name, "monitorAppPerm");
}

TEST(PolicyParser, PaperScenario1Policy) {
  // §VII Scenario 1: stub bindings + mutual exclusion.
  PolicyProgram program = parsePolicy(
      "LET LocalTopo = {SWITCH 0,1 LINK {(0,1)}}\n"
      "LET AdminRange = {IP_DST 10.1.0.0 \\\n"
      "MASK 255.255.0.0}\n"
      "ASSERT EITHER { PERM network_access } \\\n"
      "OR { PERM insert_flow }\n");
  EXPECT_TRUE(program.filterBindings.contains("LocalTopo"));
  EXPECT_TRUE(program.filterBindings.contains("AdminRange"));
  ASSERT_EQ(program.constraints.size(), 1u);
  EXPECT_EQ(program.constraints[0].kind, Constraint::Kind::kMutualExclusion);
}

TEST(PolicyParser, LetBindingToAppReference) {
  PolicyProgram program = parsePolicy("LET monitorAppPerm = APP monitoring\n");
  const PermSetExprPtr& binding = program.setBindings.at("monitorAppPerm");
  EXPECT_EQ(binding->kind, PermSetExpr::Kind::kApp);
  EXPECT_EQ(binding->name, "monitoring");
}

TEST(PolicyParser, MeetAndJoinExpressions) {
  PolicyProgram program = parsePolicy(
      "LET a = { PERM insert_flow }\n"
      "LET b = { PERM delete_flow }\n"
      "LET c = a MEET b JOIN { PERM read_statistics }\n");
  const PermSetExprPtr& c = program.setBindings.at("c");
  // Left-associative: (a MEET b) JOIN {...}.
  EXPECT_EQ(c->kind, PermSetExpr::Kind::kJoin);
  EXPECT_EQ(c->lhs->kind, PermSetExpr::Kind::kMeet);
}

TEST(PolicyParser, BooleanAssertionsWithAndOrNot) {
  PolicyProgram program = parsePolicy(
      "LET a = { PERM insert_flow }\n"
      "LET b = { PERM delete_flow }\n"
      "ASSERT a <= b AND NOT b <= a\n");
  ASSERT_EQ(program.constraints.size(), 1u);
  const BoolExprPtr& expr = program.constraints[0].assertion;
  EXPECT_EQ(expr->kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(expr->b->kind, BoolExpr::Kind::kNot);
}

TEST(PolicyParser, ParenthesisedBooleanAssertion) {
  PolicyProgram program = parsePolicy(
      "LET a = { PERM insert_flow }\n"
      "ASSERT (a <= a OR a < a) AND a = a\n");
  const BoolExprPtr& expr = program.constraints[0].assertion;
  EXPECT_EQ(expr->kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(expr->a->kind, BoolExpr::Kind::kOr);
  EXPECT_EQ(expr->b->op, CmpOp::kEq);
}

TEST(PolicyParser, AllComparisonOperators) {
  PolicyProgram program = parsePolicy(
      "LET a = { PERM insert_flow }\n"
      "ASSERT a <= a\n"
      "ASSERT a >= a\n"
      "ASSERT a < a\n"
      "ASSERT a > a\n"
      "ASSERT a = a\n");
  ASSERT_EQ(program.constraints.size(), 5u);
  EXPECT_EQ(program.constraints[0].assertion->op, CmpOp::kLe);
  EXPECT_EQ(program.constraints[1].assertion->op, CmpOp::kGe);
  EXPECT_EQ(program.constraints[2].assertion->op, CmpOp::kLt);
  EXPECT_EQ(program.constraints[3].assertion->op, CmpOp::kGt);
  EXPECT_EQ(program.constraints[4].assertion->op, CmpOp::kEq);
}

TEST(PolicyParser, EmptyPermSetLiteral) {
  PolicyProgram program = parsePolicy("LET none = { }\n");
  EXPECT_EQ(program.setBindings.at("none")->literal.size(), 0u);
}

TEST(PolicyParser, ConstraintLineNumbersAreRecorded) {
  PolicyProgram program = parsePolicy(
      "LET a = { PERM insert_flow }\n"
      "\n"
      "ASSERT a <= a\n");
  ASSERT_EQ(program.constraints.size(), 1u);
  EXPECT_EQ(program.constraints[0].line, 3);
}

TEST(PolicyParser, RejectsMalformedStatements) {
  EXPECT_THROW(parsePolicy("FOO bar\n"), ParseError);
  EXPECT_THROW(parsePolicy("LET a\n"), ParseError);
  EXPECT_THROW(parsePolicy("ASSERT EITHER { PERM insert_flow }\n"),
               ParseError);
  EXPECT_THROW(parsePolicy("LET a = { PERM insert_flow }\nASSERT a\n"),
               ParseError);
}

TEST(PolicyParser, PrintedPolicyReparses) {
  PolicyProgram program = parsePolicy(
      "LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}\n"
      "LET tmpl = { PERM read_statistics LIMITING PORT_LEVEL }\n"
      "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n"
      "ASSERT appPerm <= tmpl\n");
  PolicyProgram reparsed = parsePolicy(formatPolicy(program));
  EXPECT_EQ(reparsed.filterBindings.size(), program.filterBindings.size());
  EXPECT_EQ(reparsed.setBindings.size(), program.setBindings.size());
  EXPECT_EQ(reparsed.constraints.size(), program.constraints.size());
}

}  // namespace
}  // namespace sdnshield::lang
