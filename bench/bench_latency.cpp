// Figure 6 — end-to-end control-plane latency, original (baseline) vs
// SDNShield-enabled controller, in the two §IX-A scenarios:
//   (a) L2 learning switch: flow-arrival round trip (packet-in -> flow-mod +
//       packet-out observed at the destination host), varying switch count;
//   (b) ALTO + traffic engineering: ALTO update -> TE routing rules
//       installed.
// Each point: repeated measurements, median with 10th/90th percentiles (the
// paper's bars + error bars). The claim to reproduce: the SDNShield columns
// are nearly indistinguishable from baseline (tens of microseconds of
// overhead).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "apps/alto.h"
#include "apps/l2_learning.h"
#include "apps/traffic_engineering.h"
#include "cbench/generator.h"
#include "core/engine/permission_engine.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace {

using namespace sdnshield;
using namespace std::chrono_literals;

constexpr std::size_t kL2Rounds = 100;   // Paper: 100 repetitions.
constexpr std::size_t kAltoRounds = 30;

struct Percentiles {
  double p10 = 0;
  double median = 0;
  double p90 = 0;
};

Percentiles percentiles(std::vector<double> samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double p) {
    return samples[static_cast<std::size_t>(p * (samples.size() - 1))];
  };
  out.p10 = at(0.1);
  out.median = at(0.5);
  out.p90 = at(0.9);
  return out;
}

cbench::LatencyStats runL2(std::size_t switches, bool shielded,
                           std::chrono::microseconds channelDelay = 0us) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(switches);
  if (channelDelay.count() > 0) {
    for (const auto& sw : network.switches()) {
      sw->setControlChannelDelay(channelDelay);
    }
  }
  auto app = std::make_shared<apps::L2LearningSwitch>();

  std::unique_ptr<iso::BaselineRuntime> baseline;
  std::unique_ptr<iso::ShieldRuntime> shield;
  if (shielded) {
    shield = std::make_unique<iso::ShieldRuntime>(controller);
    shield->loadApp(app, lang::parsePermissions(app->requestedManifest()));
  } else {
    baseline = std::make_unique<iso::BaselineRuntime>(controller);
    baseline->loadApp(app);
  }
  cbench::Generator generator(network);
  generator.setup();
  return generator.runLatency(kL2Rounds);
}

Percentiles runAltoTe(std::size_t switches, bool shielded) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(switches);
  auto alto = std::make_shared<apps::AltoService>();
  auto te = std::make_shared<apps::TrafficEngineeringApp>();

  std::unique_ptr<iso::BaselineRuntime> baseline;
  std::unique_ptr<iso::ShieldRuntime> shield;
  if (shielded) {
    shield = std::make_unique<iso::ShieldRuntime>(controller);
    shield->loadApp(alto, lang::parsePermissions(alto->requestedManifest()));
    shield->loadApp(te, lang::parsePermissions(te->requestedManifest()));
  } else {
    baseline = std::make_unique<iso::BaselineRuntime>(controller);
    baseline->loadApp(alto);
    baseline->loadApp(te);
  }

  std::vector<double> samplesUs;
  for (std::size_t round = 0; round < kAltoRounds; ++round) {
    std::uint64_t before = te->updatesProcessed();
    auto start = std::chrono::steady_clock::now();
    alto->publishUpdate();
    // The round completes when the TE app has reacted to the update (its
    // handler installs the refreshed routing rules before bumping the
    // counter's visibility here is adequate for both deployments).
    while (te->updatesProcessed() == before) {
      std::this_thread::yield();
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    samplesUs.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  return percentiles(samplesUs);
}

}  // namespace

int main() {
  engine::PermissionEngine::resetMemoStats();
  std::printf("=== Figure 6a: L2 learning switch control-plane latency ===\n");
  std::printf("%-10s %-12s %12s %12s %12s %10s\n", "switches", "controller",
              "p10(us)", "median(us)", "p90(us)", "timeouts");
  for (std::size_t switches : {2u, 4u, 8u, 16u}) {
    for (bool shielded : {false, true}) {
      cbench::LatencyStats stats = runL2(switches, shielded);
      std::printf("%-10zu %-12s %12.1f %12.1f %12.1f %10zu\n", switches,
                  shielded ? "SDNShield" : "baseline", stats.p10Us,
                  stats.medianUs, stats.p90Us, stats.timeouts);
    }
  }

  // The paper's testbed measures across a physical control channel (plus a
  // JVM controller), so its baseline latency is dominated by ~100s of us of
  // channel time — against which SDNShield's overhead is "almost
  // unnoticeable". Emulate that channel to reproduce the relative shape.
  std::printf(
      "\n=== Figure 6a': same, with a 200us emulated control channel ===\n");
  std::printf("%-10s %-12s %12s %12s %12s %10s\n", "switches", "controller",
              "p10(us)", "median(us)", "p90(us)", "timeouts");
  for (std::size_t switches : {2u, 8u}) {
    for (bool shielded : {false, true}) {
      cbench::LatencyStats stats = runL2(switches, shielded, 200us);
      std::printf("%-10zu %-12s %12.1f %12.1f %12.1f %10zu\n", switches,
                  shielded ? "SDNShield" : "baseline", stats.p10Us,
                  stats.medianUs, stats.p90Us, stats.timeouts);
    }
  }

  std::printf("\n=== Figure 6b: ALTO + TE update-to-rules latency ===\n");
  std::printf("%-10s %-12s %12s %12s %12s\n", "switches", "controller",
              "p10(us)", "median(us)", "p90(us)");
  for (std::size_t switches : {2u, 4u, 8u}) {
    for (bool shielded : {false, true}) {
      Percentiles stats = runAltoTe(switches, shielded);
      std::printf("%-10zu %-12s %12.1f %12.1f %12.1f\n", switches,
                  shielded ? "SDNShield" : "baseline", stats.p10,
                  stats.median, stats.p90);
    }
  }
  std::printf(
      "\nExpected shape (paper): SDNShield bars nearly indistinguishable "
      "from baseline;\noverhead tens of microseconds, far below data-center "
      "end-to-end latency.\n");

  // Decision-memo effectiveness across every shielded run above (checks run
  // on deputy threads; the counters are process-wide). Emitted as JSON so
  // the number can be scraped into BENCH_perm_engine.json / EXPERIMENTS.md.
  engine::MemoStats memo = engine::PermissionEngine::memoStats();
  std::printf(
      "\n{\"bench\":\"bench_latency\",\"decision_memo\":{\"hits\":%llu,"
      "\"misses\":%llu,\"hit_rate\":%.4f}}\n",
      static_cast<unsigned long long>(memo.hits),
      static_cast<unsigned long long>(memo.misses), memo.hitRate());
  return 0;
}
