// Ablation bench — reconciliation-time filter algebra: Algorithm 1 inclusion
// cost and CNF/DNF conversion cost as filter expressions grow. These run at
// app installation, not on the enforcement path; the paper reports the
// whole reconciliation never exceeding one second.
#include <benchmark/benchmark.h>

#include "core/perm/normal_form.h"

namespace {

using namespace sdnshield;
using perm::FilterExpr;
using perm::FilterExprPtr;
using perm::FilterPtr;

FilterExprPtr ipDstClause(std::uint8_t subnet, int bits) {
  return FilterExpr::singleton(FilterPtr{new perm::FieldPredicateFilter(
      of::MatchField::kIpDst,
      of::MaskedIpv4{of::Ipv4Address(10, subnet, 0, 0),
                     of::Ipv4Address::prefixMask(bits)})});
}

/// OR of `clauses` conjunctions, each (IP_DST /16 AND MAX_PRIORITY).
FilterExprPtr makeDisjunctive(int clauses) {
  FilterExprPtr expr;
  for (int c = 0; c < clauses; ++c) {
    FilterExprPtr clause = FilterExpr::conj(
        ipDstClause(static_cast<std::uint8_t>(c), 16),
        FilterExpr::singleton(
            FilterPtr{new perm::PriorityFilter(true, 100)}));
    expr = expr ? FilterExpr::disj(expr, clause) : clause;
  }
  return expr;
}

void BM_ToCnf(benchmark::State& state) {
  FilterExprPtr expr = makeDisjunctive(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm::toCnf(expr));
  }
}
BENCHMARK(BM_ToCnf)->Arg(2)->Arg(4)->Arg(8);

void BM_ToDnf(benchmark::State& state) {
  FilterExprPtr expr = makeDisjunctive(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm::toDnf(expr));
  }
}
BENCHMARK(BM_ToDnf)->Arg(2)->Arg(4)->Arg(8);

void BM_Algorithm1Inclusion(benchmark::State& state) {
  int clauses = static_cast<int>(state.range(0));
  FilterExprPtr wide = makeDisjunctive(clauses);
  // A narrower expression: the first clause, shrunk to /24.
  FilterExprPtr narrow = FilterExpr::conj(
      ipDstClause(0, 24),
      FilterExpr::singleton(FilterPtr{new perm::PriorityFilter(true, 50)}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm::filterIncludes(wide, narrow));
  }
}
BENCHMARK(BM_Algorithm1Inclusion)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Algorithm1SelfInclusion(benchmark::State& state) {
  FilterExprPtr expr = makeDisjunctive(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm::filterIncludes(expr, expr));
  }
}
BENCHMARK(BM_Algorithm1SelfInclusion)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
