// Shared google-benchmark main for the sdns_gbench targets. Adds one flag
// on top of the stock benchmark_main:
//   --obs=on|off  (default on; --no-obs is an alias for --obs=off)
// toggling the observability registry before any benchmark runs, so the
// same binary prices the instrumented and uninstrumented hot paths.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "obs/metrics.h"

int main(int argc, char** argv) {
  bool obsEnabled = true;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs=off") == 0 ||
        std::strcmp(argv[i], "--no-obs") == 0) {
      obsEnabled = false;
      continue;
    }
    if (std::strcmp(argv[i], "--obs") == 0 ||
        std::strcmp(argv[i], "--obs=on") == 0) {
      obsEnabled = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  sdnshield::obs::Registry::setEnabled(obsEnabled);
  int filteredArgc = static_cast<int>(args.size());
  benchmark::Initialize(&filteredArgc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filteredArgc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
