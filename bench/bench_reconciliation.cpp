// §IX-A — reconciliation engine pressure test. Reconciliation happens at app
// installation time only; the paper reports that its processing time "never
// exceeds one second during our pressure tests". This harness reconciles
// increasingly large manifests against increasingly large policy programs
// and reports wall-clock time per reconciliation.
//
// --live adds the app-market live-update rows: N installed apps are
// re-reconciled against a new policy and their grants swapped in ONE atomic
// permission epoch (PermissionEngine::installAll), while reader threads
// hammer check() the whole time — the row reports the policy-update wall
// time and the readers' p99 check latency DURING the swaps. Output is JSONL
// (one live_update_row per N), schema-checked by CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine/permission_engine.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/reconcile/reconciler.h"

namespace {

using namespace sdnshield;

/// A manifest exercising every token with layered filters and two stubs.
std::string makeManifestText(int filterClauses) {
  std::ostringstream out;
  out << "APP pressure\n";
  out << "PERM visible_topology LIMITING LocalTopo\n";
  out << "PERM network_access LIMITING AdminRange\n";
  out << "PERM read_statistics LIMITING PORT_LEVEL OR SWITCH_LEVEL\n";
  out << "PERM send_pkt_out LIMITING FROM_PKT_IN\n";
  out << "PERM delete_flow LIMITING OWN_FLOWS\n";
  out << "PERM insert_flow LIMITING ";
  for (int i = 0; i < filterClauses; ++i) {
    if (i > 0) out << " OR ";
    out << "(IP_DST 10." << (i % 250) << ".0.0 MASK 255.255.0.0 AND "
        << "MAX_PRIORITY 100 AND OWN_FLOWS)";
  }
  out << "\n";
  return out.str();
}

/// A policy with stub bindings, a boundary template and exclusions.
std::string makePolicyText(int boundaryClauses) {
  std::ostringstream out;
  out << "LET LocalTopo = {SWITCH 1,2,3,4 LINK {(1,2),(2,3),(3,4)}}\n";
  out << "LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}\n";
  out << "LET bound = {\n";
  out << "PERM visible_topology\nPERM network_access\n"
         "PERM read_statistics\nPERM send_pkt_out\nPERM delete_flow\n";
  out << "PERM insert_flow LIMITING ";
  for (int i = 0; i < boundaryClauses; ++i) {
    if (i > 0) out << " OR ";
    out << "IP_DST 10." << (i % 250) << ".0.0 MASK 255.255.0.0";
  }
  out << "\n}\n";
  out << "LET appPerm = APP pressure\n";
  out << "ASSERT appPerm <= bound\n";
  out << "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n";
  return out.str();
}

/// One live-update measurement: N installed apps, alternating policy pushes,
/// readers checking concurrently.
void runLiveUpdate(int apps) {
  using Clock = std::chrono::steady_clock;
  engine::PermissionEngine engine;

  // Every app ships the same pressure manifest; `APP pressure` in the
  // policy resolves to the manifest under reconciliation, so one policy
  // text re-reconciles all N apps.
  auto manifest = sdnshield::lang::parseManifest(makeManifestText(4));
  reconcile::Reconciler policyA(sdnshield::lang::parsePolicy(makePolicyText(4)));
  reconcile::Reconciler policyB(sdnshield::lang::parsePolicy(makePolicyText(8)));

  // Initial install under policy A (one atomic epoch).
  std::vector<std::pair<of::AppId, perm::PermissionSet>> grants;
  auto initial = policyA.reconcile(manifest);
  for (int i = 0; i < apps; ++i) {
    grants.emplace_back(static_cast<of::AppId>(i + 1),
                        initial.finalPermissions);
  }
  engine.installAll(grants);

  // Readers hammer check() across all apps for the whole run; each sample
  // is one check's wall time.
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::vector<std::int64_t>> samples(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        of::AppId app = static_cast<of::AppId>(1 + (n++ % apps));
        perm::ApiCall call;
        call.type = perm::ApiCallType::kReadStatistics;
        call.app = app;
        call.statsLevel = of::StatsLevel::kSwitch;
        auto start = Clock::now();
        (void)engine.check(call);
        samples[r].push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start)
                .count());
      }
    });
  }

  // Alternating live policy updates: each update re-reconciles every app
  // and publishes all new grants with ONE installAll (one epoch bump).
  constexpr int kUpdates = 6;
  double totalUpdateMs = 0.0;
  std::uint64_t epochBefore = engine.epoch();
  for (int u = 0; u < kUpdates; ++u) {
    const reconcile::Reconciler& policy = (u % 2 == 0) ? policyB : policyA;
    auto start = Clock::now();
    std::vector<std::pair<of::AppId, perm::PermissionSet>> next;
    next.reserve(apps);
    auto result = policy.reconcile(manifest);
    for (int i = 0; i < apps; ++i) {
      next.emplace_back(static_cast<of::AppId>(i + 1),
                        result.finalPermissions);
    }
    engine.installAll(next);
    totalUpdateMs +=
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
  }
  std::uint64_t epochs = engine.epoch() - epochBefore;
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  std::vector<std::int64_t> all;
  for (auto& perReader : samples) {
    all.insert(all.end(), perReader.begin(), perReader.end());
  }
  std::sort(all.begin(), all.end());
  std::int64_t p99 =
      all.empty() ? 0 : all[static_cast<std::size_t>(all.size() * 99 / 100)];

  std::printf(
      "{\"bench\":\"bench_reconciliation\",\"mode\":\"live_update\","
      "\"apps\":%d,\"updates\":%d,\"update_ms\":%.3f,"
      "\"reader_p99_ns\":%lld,\"reader_checks\":%zu,\"epochs\":%llu}\n",
      apps, kUpdates, totalUpdateMs / kUpdates,
      static_cast<long long>(p99), all.size(),
      static_cast<unsigned long long>(epochs));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--live") == 0) {
    for (int apps : {8, 64, 256}) runLiveUpdate(apps);
    return 0;
  }
  std::printf("=== Reconciliation engine pressure test (install-time) ===\n");
  std::printf("%-16s %-16s %14s %12s\n", "manifest-clauses",
              "boundary-clauses", "time(ms)", "violations");
  for (int size : {4, 8, 16, 32, 64}) {
    auto manifest = sdnshield::lang::parseManifest(makeManifestText(size));
    reconcile::Reconciler reconciler(
        sdnshield::lang::parsePolicy(makePolicyText(size)));
    auto start = std::chrono::steady_clock::now();
    auto result = reconciler.reconcile(manifest);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    std::printf("%-16d %-16d %14.2f %12zu\n", size, size, ms,
                result.violations.size());
  }
  std::printf(
      "\nExpected shape (paper): reconciliation completes well under one "
      "second even\nunder pressure; it runs once per app installation, off "
      "the critical path.\n");
  return 0;
}
