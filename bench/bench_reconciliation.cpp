// §IX-A — reconciliation engine pressure test. Reconciliation happens at app
// installation time only; the paper reports that its processing time "never
// exceeds one second during our pressure tests". This harness reconciles
// increasingly large manifests against increasingly large policy programs
// and reports wall-clock time per reconciliation.
#include <chrono>
#include <cstdio>
#include <sstream>

#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/reconcile/reconciler.h"

namespace {

using namespace sdnshield;

/// A manifest exercising every token with layered filters and two stubs.
std::string makeManifestText(int filterClauses) {
  std::ostringstream out;
  out << "APP pressure\n";
  out << "PERM visible_topology LIMITING LocalTopo\n";
  out << "PERM network_access LIMITING AdminRange\n";
  out << "PERM read_statistics LIMITING PORT_LEVEL OR SWITCH_LEVEL\n";
  out << "PERM send_pkt_out LIMITING FROM_PKT_IN\n";
  out << "PERM delete_flow LIMITING OWN_FLOWS\n";
  out << "PERM insert_flow LIMITING ";
  for (int i = 0; i < filterClauses; ++i) {
    if (i > 0) out << " OR ";
    out << "(IP_DST 10." << (i % 250) << ".0.0 MASK 255.255.0.0 AND "
        << "MAX_PRIORITY 100 AND OWN_FLOWS)";
  }
  out << "\n";
  return out.str();
}

/// A policy with stub bindings, a boundary template and exclusions.
std::string makePolicyText(int boundaryClauses) {
  std::ostringstream out;
  out << "LET LocalTopo = {SWITCH 1,2,3,4 LINK {(1,2),(2,3),(3,4)}}\n";
  out << "LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}\n";
  out << "LET bound = {\n";
  out << "PERM visible_topology\nPERM network_access\n"
         "PERM read_statistics\nPERM send_pkt_out\nPERM delete_flow\n";
  out << "PERM insert_flow LIMITING ";
  for (int i = 0; i < boundaryClauses; ++i) {
    if (i > 0) out << " OR ";
    out << "IP_DST 10." << (i % 250) << ".0.0 MASK 255.255.0.0";
  }
  out << "\n}\n";
  out << "LET appPerm = APP pressure\n";
  out << "ASSERT appPerm <= bound\n";
  out << "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n";
  return out.str();
}

}  // namespace

int main() {
  std::printf("=== Reconciliation engine pressure test (install-time) ===\n");
  std::printf("%-16s %-16s %14s %12s\n", "manifest-clauses",
              "boundary-clauses", "time(ms)", "violations");
  for (int size : {4, 8, 16, 32, 64}) {
    auto manifest = sdnshield::lang::parseManifest(makeManifestText(size));
    reconcile::Reconciler reconciler(
        sdnshield::lang::parsePolicy(makePolicyText(size)));
    auto start = std::chrono::steady_clock::now();
    auto result = reconciler.reconcile(manifest);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    std::printf("%-16d %-16d %14.2f %12zu\n", size, size, ms,
                result.violations.size());
  }
  std::printf(
      "\nExpected shape (paper): reconciliation completes well under one "
      "second even\nunder pressure; it runs once per app installation, off "
      "the critical path.\n");
  return 0;
}
