// §IX-A — reconciliation engine pressure test. Reconciliation happens at app
// installation time only; the paper reports that its processing time "never
// exceeds one second during our pressure tests". This harness reconciles
// increasingly large manifests against increasingly large policy programs
// and reports wall-clock time per reconciliation.
//
// --live adds the app-market live-update rows: N installed apps are
// re-reconciled against a new policy and their grants swapped in ONE atomic
// permission epoch (PermissionEngine::installAll), while reader threads
// hammer check() the whole time — the row reports the policy-update wall
// time and the readers' p99 check latency DURING the swaps. Each N runs
// twice: path "cold" re-reconciles every app and recompiles every grant on
// every push (the PR 5 updatePolicy loop, emulated by disabling the
// compiled-program cache), path "cached" groups apps into reconcile units
// keyed by (policy, manifest, context) hashes — the market's
// ReconcileCache — and lets the CompiledProgramCache dedupe compilation,
// so a repeated push touches no reconciler at all (DESIGN.md §14). Output
// is JSONL (one live_update_row per N×path), schema-checked by CI.
// `--apps 8,64,4096` overrides the default population list.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine/permission_engine.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/reconcile/reconciler.h"
#include "market/reconcile_cache.h"

namespace {

using namespace sdnshield;

/// A manifest exercising every token with layered filters and two stubs.
std::string makeManifestText(int filterClauses) {
  std::ostringstream out;
  out << "APP pressure\n";
  out << "PERM visible_topology LIMITING LocalTopo\n";
  out << "PERM network_access LIMITING AdminRange\n";
  out << "PERM read_statistics LIMITING PORT_LEVEL OR SWITCH_LEVEL\n";
  out << "PERM send_pkt_out LIMITING FROM_PKT_IN\n";
  out << "PERM delete_flow LIMITING OWN_FLOWS\n";
  out << "PERM insert_flow LIMITING ";
  for (int i = 0; i < filterClauses; ++i) {
    if (i > 0) out << " OR ";
    out << "(IP_DST 10." << (i % 250) << ".0.0 MASK 255.255.0.0 AND "
        << "MAX_PRIORITY 100 AND OWN_FLOWS)";
  }
  out << "\n";
  return out.str();
}

/// A policy with stub bindings, a boundary template and exclusions.
std::string makePolicyText(int boundaryClauses) {
  std::ostringstream out;
  out << "LET LocalTopo = {SWITCH 1,2,3,4 LINK {(1,2),(2,3),(3,4)}}\n";
  // The admin range tracks the boundary width so differently-sized policy
  // texts also grant differently: a push from one to the other really
  // changes every app's network_access filter (and its compiled program).
  out << "LET AdminRange = {IP_DST 10." << boundaryClauses
      << ".0.0 MASK 255.255.0.0}\n";
  out << "LET bound = {\n";
  out << "PERM visible_topology\nPERM network_access\n"
         "PERM read_statistics\nPERM send_pkt_out\nPERM delete_flow\n";
  out << "PERM insert_flow LIMITING ";
  for (int i = 0; i < boundaryClauses; ++i) {
    if (i > 0) out << " OR ";
    out << "IP_DST 10." << (i % 250) << ".0.0 MASK 255.255.0.0";
  }
  out << "\n}\n";
  out << "LET appPerm = APP pressure\n";
  out << "ASSERT appPerm <= bound\n";
  out << "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n";
  return out.str();
}

/// One live-update measurement: N installed apps, alternating policy pushes,
/// readers checking concurrently. @p cached selects the incremental path
/// (reconcile-unit memo + compiled-program cache) vs the PR 5 full-recompile
/// loop. The process-wide inclusion memo stays warm in both paths, so the
/// cold row is a conservative (faster-than-PR-5) baseline.
void runLiveUpdate(int apps, bool cached) {
  using Clock = std::chrono::steady_clock;
  engine::PermissionEngine engine;
  auto& programCache = engine::CompiledProgramCache::global();
  programCache.clear();
  programCache.setEnabled(cached);

  // Apps ship one of kGroups distinct pressure manifests (real markets
  // cluster on a handful of manifest shapes); `APP pressure` in the policy
  // resolves to the manifest under reconciliation, so the reconcile result
  // is a pure function of (policy, manifest) and the unit key needs no
  // foreign-grant context.
  const int kGroups = std::min(apps, 16);
  std::vector<lang::PermissionManifest> manifests;
  std::vector<std::uint64_t> manifestHashes;
  for (int g = 0; g < kGroups; ++g) {
    std::string text = makeManifestText(3 + g % 4);
    text += "# group " + std::to_string(g) + "\n";
    manifests.push_back(sdnshield::lang::parseManifest(text));
    manifestHashes.push_back(market::fnv1aHash(text));
  }
  const std::string policyTextA = makePolicyText(4);
  const std::string policyTextB = makePolicyText(8);
  reconcile::Reconciler policyA(sdnshield::lang::parsePolicy(policyTextA));
  reconcile::Reconciler policyB(sdnshield::lang::parsePolicy(policyTextB));
  const std::uint64_t policyHashA = market::fnv1aHash(policyTextA);
  const std::uint64_t policyHashB = market::fnv1aHash(policyTextB);
  const std::uint64_t selfContext = market::fnv1aHash("self");

  // Initial install under policy A (one atomic epoch; setup, not measured —
  // reconciled once per group either way).
  std::vector<perm::PermissionSet> initialGrants;
  for (int g = 0; g < kGroups; ++g) {
    initialGrants.push_back(policyA.reconcile(manifests[g]).finalPermissions);
  }
  std::vector<std::pair<of::AppId, perm::PermissionSet>> grants;
  for (int i = 0; i < apps; ++i) {
    grants.emplace_back(static_cast<of::AppId>(i + 1),
                        initialGrants[i % kGroups]);
  }
  engine.installAll(grants);
  const auto compilesBefore = programCache.stats().misses;

  // Readers hammer check() across all apps for the whole run; each sample
  // is one check's wall time.
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::vector<std::int64_t>> samples(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        of::AppId app = static_cast<of::AppId>(1 + (n++ % apps));
        perm::ApiCall call;
        call.type = perm::ApiCallType::kReadStatistics;
        call.app = app;
        call.statsLevel = of::StatsLevel::kSwitch;
        auto start = Clock::now();
        (void)engine.check(call);
        samples[r].push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start)
                .count());
      }
    });
  }

  // Alternating live policy updates, each published with ONE installAll
  // (one epoch bump). Cold path: every app is re-reconciled and recompiled
  // on every push (the PR 5 loop). Cached path: apps collapse into
  // reconcile units keyed by (policy, manifest, context) — at most kGroups
  // reconciles on a first-seen policy, zero on a repeat — and installAll
  // reuses compiled programs through the enabled CompiledProgramCache.
  constexpr int kUpdates = 6;
  market::ReconcileCache unitCache;
  std::uint64_t reconciles = 0;
  double totalUpdateMs = 0.0;
  std::uint64_t epochBefore = engine.epoch();
  for (int u = 0; u < kUpdates; ++u) {
    const reconcile::Reconciler& policy = (u % 2 == 0) ? policyB : policyA;
    const std::uint64_t policyHash = (u % 2 == 0) ? policyHashB : policyHashA;
    auto start = Clock::now();
    if (cached) {
      // The market's updatePolicy shape: reconcile per unit (memo first),
      // compile once per unit, publish shared programs — per-app cost is
      // one map insert in the epoch swap.
      std::vector<
          std::shared_ptr<const sdnshield::engine::CompiledPermissions>>
          unitPrograms(kGroups);
      for (int g = 0; g < kGroups; ++g) {
        market::ReconcileKey key{policyHash, manifestHashes[g], selfContext};
        perm::PermissionSet grant;
        if (auto hit = unitCache.lookup(key)) {
          grant = std::move(*hit);
        } else {
          grant = policy.reconcile(manifests[g]).finalPermissions;
          ++reconciles;
          unitCache.insert(key, grant);
        }
        unitPrograms[g] = programCache.obtain(grant);
      }
      std::vector<std::pair<
          of::AppId, std::shared_ptr<const sdnshield::engine::CompiledPermissions>>>
          next;
      next.reserve(apps);
      for (int i = 0; i < apps; ++i) {
        next.emplace_back(static_cast<of::AppId>(i + 1),
                          unitPrograms[i % kGroups]);
      }
      engine.installAll(std::move(next));
    } else {
      // The PR 5 loop: every app re-reconciled, every grant recompiled
      // (the program cache is disabled on this path).
      std::vector<std::pair<of::AppId, perm::PermissionSet>> next;
      next.reserve(apps);
      for (int i = 0; i < apps; ++i) {
        auto result = policy.reconcile(manifests[i % kGroups]);
        ++reconciles;
        next.emplace_back(static_cast<of::AppId>(i + 1),
                          std::move(result.finalPermissions));
      }
      engine.installAll(next);
    }
    totalUpdateMs +=
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
  }
  std::uint64_t epochs = engine.epoch() - epochBefore;
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  const std::uint64_t compiles = programCache.stats().misses - compilesBefore;
  programCache.setEnabled(true);
  programCache.clear();

  std::vector<std::int64_t> all;
  for (auto& perReader : samples) {
    all.insert(all.end(), perReader.begin(), perReader.end());
  }
  std::sort(all.begin(), all.end());
  std::int64_t p99 =
      all.empty() ? 0 : all[static_cast<std::size_t>(all.size() * 99 / 100)];

  std::printf(
      "{\"bench\":\"bench_reconciliation\",\"mode\":\"live_update\","
      "\"path\":\"%s\",\"apps\":%d,\"manifest_groups\":%d,\"updates\":%d,"
      "\"update_ms\":%.3f,\"reconciles\":%llu,\"compiles\":%llu,"
      "\"reader_p99_ns\":%lld,\"reader_checks\":%zu,\"epochs\":%llu}\n",
      cached ? "cached" : "cold", apps, kGroups, kUpdates,
      totalUpdateMs / kUpdates, static_cast<unsigned long long>(reconciles),
      static_cast<unsigned long long>(compiles),
      static_cast<long long>(p99), all.size(),
      static_cast<unsigned long long>(epochs));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--live") == 0) {
    // CI smoke keeps the default list small; artifact generation passes
    // --apps 8,64,256,1024,4096,10240 (BENCH_reconciliation_live.json).
    std::vector<int> populations{8, 64, 256};
    if (argc > 3 && std::strcmp(argv[2], "--apps") == 0) {
      populations.clear();
      for (const char* cursor = argv[3]; *cursor != '\0';) {
        char* end = nullptr;
        long value = std::strtol(cursor, &end, 10);
        if (end == cursor || value <= 0) {
          std::fprintf(stderr, "bad --apps list: %s\n", argv[3]);
          return 2;
        }
        populations.push_back(static_cast<int>(value));
        cursor = (*end == ',') ? end + 1 : end;
      }
    }
    for (int apps : populations) {
      runLiveUpdate(apps, /*cached=*/false);
      runLiveUpdate(apps, /*cached=*/true);
    }
    return 0;
  }
  std::printf("=== Reconciliation engine pressure test (install-time) ===\n");
  std::printf("%-16s %-16s %14s %12s\n", "manifest-clauses",
              "boundary-clauses", "time(ms)", "violations");
  for (int size : {4, 8, 16, 32, 64}) {
    auto manifest = sdnshield::lang::parseManifest(makeManifestText(size));
    reconcile::Reconciler reconciler(
        sdnshield::lang::parsePolicy(makePolicyText(size)));
    auto start = std::chrono::steady_clock::now();
    auto result = reconciler.reconcile(manifest);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    std::printf("%-16d %-16d %14.2f %12zu\n", size, size, ms,
                result.violations.size());
  }
  std::printf(
      "\nExpected shape (paper): reconciliation completes well under one "
      "second even\nunder pressure; it runs once per app installation, off "
      "the critical path.\n");
  return 0;
}
