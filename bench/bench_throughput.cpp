// Figure 7 — end-to-end throughput pressure test, L2 learning switch
// scenario, original vs SDNShield-enabled controller, varying switch count.
// Every switch runs flow-arrival rounds back-to-back in parallel (CBench
// pressure mode).
//
// Two configurations:
//  * testbed-comparable: a 200us emulated switch<->controller control
//    channel (the paper measures across a physical network, where this
//    dominates). Claim to reproduce: SDNShield throughput within a few
//    percent of baseline.
//  * in-process stress: no channel at all — an upper bound that exposes the
//    raw thread-hand-off cost of the isolation architecture (quantified
//    further in bench_isolation_ablation). On a single-core host this cost
//    cannot be amortized and the gap is large by construction.
//
// --pressure compares the synchronous northbound (each packet-in blocks the
// app thread for a deputy round-trip) against the async pipelined one
// (insertFlowAsync/sendPacketOutAsync with a bounded in-flight window,
// deputy-side batch draining, vectorized flow-mod application). One JSON
// row per pipeline for EXPERIMENTS.md / CI schema validation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "apps/l2_learning.h"
#include "cbench/generator.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "shard/shard_runtime.h"
#include "switchsim/sim_network.h"

namespace {

using namespace sdnshield;
using namespace std::chrono_literals;

std::chrono::milliseconds g_duration = 1200ms;

struct RunConfig {
  std::size_t switches = 8;
  bool shielded = true;
  std::chrono::microseconds channelDelay = 200us;
  std::size_t ksdThreads = 4;
  /// 0 = synchronous northbound; >0 = app pipeline depth AND generator
  /// burst window (each switch keeps that many flow arrivals outstanding).
  std::size_t window = 0;
  /// 0 = no shard runtime (the pre-shard inline pipeline); >0 = route the
  /// controller through a shard::ShardRuntime with that many loops.
  std::size_t shards = 0;
};

cbench::ThroughputStats run(const RunConfig& config) {
  ctrl::Controller controller;
  std::unique_ptr<shard::ShardRuntime> runtime;
  if (config.shards > 0) {
    shard::ShardOptions shardOptions;
    shardOptions.shards = config.shards;
    runtime = std::make_unique<shard::ShardRuntime>(shardOptions);
    runtime->start();
    runtime->attach(controller);
  }
  sim::SimNetwork network(controller);
  network.buildLinear(config.switches);
  if (config.channelDelay.count() > 0) {
    for (const auto& sw : network.switches()) {
      sw->setControlChannelDelay(config.channelDelay);
    }
  }
  auto app = std::make_shared<apps::L2LearningSwitch>(
      /*rulePriority=*/10, /*pipelineWindow=*/config.window);

  std::unique_ptr<iso::BaselineRuntime> baseline;
  std::unique_ptr<iso::ShieldRuntime> shield;
  if (config.shielded) {
    iso::ShieldOptions options;
    options.ksdThreads = config.ksdThreads;  // Deputies scale out (§VI-A).
    shield = std::make_unique<iso::ShieldRuntime>(controller, options);
    if (runtime) runtime->attachEngine(shield->engine());
    shield->loadApp(app, lang::parsePermissions(app->requestedManifest()));
  } else {
    baseline = std::make_unique<iso::BaselineRuntime>(controller);
    baseline->loadApp(app);
  }
  cbench::Generator generator(network);
  generator.setup();
  cbench::ThroughputStats stats = generator.runThroughput(
      g_duration, config.window > 0 ? config.window : 1);
  app->drainPending();
  if (runtime) {
    if (shield) {
      runtime->detachEngine(shield->engine());
      shield.reset();  // Quiesce app/deputy producers before the detach.
    }
    baseline.reset();
    runtime->detach(controller);
    runtime->stop();
  }
  return stats;
}

void table(const char* title, std::chrono::microseconds channelDelay) {
  std::printf("%s\n", title);
  std::printf("%-10s %-12s %16s %14s\n", "switches", "controller",
              "responses/sec", "total");
  for (std::size_t switches : {2u, 4u, 8u, 16u}) {
    double baselineRate = 0;
    for (bool shielded : {false, true}) {
      RunConfig config;
      config.switches = switches;
      config.shielded = shielded;
      config.channelDelay = channelDelay;
      cbench::ThroughputStats stats = run(config);
      if (!shielded) baselineRate = stats.responsesPerSec;
      std::printf("%-10zu %-12s %16.0f %14llu", switches,
                  shielded ? "SDNShield" : "baseline", stats.responsesPerSec,
                  static_cast<unsigned long long>(stats.totalResponses));
      if (shielded && baselineRate > 0) {
        std::printf("   (%.1f%% of baseline)",
                    100.0 * stats.responsesPerSec / baselineRate);
      }
      std::printf("\n");
    }
  }
}

int pressure() {
  std::printf("=== Pressure mode: sync vs async pipelined northbound "
              "(SDNShield, 200us channel) ===\n");
  std::printf("%-10s %-8s %8s %16s %14s\n", "pipeline", "window",
              "ksd", "responses/sec", "total");
  double syncRate = 0;
  for (std::size_t window : {std::size_t{0}, std::size_t{16}}) {
    RunConfig config;
    config.window = window;
    cbench::ThroughputStats stats = run(config);
    const char* pipeline = window > 0 ? "async" : "sync";
    if (window == 0) syncRate = stats.responsesPerSec;
    std::printf("%-10s %-8zu %8zu %16.0f %14llu", pipeline,
                window > 0 ? window : 1, config.ksdThreads,
                stats.responsesPerSec,
                static_cast<unsigned long long>(stats.totalResponses));
    if (window > 0 && syncRate > 0) {
      std::printf("   (%.2fx sync)", stats.responsesPerSec / syncRate);
    }
    std::printf("\n");
    std::printf(
        "{\"bench\":\"bench_throughput\",\"mode\":\"pressure\","
        "\"pipeline\":\"%s\",\"switches\":%zu,\"ksd_threads\":%zu,"
        "\"window\":%zu,\"responses_per_sec\":%.0f,\"total_responses\":%llu,"
        "\"duration_sec\":%.3f}\n",
        pipeline, config.switches, config.ksdThreads,
        window > 0 ? window : 1, stats.responsesPerSec,
        static_cast<unsigned long long>(stats.totalResponses),
        stats.durationSec);
  }
  std::printf(
      "\nExpected shape: the async pipeline keeps the app thread admitting "
      "packet-ins\nwhile the deputy pool works the backlog, so "
      "responses/sec should be at least\n2x the synchronous northbound at "
      "pool width >= 4.\n");
  return 0;
}

int shardsMode() {
  std::printf("=== Shards mode: async pipelined northbound behind the "
              "sharded controller substrate ===\n");
  std::printf("%-8s %-8s %8s %16s %14s\n", "shards", "window", "ksd",
              "responses/sec", "total");
  double oneShardRate = 0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    RunConfig config;
    config.window = 16;
    config.shards = shards;
    cbench::ThroughputStats stats = run(config);
    if (shards == 1) oneShardRate = stats.responsesPerSec;
    std::printf("%-8zu %-8zu %8zu %16.0f %14llu", shards, config.window,
                config.ksdThreads, stats.responsesPerSec,
                static_cast<unsigned long long>(stats.totalResponses));
    if (shards > 1 && oneShardRate > 0) {
      std::printf("   (%.2fx one shard)", stats.responsesPerSec / oneShardRate);
    }
    std::printf("\n");
    std::printf(
        "{\"bench\":\"bench_throughput\",\"mode\":\"shards\","
        "\"pipeline\":\"async\",\"switches\":%zu,\"ksd_threads\":%zu,"
        "\"window\":%zu,\"shards\":%zu,\"responses_per_sec\":%.0f,"
        "\"total_responses\":%llu,\"duration_sec\":%.3f}\n",
        config.switches, config.ksdThreads, config.window, shards,
        stats.responsesPerSec,
        static_cast<unsigned long long>(stats.totalResponses),
        stats.durationSec);
  }
  std::printf(
      "\nExpected shape: on a multicore host responses/sec grows "
      "monotonically with the\nshard count (each shard owns its switches' "
      "dispatch + memo domain); on a 1-vCPU\nrunner the shards time-slice "
      "one core and the curve is flat — the determinism\ndifferential "
      "(tests/shard_test.cpp) is the evidence that the routing itself is\n"
      "shape-preserving.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool pressureMode = false;
  bool shardsModeFlag = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pressure") == 0) {
      pressureMode = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shardsModeFlag = true;
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      int ms = std::atoi(argv[++i]);
      if (ms <= 0) {
        std::fprintf(stderr, "bad --duration-ms value\n");
        return 1;
      }
      g_duration = std::chrono::milliseconds(ms);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--pressure] [--shards] [--duration-ms N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (shardsModeFlag) return shardsMode();
  if (pressureMode) return pressure();

  table(
      "=== Figure 7: L2 throughput, 200us emulated control channel "
      "(testbed-comparable) ===",
      200us);
  std::printf("\n");
  table(
      "=== In-process stress (no control channel): raw isolation cost upper "
      "bound ===",
      0us);
  std::printf(
      "\nExpected shape (paper): with a realistic control channel SDNShield "
      "throughput\nis within a few percent of the original controller at "
      "every switch count. The\nin-process table deliberately removes the "
      "channel: what remains is the thread\nhand-off cost itself.\n");
  return 0;
}
