// Figure 7 — end-to-end throughput pressure test, L2 learning switch
// scenario, original vs SDNShield-enabled controller, varying switch count.
// Every switch runs flow-arrival rounds back-to-back in parallel (CBench
// pressure mode).
//
// Two configurations:
//  * testbed-comparable: a 200us emulated switch<->controller control
//    channel (the paper measures across a physical network, where this
//    dominates). Claim to reproduce: SDNShield throughput within a few
//    percent of baseline.
//  * in-process stress: no channel at all — an upper bound that exposes the
//    raw thread-hand-off cost of the isolation architecture (quantified
//    further in bench_isolation_ablation). On a single-core host this cost
//    cannot be amortized and the gap is large by construction.
#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/l2_learning.h"
#include "cbench/generator.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace {

using namespace sdnshield;
using namespace std::chrono_literals;

constexpr auto kPressureDuration = 1200ms;

cbench::ThroughputStats run(std::size_t switches, bool shielded,
                            std::chrono::microseconds channelDelay) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(switches);
  if (channelDelay.count() > 0) {
    for (const auto& sw : network.switches()) {
      sw->setControlChannelDelay(channelDelay);
    }
  }
  auto app = std::make_shared<apps::L2LearningSwitch>();

  std::unique_ptr<iso::BaselineRuntime> baseline;
  std::unique_ptr<iso::ShieldRuntime> shield;
  if (shielded) {
    iso::ShieldOptions options;
    options.ksdThreads = 4;  // Deputies scale out (§VI-A).
    shield = std::make_unique<iso::ShieldRuntime>(controller, options);
    shield->loadApp(app, lang::parsePermissions(app->requestedManifest()));
  } else {
    baseline = std::make_unique<iso::BaselineRuntime>(controller);
    baseline->loadApp(app);
  }
  cbench::Generator generator(network);
  generator.setup();
  return generator.runThroughput(kPressureDuration);
}

void table(const char* title, std::chrono::microseconds channelDelay) {
  std::printf("%s\n", title);
  std::printf("%-10s %-12s %16s %14s\n", "switches", "controller",
              "responses/sec", "total");
  for (std::size_t switches : {2u, 4u, 8u, 16u}) {
    double baselineRate = 0;
    for (bool shielded : {false, true}) {
      cbench::ThroughputStats stats = run(switches, shielded, channelDelay);
      if (!shielded) baselineRate = stats.responsesPerSec;
      std::printf("%-10zu %-12s %16.0f %14llu", switches,
                  shielded ? "SDNShield" : "baseline", stats.responsesPerSec,
                  static_cast<unsigned long long>(stats.totalResponses));
      if (shielded && baselineRate > 0) {
        std::printf("   (%.1f%% of baseline)",
                    100.0 * stats.responsesPerSec / baselineRate);
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  table(
      "=== Figure 7: L2 throughput, 200us emulated control channel "
      "(testbed-comparable) ===",
      200us);
  std::printf("\n");
  table(
      "=== In-process stress (no control channel): raw isolation cost upper "
      "bound ===",
      0us);
  std::printf(
      "\nExpected shape (paper): with a realistic control channel SDNShield "
      "throughput\nis within a few percent of the original controller at "
      "every switch count. The\nin-process table deliberately removes the "
      "channel: what remains is the thread\nhand-off cost itself.\n");
  return 0;
}
