// Degraded-mode throughput: how much event-processing capacity a *healthy*
// app keeps while a co-resident faulty app misbehaves in each of the three
// failure shapes the supervisor handles:
//   crash — every event handler throws (contained, counted, audited);
//   hang  — the handler blocks forever (watchdog quarantine);
//   flood — the handler is too slow for the event rate (bounded queue sheds).
// The claim: the dispatcher never blocks on the faulty app, so the healthy
// app keeps the same order of throughput as the all-healthy baseline and
// sheds nothing. One JSON line per scenario for EXPERIMENTS.md.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "obs/metrics.h"
#include "switchsim/sim_network.h"

namespace {

using namespace sdnshield;
using namespace std::chrono_literals;

int g_events = 20000;  // Overridable with --events N (CI smoke uses ~200).

/// Blocks forever until opened; keeps hung workers releasable at teardown.
class Gate {
 public:
  void open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

class BenchApp final : public ctrl::App {
 public:
  explicit BenchApp(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string requestedManifest() const override { return ""; }
  void init(ctrl::AppContext& context) override { context_ = &context; }
  ctrl::AppContext& context() { return *context_; }

 private:
  std::string name_;
  ctrl::AppContext* context_ = nullptr;
};

of::PacketIn anyPacketIn() {
  return of::PacketIn{1, 1, of::PacketInReason::kNoMatch, 0, {}};
}

struct Result {
  double dispatchMs = 0;
  double drainMs = 0;
  double healthyEventsPerSec = 0;
  std::uint64_t healthyDrops = 0;
  std::uint64_t faultyFaults = 0;
  std::uint64_t faultyDrops = 0;
  std::string faultyHealth = "n/a";
};

/// Runs one scenario: a healthy counting app plus (optionally) a faulty
/// sibling whose handler is supplied by the caller.
Result run(const std::string& scenario) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);

  iso::ShieldOptions options;
  options.appQueueCapacity = 4096;
  // Crash/flood scenarios measure steady-state containment, not quarantine.
  options.supervisor.faultQuarantineThreshold = 1u << 30;
  options.supervisor.dropQuarantineThreshold = 1u << 30;
  if (scenario == "hang") {
    options.supervisor.taskDeadline = 20ms;
    options.supervisor.taskHangDeadline = 100ms;
    options.supervisor.heartbeatInterval = 10ms;
  }
  iso::ShieldRuntime shield(controller, options);

  auto healthy = std::make_shared<BenchApp>("healthy");
  of::AppId healthyId =
      shield.loadApp(healthy, lang::parsePermissions("PERM pkt_in_event\n"));
  std::atomic<int> healthyCount{0};
  healthy->context().subscribePacketIn(
      [&](const ctrl::PacketInEvent&) { ++healthyCount; });

  std::shared_ptr<BenchApp> faulty;
  of::AppId faultyId = 0;
  auto gate = std::make_shared<Gate>();
  if (scenario != "baseline") {
    faulty = std::make_shared<BenchApp>("faulty");
    faultyId =
        shield.loadApp(faulty, lang::parsePermissions("PERM pkt_in_event\n"));
    if (scenario == "crash") {
      faulty->context().subscribePacketIn([](const ctrl::PacketInEvent&) {
        throw std::runtime_error("crash scenario");
      });
    } else if (scenario == "hang") {
      faulty->context().subscribePacketIn(
          [gate](const ctrl::PacketInEvent&) { gate->wait(); });
    } else {  // flood: too slow for the offered rate.
      faulty->context().subscribePacketIn(
          [](const ctrl::PacketInEvent&) { std::this_thread::sleep_for(1ms); });
    }
  }

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < g_events; ++i) {
    controller.onPacketIn(anyPacketIn());
    // Pace the generator against the healthy consumer (a window of half the
    // queue) so the offered load is sustainable for a well-behaved app; the
    // faulty sibling gets no such courtesy and must be shed, not waited on.
    if ((i & 0x3ff) == 0) {
      while (i - healthyCount.load() >
             static_cast<int>(options.appQueueCapacity / 2)) {
        std::this_thread::sleep_for(50us);
      }
    }
  }
  auto dispatched = std::chrono::steady_clock::now();
  // Drain: a correctly sized healthy queue sheds nothing, but count shed
  // events (and keep a hard deadline) so a surprise can never wedge the
  // bench the way it can no longer wedge the controller.
  auto deadline = start + 120s;
  while (healthyCount.load() +
                 static_cast<int>(shield.supervisor().dropCount(healthyId)) <
             g_events &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(100us);
  }
  auto drained = std::chrono::steady_clock::now();

  if (scenario == "hang") {
    // Give the watchdog its hang deadline before reading the verdict.
    auto hangDeadline = std::chrono::steady_clock::now() + 2s;
    while (shield.supervisor().health(faultyId) !=
               iso::AppHealth::kQuarantined &&
           std::chrono::steady_clock::now() < hangDeadline) {
      std::this_thread::sleep_for(1ms);
    }
  }

  Result result;
  result.dispatchMs =
      std::chrono::duration<double, std::milli>(dispatched - start).count();
  result.drainMs =
      std::chrono::duration<double, std::milli>(drained - start).count();
  result.healthyEventsPerSec =
      healthyCount.load() /
      std::chrono::duration<double>(drained - start).count();
  result.healthyDrops = shield.supervisor().dropCount(healthyId);
  if (faulty) {
    result.faultyFaults = shield.supervisor().faultCount(faultyId);
    result.faultyDrops = shield.supervisor().dropCount(faultyId);
    result.faultyHealth = iso::toString(shield.supervisor().health(faultyId));
  }
  gate->open();
  shield.shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --events N  events per scenario (CI smoke uses a tiny count);
  // --obs=on|off / --obs / --no-obs  toggles metric recording (default on).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      g_events = std::atoi(argv[++i]);
      if (g_events <= 0) {
        std::fprintf(stderr, "bad --events value\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--obs=off") == 0 ||
               std::strcmp(argv[i], "--no-obs") == 0) {
      obs::Registry::setEnabled(false);
    } else if (std::strcmp(argv[i], "--obs") == 0 ||
               std::strcmp(argv[i], "--obs=on") == 0) {
      obs::Registry::setEnabled(true);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--events N] [--obs=on|off]\n", argv[0]);
      return 1;
    }
  }
  std::printf("=== Degraded mode: healthy-app throughput beside a faulty app "
              "===\n");
  std::printf("%-10s %14s %12s %12s %10s %10s %12s\n", "scenario", "events/s",
              "dispatch_ms", "drain_ms", "faults", "drops", "health");
  for (const char* scenario : {"baseline", "crash", "hang", "flood"}) {
    Result r = run(scenario);
    std::printf("%-10s %14.0f %12.2f %12.2f %10llu %10llu %12s\n", scenario,
                r.healthyEventsPerSec, r.dispatchMs, r.drainMs,
                static_cast<unsigned long long>(r.faultyFaults),
                static_cast<unsigned long long>(r.faultyDrops),
                r.faultyHealth.c_str());
    std::printf(
        "{\"bench\":\"bench_degraded_mode\",\"scenario\":\"%s\","
        "\"events\":%d,\"healthy_events_per_sec\":%.0f,"
        "\"dispatch_ms\":%.2f,\"drain_ms\":%.2f,\"healthy_drops\":%llu,"
        "\"faulty_faults\":%llu,"
        "\"faulty_drops\":%llu,\"faulty_health\":\"%s\"}\n",
        scenario, g_events, r.healthyEventsPerSec, r.dispatchMs, r.drainMs,
        static_cast<unsigned long long>(r.healthyDrops),
        static_cast<unsigned long long>(r.faultyFaults),
        static_cast<unsigned long long>(r.faultyDrops),
        r.faultyHealth.c_str());
  }
  std::printf(
      "\nExpected shape: healthy-app events/s stays the same order of "
      "magnitude as baseline\n(the faulty sibling costs dispatch work, never "
      "a stall), healthy drops stay zero,\nfaults/drops land on the faulty "
      "app only, and the hang scenario ends quarantined.\n");
  return 0;
}
