// Figure 8 — scalability of the SDNShield isolation architecture: latency
// overhead as (a) the number of concurrent apps grows and (b) the per-app
// complexity (API calls issued per event) grows. Claim to reproduce: the
// overhead increases linearly along both axes.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace {

using namespace sdnshield;
using namespace std::chrono_literals;

/// A synthetic app that reacts to every packet-in with a configurable number
/// of mediated API calls (the paper's "complexity of apps, measured by the
/// API calls issued by the app").
class SyntheticApp final : public ctrl::App {
 public:
  SyntheticApp(std::string name, std::size_t callsPerEvent,
               std::atomic<std::uint64_t>& completions)
      : name_(std::move(name)),
        callsPerEvent_(callsPerEvent),
        completions_(completions) {}

  std::string name() const override { return name_; }
  std::string requestedManifest() const override {
    return "PERM pkt_in_event\nPERM read_flow_table\nPERM read_statistics\n";
  }

  void init(ctrl::AppContext& context) override {
    context_ = &context;
    context.subscribePacketIn([this](const ctrl::PacketInEvent& event) {
      for (std::size_t i = 0; i < callsPerEvent_; ++i) {
        if (i % 2 == 0) {
          context_->api().readFlowTable(event.packetIn.dpid);
        } else {
          of::StatsRequest request;
          request.level = of::StatsLevel::kSwitch;
          request.dpid = event.packetIn.dpid;
          context_->api().readStatistics(request);
        }
      }
      completions_.fetch_add(1, std::memory_order_release);
    });
  }

 private:
  std::string name_;
  std::size_t callsPerEvent_;
  std::atomic<std::uint64_t>& completions_;
  ctrl::AppContext* context_ = nullptr;
};

/// Median time from injecting a packet-in until every app finished reacting.
double measureUs(std::size_t apps, std::size_t callsPerEvent,
                 std::size_t rounds = 50) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(2);
  std::atomic<std::uint64_t> completions{0};
  iso::ShieldOptions options;
  options.ksdThreads = 4;
  iso::ShieldRuntime shield(controller, options);
  for (std::size_t i = 0; i < apps; ++i) {
    auto app = std::make_shared<SyntheticApp>("synthetic" + std::to_string(i),
                                              callsPerEvent, completions);
    shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));
  }

  of::PacketIn packetIn;
  packetIn.dpid = 1;
  packetIn.inPort = 1;
  packetIn.packet = of::Packet::makeArpRequest(
      of::MacAddress::fromUint64(1), of::Ipv4Address(10, 0, 0, 1),
      of::Ipv4Address(10, 0, 0, 2));

  std::vector<double> samples;
  std::uint64_t expected = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    expected += apps;
    auto start = std::chrono::steady_clock::now();
    controller.onPacketIn(packetIn);
    while (completions.load(std::memory_order_acquire) < expected) {
      std::this_thread::yield();
    }
    samples.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 8a: latency vs number of concurrent apps "
      "(4 API calls per event) ===\n");
  std::printf("%-8s %16s\n", "apps", "median(us)");
  for (std::size_t apps : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::printf("%-8zu %16.1f\n", apps, measureUs(apps, 4));
  }

  std::printf(
      "\n=== Figure 8b: latency vs app complexity (1 app, API calls per "
      "event) ===\n");
  std::printf("%-8s %16s\n", "calls", "median(us)");
  for (std::size_t calls : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    std::printf("%-8zu %16.1f\n", calls, measureUs(1, calls));
  }

  std::printf(
      "\nExpected shape (paper): latency grows linearly with the number of "
      "concurrent\napps and with per-app complexity — no superlinear "
      "blow-up from the choke points.\n");
  return 0;
}
