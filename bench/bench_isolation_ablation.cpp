// Ablation — where does the SDNShield overhead come from? (Table III
// discussion, §VI-A.) Measures one northbound call (read_flow_table of a
// small table) under four configurations:
//   1. direct            — monolithic baseline (function call);
//   2. direct + check    — permission checking only, no isolation;
//   3. channel           — thread hand-off through the KSD pool, no check;
//   4. channel + check   — the full SDNShield path.
// Also shows KSD-pool scaling: parallel callers vs deputy count ("the choke
// points do not mean serialized points").
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "controller/services.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace {

using namespace sdnshield;

constexpr int kIterations = 20000;

double usPerOp(const std::function<void()>& op, int iterations = kIterations) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) op();
  auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         iterations;
}

}  // namespace

int main() {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(2);
  // A handful of rules so the read has realistic work to do.
  for (int i = 1; i <= 8; ++i) {
    of::FlowMod mod;
    mod.match.tpDst = static_cast<std::uint16_t>(i);
    mod.priority = 10;
    mod.actions.push_back(of::OutputAction{1});
    controller.kernelInsertFlow(of::kKernelAppId, 1, mod);
  }

  auto perms = lang::parsePermissions(
      "PERM read_flow_table LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0 OR "
      "OWN_FLOWS OR MAX_PRIORITY 50\n");

  std::printf("=== Isolation ablation: cost of one read_flow_table call ===\n");

  // 1. direct (monolithic).
  ctrl::DirectApi direct(controller, 1);
  double directUs =
      usPerOp([&] { direct.readFlowTable(1); });
  std::printf("%-18s %10.3f us/call\n", "direct", directUs);

  // 2. direct + check.
  engine::PermissionEngine engine;
  engine.install(1, perms);
  double checkedUs = usPerOp([&] {
    perm::ApiCall call = perm::ApiCall::readFlowTable(1, 1);
    if (engine.check(call).allowed) direct.readFlowTable(1);
  });
  std::printf("%-18s %10.3f us/call  (+%.3f checking)\n", "direct+check",
              checkedUs, checkedUs - directUs);

  // 3/4. channel and channel + check via the shield runtime.
  iso::ShieldRuntime shield(controller);
  shield.engine().install(1, perms);
  iso::KsdPool& ksd = shield.ksd();
  double channelUs = usPerOp([&] {
    ksd.call<bool>([&] {
      controller.kernelReadFlowTable(1);
      return true;
    });
  });
  std::printf("%-18s %10.3f us/call  (+%.3f asynchronism)\n", "channel",
              channelUs, channelUs - directUs);

  double fullUs = usPerOp([&] {
    ksd.call<bool>([&] {
      perm::ApiCall call = perm::ApiCall::readFlowTable(1, 1);
      if (shield.engine().check(call).allowed) {
        controller.kernelReadFlowTable(1);
      }
      return true;
    });
  });
  std::printf("%-18s %10.3f us/call  (total overhead %.3f us)\n",
              "channel+check", fullUs, fullUs - directUs);

  // KSD-pool parallel scaling.
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("\n=== KSD pool scaling: 4 concurrent callers (%u core(s)) ===\n",
              cores);
  if (cores <= 1) {
    std::printf("NOTE: single-core host — deputy parallelism cannot speed up "
                "here; extra\ndeputies only add scheduling overhead. On "
                "multi-core hardware throughput\ngrows with deputy count "
                "(the paper's 'choke points are not serialized').\n");
  }
  std::printf("%-14s %16s\n", "deputies", "calls/sec");
  for (std::size_t deputies : {1u, 2u, 4u}) {
    ctrl::Controller scaleController;
    sim::SimNetwork scaleNetwork(scaleController);
    scaleNetwork.buildLinear(2);
    iso::ShieldOptions options;
    options.ksdThreads = deputies;
    iso::ShieldRuntime scaleShield(scaleController, options);
    scaleShield.engine().install(1, perms);

    std::atomic<std::uint64_t> calls{0};
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(500);
    std::vector<std::thread> callers;
    for (int c = 0; c < 4; ++c) {
      callers.emplace_back([&] {
        while (std::chrono::steady_clock::now() < deadline) {
          scaleShield.ksd().call<bool>([&] {
            perm::ApiCall call = perm::ApiCall::readFlowTable(1, 1);
            scaleShield.engine().check(call);
            scaleController.kernelReadFlowTable(1);
            return true;
          });
          calls.fetch_add(1);
        }
      });
    }
    for (std::thread& caller : callers) caller.join();
    std::printf("%-14zu %16.0f\n", deputies,
                static_cast<double>(calls.load()) / 0.5);
  }
  std::printf(
      "\nExpected shape: checking adds well under a microsecond; the thread "
      "hand-off\ndominates the (still small) overhead; on multi-core hosts "
      "throughput grows\nwith deputy count.\n");
  return 0;
}
