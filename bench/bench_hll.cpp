// Ablation bench — cost of the §VI-C high-level-language path: policy
// compilation (classifier construction with ownership tracking) and
// ownership-checked installation, as the policy's parallel width grows.
#include <benchmark/benchmark.h>

#include "core/lang/perm_parser.h"
#include "hll/install.h"
#include "switchsim/sim_network.h"

namespace {

using namespace sdnshield;

of::FlowMatch tcpDst(std::uint16_t port) {
  of::FlowMatch m;
  m.ethType = 0x0800;
  m.ipProto = 6;
  m.tpDst = port;
  return m;
}

/// width parallel lanes: match(port_i) >> fwd(i), each owned by app i%3+1.
hll::PolicyPtr makeWide(int width) {
  hll::PolicyPtr policy;
  for (int i = 0; i < width; ++i) {
    hll::PolicyPtr lane = hll::owned(
        static_cast<of::AppId>(i % 3 + 1),
        hll::seq(hll::match(tcpDst(static_cast<std::uint16_t>(1000 + i))),
                 hll::fwd(static_cast<of::PortNo>(i % 4 + 1))));
    policy = policy ? hll::par(policy, lane) : lane;
  }
  return policy;
}

void BM_HllCompile(benchmark::State& state) {
  hll::PolicyPtr policy = makeWide(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hll::compile(policy));
  }
  state.counters["rules"] =
      static_cast<double>(hll::compile(policy).size());
}
BENCHMARK(BM_HllCompile)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_HllInstallChecked(benchmark::State& state) {
  ctrl::Controller controller;
  sim::SimNetwork network(controller);
  network.buildLinear(1);
  engine::PermissionEngine engine;
  for (of::AppId app = 1; app <= 3; ++app) {
    engine.install(app, lang::parsePermissions(
                            "PERM insert_flow LIMITING ACTION FORWARD\n"));
  }
  hll::PolicyPtr policy = makeWide(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hll::installPolicy(engine, controller, 1, policy, 2000));
  }
}
BENCHMARK(BM_HllInstallChecked)->Arg(2)->Arg(8);

}  // namespace
