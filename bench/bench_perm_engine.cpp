// Figure 5 — permission-checking throughput of the standalone permission
// engine on a single core, for the two API calls the paper reports
// (insert_flow and read_statistics), across small / medium / large manifest
// complexity (1 / 5 / 15 tokens, 10-20 filters each), on an app behaviour
// trace with 5% violating calls.
//
// Paper's claim to reproduce: per-check latency < 1 microsecond at every
// complexity level; throughput decreases with manifest complexity.
//
// Hot-path layers measured separately (run with --benchmark_format=json to
// land the numbers in BENCH_perm_engine.json):
//   * BM_Fig5_*            — optimized compiled program, no memo (the
//                            paper's Figure 5 workload, unchanged);
//   * BM_EngineCheck_Memo* — full PermissionEngine::check including the
//                            thread-local decision memo, on a recurring-flow
//                            trace (Hot, ~100% hit rate) and the Figure-5
//                            mostly-distinct trace (Cold). Counters report
//                            memo_hit_rate and ns_per_check.
#include <benchmark/benchmark.h>

#include "cbench/generator.h"
#include "core/engine/permission_engine.h"
#include "obs/metrics.h"

namespace {

using sdnshield::cbench::makeSyntheticManifest;
using sdnshield::cbench::makeSyntheticTrace;
using sdnshield::engine::CompiledPermissions;
using sdnshield::engine::PermissionEngine;
using sdnshield::perm::ApiCall;
using sdnshield::perm::ApiCallType;

constexpr std::size_t kTraceLength = 8192;
constexpr double kViolationRatio = 0.05;  // §IX-B.2.

std::vector<ApiCall> filterTrace(std::vector<ApiCall> trace,
                                 ApiCallType type) {
  std::erase_if(trace,
                [type](const ApiCall& call) { return call.type != type; });
  return trace;
}

/// state.range(0) = token count (manifest complexity).
void checkThroughput(benchmark::State& state, ApiCallType type) {
  std::size_t tokens = static_cast<std::size_t>(state.range(0));
  sdnshield::perm::Token primary =
      type == ApiCallType::kInsertFlow
          ? sdnshield::perm::Token::kInsertFlow
          : sdnshield::perm::Token::kReadStatistics;
  CompiledPermissions compiled(makeSyntheticManifest(tokens, 42, primary));
  std::vector<ApiCall> trace = filterTrace(
      makeSyntheticTrace(compiled.source(), kTraceLength, kViolationRatio, 7),
      type);
  std::size_t index = 0;
  std::uint64_t denied = 0;
  for (auto _ : state) {
    const ApiCall& call = trace[index];
    index = (index + 1) % trace.size();
    bool allowed = compiled.check(call).allowed;
    if (!allowed) ++denied;
    benchmark::DoNotOptimize(allowed);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["checks_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["denied_ratio"] =
      static_cast<double>(denied) / static_cast<double>(state.iterations());
}

void BM_Fig5_InsertFlowCheck(benchmark::State& state) {
  checkThroughput(state, ApiCallType::kInsertFlow);
}

void BM_Fig5_ReadStatisticsCheck(benchmark::State& state) {
  checkThroughput(state, ApiCallType::kReadStatistics);
}

// Small / medium / large manifests: 1 / 5 / 15 tokens (paper §IX-B.2).
BENCHMARK(BM_Fig5_InsertFlowCheck)->Arg(1)->Arg(5)->Arg(15);
BENCHMARK(BM_Fig5_ReadStatisticsCheck)->Arg(1)->Arg(5)->Arg(15);

/// Full mediator path (PermissionEngine::check): app-table snapshot load +
/// decision memo + compiled program on miss. `hotFlows` bounds the number
/// of distinct calls cycled; a small working set models recurring flows and
/// keeps the memo hot, the full Figure-5 trace is the cold/adversarial
/// case.
void engineCheckThroughput(benchmark::State& state, std::size_t hotFlows) {
  std::size_t tokens = static_cast<std::size_t>(state.range(0));
  constexpr sdnshield::of::AppId kApp = 7;
  PermissionEngine engine;
  auto manifest =
      makeSyntheticManifest(tokens, 42, sdnshield::perm::Token::kInsertFlow);
  engine.install(kApp, manifest);
  std::vector<ApiCall> trace =
      makeSyntheticTrace(manifest, kTraceLength, kViolationRatio, 7);
  if (hotFlows > 0 && trace.size() > hotFlows) trace.resize(hotFlows);
  for (ApiCall& call : trace) call.app = kApp;

  PermissionEngine::resetMemoStats();
  std::size_t index = 0;
  std::uint64_t denied = 0;
  for (auto _ : state) {
    const ApiCall& call = trace[index];
    index = (index + 1) % trace.size();
    bool allowed = engine.check(call).allowed;
    if (!allowed) ++denied;
    benchmark::DoNotOptimize(allowed);
  }
  auto memo = PermissionEngine::memoStats();
  state.SetItemsProcessed(state.iterations());
  state.counters["checks_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["memo_hit_rate"] = memo.hitRate();
  state.counters["denied_ratio"] =
      static_cast<double>(denied) / static_cast<double>(state.iterations());
}

void BM_EngineCheck_MemoHot(benchmark::State& state) {
  engineCheckThroughput(state, 256);  // Recurring flows: memo serves ~100%.
}

void BM_EngineCheck_MemoCold(benchmark::State& state) {
  engineCheckThroughput(state, 0);  // Full mostly-distinct Figure-5 trace.
}

/// Same workload with metric recording globally disabled: the delta against
/// BM_EngineCheck_MemoHot is the price of the observability instrumentation
/// on the hot path (acceptance bound: within 3%). memo_hit_rate reads 0
/// here — the memo still works, but its registry counters are off.
void BM_EngineCheck_MemoHot_ObsOff(benchmark::State& state) {
  bool wasEnabled = sdnshield::obs::Registry::enabled();
  sdnshield::obs::Registry::setEnabled(false);
  engineCheckThroughput(state, 256);
  sdnshield::obs::Registry::setEnabled(wasEnabled);
}

BENCHMARK(BM_EngineCheck_MemoHot)->Arg(1)->Arg(5)->Arg(15);
BENCHMARK(BM_EngineCheck_MemoCold)->Arg(1)->Arg(5)->Arg(15);
BENCHMARK(BM_EngineCheck_MemoHot_ObsOff)->Arg(1)->Arg(5)->Arg(15);

/// Compilation cost (manifest -> checking program), for context: the paper
/// compiles at app load time, off the critical path.
void BM_ManifestCompilation(benchmark::State& state) {
  auto manifest =
      makeSyntheticManifest(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    CompiledPermissions compiled(manifest);
    benchmark::DoNotOptimize(compiled);
  }
}

BENCHMARK(BM_ManifestCompilation)->Arg(1)->Arg(5)->Arg(15);

/// The same compilation routed through the process-wide compiled-program
/// cache (DESIGN.md §14): after the first obtain() every iteration is a
/// lookup keyed on the set's canonical text — the cost a policy push pays
/// per already-seen grant shape.
void BM_ManifestCompilation_Cached(benchmark::State& state) {
  auto manifest =
      makeSyntheticManifest(static_cast<std::size_t>(state.range(0)), 42);
  auto& cache = sdnshield::engine::CompiledProgramCache::global();
  cache.clear();
  for (auto _ : state) {
    auto compiled = cache.obtain(manifest);
    benchmark::DoNotOptimize(compiled);
  }
  cache.clear();
}

BENCHMARK(BM_ManifestCompilation_Cached)->Arg(1)->Arg(5)->Arg(15);

}  // namespace
