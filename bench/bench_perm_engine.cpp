// Figure 5 — permission-checking throughput of the standalone permission
// engine on a single core, for the two API calls the paper reports
// (insert_flow and read_statistics), across small / medium / large manifest
// complexity (1 / 5 / 15 tokens, 10-20 filters each), on an app behaviour
// trace with 5% violating calls.
//
// Paper's claim to reproduce: per-check latency < 1 microsecond at every
// complexity level; throughput decreases with manifest complexity.
#include <benchmark/benchmark.h>

#include "cbench/generator.h"
#include "core/engine/permission_engine.h"

namespace {

using sdnshield::cbench::makeSyntheticManifest;
using sdnshield::cbench::makeSyntheticTrace;
using sdnshield::engine::CompiledPermissions;
using sdnshield::perm::ApiCall;
using sdnshield::perm::ApiCallType;

constexpr std::size_t kTraceLength = 8192;
constexpr double kViolationRatio = 0.05;  // §IX-B.2.

std::vector<ApiCall> filterTrace(std::vector<ApiCall> trace,
                                 ApiCallType type) {
  std::erase_if(trace,
                [type](const ApiCall& call) { return call.type != type; });
  return trace;
}

/// state.range(0) = token count (manifest complexity).
void checkThroughput(benchmark::State& state, ApiCallType type) {
  std::size_t tokens = static_cast<std::size_t>(state.range(0));
  sdnshield::perm::Token primary =
      type == ApiCallType::kInsertFlow
          ? sdnshield::perm::Token::kInsertFlow
          : sdnshield::perm::Token::kReadStatistics;
  CompiledPermissions compiled(makeSyntheticManifest(tokens, 42, primary));
  std::vector<ApiCall> trace = filterTrace(
      makeSyntheticTrace(compiled.source(), kTraceLength, kViolationRatio, 7),
      type);
  std::size_t index = 0;
  std::uint64_t denied = 0;
  for (auto _ : state) {
    const ApiCall& call = trace[index];
    index = (index + 1) % trace.size();
    bool allowed = compiled.check(call).allowed;
    if (!allowed) ++denied;
    benchmark::DoNotOptimize(allowed);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["checks_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["denied_ratio"] =
      static_cast<double>(denied) / static_cast<double>(state.iterations());
}

void BM_Fig5_InsertFlowCheck(benchmark::State& state) {
  checkThroughput(state, ApiCallType::kInsertFlow);
}

void BM_Fig5_ReadStatisticsCheck(benchmark::State& state) {
  checkThroughput(state, ApiCallType::kReadStatistics);
}

// Small / medium / large manifests: 1 / 5 / 15 tokens (paper §IX-B.2).
BENCHMARK(BM_Fig5_InsertFlowCheck)->Arg(1)->Arg(5)->Arg(15);
BENCHMARK(BM_Fig5_ReadStatisticsCheck)->Arg(1)->Arg(5)->Arg(15);

/// Compilation cost (manifest -> checking program), for context: the paper
/// compiles at app load time, off the critical path.
void BM_ManifestCompilation(benchmark::State& state) {
  auto manifest =
      makeSyntheticManifest(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    CompiledPermissions compiled(manifest);
    benchmark::DoNotOptimize(compiled);
  }
}

BENCHMARK(BM_ManifestCompilation)->Arg(1)->Arg(5)->Arg(15);

}  // namespace
