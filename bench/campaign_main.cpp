// The `campaign` binary: runs one seed-driven chaos campaign (DESIGN.md
// §13) and prints the JSON scorecard. The default scorecard is byte-
// identical for a given --seed; --measured appends a wall-clock section
// (throughput, retry/fault/audit counters) that naturally varies run to
// run. Exit status is 0 only when every invariant oracle passes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "campaign/campaign.h"

namespace {

using sdnshield::campaign::Campaign;
using sdnshield::campaign::CampaignConfig;
using sdnshield::campaign::Scorecard;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--steps N] [--step-ms N] [--tenants N]\n"
               "          [--extra-tenants N] [--mutants N] [--no-attackers]\n"
               "          [--fault-ppm N] [--audit-capacity N]\n"
               "          [--measure-ms N] [--mega-k N] [--mega-spines N]\n"
               "          [--mega-leaves N] [--mega-steps N] [--shards N]\n"
               "          [--measured] [--out FILE]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  CampaignConfig config;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    auto intArg = [&](const char* flag, auto& slot) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      slot = static_cast<std::remove_reference_t<decltype(slot)>>(
          std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (intArg("--seed", config.seed) || intArg("--steps", config.steps) ||
        intArg("--step-ms", config.stepMs) ||
        intArg("--tenants", config.tenants) ||
        intArg("--extra-tenants", config.extraTenants) ||
        intArg("--mutants", config.mutants) ||
        intArg("--audit-capacity", config.auditCapacity) ||
        intArg("--measure-ms", config.measureMs) ||
        intArg("--mega-k", config.megaFatTreeK) ||
        intArg("--mega-spines", config.megaSpines) ||
        intArg("--mega-leaves", config.megaLeaves) ||
        intArg("--mega-steps", config.megaSteps) ||
        intArg("--shards", config.shards)) {
      continue;
    }
    if (std::strcmp(argv[i], "--fault-ppm") == 0 && i + 1 < argc) {
      config.faultProbability =
          static_cast<double>(std::strtoull(argv[++i], nullptr, 10)) / 1e6;
      continue;
    }
    if (std::strcmp(argv[i], "--no-attackers") == 0) {
      config.attackers = false;
      continue;
    }
    if (std::strcmp(argv[i], "--measured") == 0) {
      config.measured = true;
      continue;
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
      continue;
    }
    usage(argv[0]);
    return 2;
  }

  Campaign campaign(config);
  Scorecard card = campaign.run();
  std::string json = card.toJson();
  if (outPath.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(outPath, std::ios::trunc);
    out << json;
  }
  return card.allInvariantsPass() ? 0 : 1;
}
