// Wire frontend benchmarks (DESIGN.md §15) — one JSONL row per mode for
// BENCH_wire.json / CI schema validation:
//
//   --framing [--duration-ms D]
//       Single-core framing throughput: a captured packet-in stream is
//       replayed through net::Framer + of::wire::decode in 64KB reads,
//       exactly the per-connection receive path of net::OfServer. The loop
//       is pure CPU — it saturates a core on framing alone and reports
//       frames/sec and MB/sec.
//
//   --accept [--connections N] [--wave W]
//       Accept scale: N emulated switches (default 10240) complete the
//       hello/features handshake against a live OfServer, in waves of at
//       most W concurrent connections (default 4096, clamped to the fd
//       limit — both endpoints live in this process, so each loopback
//       connection costs two fds). Reports total accepted, the largest
//       concurrent wave, and accepts/sec.
//
//   --cbench [--connections N] [--rounds R]
//       Closed-loop latency over TCP loopback: the full serve stack
//       (controller + shield + L2 learning app + epoll frontend) measured
//       by net::runCbenchClient. Same row shape as `sdnshield cbench
//       --json`.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "apps/l2_learning.h"
#include "controller/controller.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "net/cbench_client.h"
#include "net/framer.h"
#include "net/of_server.h"
#include "of/packet.h"
#include "of/wire.h"

namespace {

using namespace sdnshield;
namespace wire = of::wire;

long argValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

bool argFlag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Raises the soft fd limit toward the hard one; returns the resulting cap.
std::size_t raiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  if (limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &raised);
    ::getrlimit(RLIMIT_NOFILE, &limit);
  }
  return static_cast<std::size_t>(limit.rlim_cur);
}

/// The serve stack behind the benchmarked socket: identical to
/// `sdnshield serve`.
struct ServeStack {
  ctrl::Controller controller;
  iso::ShieldRuntime shield{controller};
  net::OfServer server;

  ServeStack() : server(controller) {
    auto app = std::make_shared<apps::L2LearningSwitch>();
    shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));
  }
  ~ServeStack() {
    server.stop();
    shield.shutdown();
  }
};

int runFraming(int argc, char** argv) {
  auto duration =
      std::chrono::milliseconds(argValue(argc, argv, "--duration-ms", 2000));

  // A representative receive stream: the cbench probe packet-in (the frame
  // the server decodes on every round) padded with echoes, ~1MB total so
  // the working set exceeds the framer's 16KB compaction threshold.
  of::Bytes stream;
  of::PacketIn probe;
  probe.inPort = 4;
  probe.packet = of::Packet::makeTcp(
      of::MacAddress::fromUint64(0x040000000001ULL),
      of::MacAddress::fromUint64(0x020000000001ULL),
      of::Ipv4Address(10, 9, 0, 1), of::Ipv4Address(10, 0, 0, 1), 12345, 80,
      of::tcpflags::kSyn);
  of::Bytes probeFrame = wire::encodePacketIn(probe);
  of::Bytes echoFrame = wire::encodeEcho({false, 7, {0xab, 0xcd}});
  while (stream.size() < (1u << 20)) {
    stream.insert(stream.end(), probeFrame.begin(), probeFrame.end());
    stream.insert(stream.end(), echoFrame.begin(), echoFrame.end());
  }

  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + duration;
  net::Framer framer;
  net::Framer::Frame frame;
  constexpr std::size_t kReadChunk = 64 * 1024;
  while (std::chrono::steady_clock::now() < deadline) {
    // One pass over the stream in 64KB "reads", decoding every frame.
    for (std::size_t offset = 0; offset < stream.size();
         offset += kReadChunk) {
      std::size_t n = std::min(kReadChunk, stream.size() - offset);
      framer.append(stream.data() + offset, n);
      while (framer.next(frame) == net::Framer::Status::kFrame) {
        wire::Message message = wire::decode(frame.data, frame.size);
        (void)message;
        ++frames;
      }
    }
    bytes += stream.size();
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double fps = seconds > 0 ? static_cast<double>(frames) / seconds : 0;
  double mbps =
      seconds > 0 ? static_cast<double>(bytes) / (1e6 * seconds) : 0;

  std::printf("framing: %llu frames (%.1f MB) in %.2fs — %.0f frames/sec, "
              "%.1f MB/sec\n",
              static_cast<unsigned long long>(frames),
              static_cast<double>(bytes) / 1e6, seconds, fps, mbps);
  std::printf("{\"bench\": \"wire\", \"mode\": \"framing\", "
              "\"connections\": 1, \"frames\": %llu, \"bytes\": %llu, "
              "\"seconds\": %.3f, \"frames_per_sec\": %.0f, "
              "\"mb_per_sec\": %.1f}\n",
              static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(bytes), seconds, fps, mbps);
  return 0;
}

int runAccept(int argc, char** argv) {
  std::size_t fdLimit = raiseFdLimit();
  auto total =
      static_cast<std::size_t>(argValue(argc, argv, "--connections", 10240));
  auto wave = static_cast<std::size_t>(argValue(argc, argv, "--wave", 4096));
  // Two fds per loopback connection (client + accepted side), plus listener,
  // epoll/eventfd instances and stdio headroom.
  std::size_t waveCap = fdLimit > 256 ? (fdLimit - 256) / 2 : 64;
  wave = std::min(wave, waveCap);

  ServeStack stack;
  std::string error;
  if (!stack.server.start(&error)) {
    std::fprintf(stderr, "bench_wire --accept: %s\n", error.c_str());
    return 1;
  }

  std::size_t accepted = 0;
  std::size_t concurrentPeak = 0;
  std::size_t waves = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t done = 0; done < total; ++waves) {
    std::size_t batch = std::min(wave, total - done);
    net::CbenchClientConfig config;
    config.port = stack.server.port();
    config.connections = batch;
    config.handshakeOnly = true;
    config.firstDpid = done + 1;  // Fresh dpids: every wave attaches anew.
    config.connectTimeout = std::chrono::milliseconds(30000);
    net::CbenchClientResult result = net::runCbenchClient(config);
    accepted += result.handshaked;
    concurrentPeak = std::max(concurrentPeak, result.handshaked);
    done += batch;
    if (result.handshaked != batch) {
      std::fprintf(stderr, "bench_wire --accept: wave %zu handshaked %zu/%zu"
                   " (%s)\n", waves, result.handshaked, batch,
                   result.error.c_str());
      break;
    }
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double aps = seconds > 0 ? static_cast<double>(accepted) / seconds : 0;

  std::printf("accept: %zu switches accepted+handshaked in %.2fs across %zu "
              "wave(s) (peak %zu concurrent, fd limit %zu) — %.0f "
              "accepts/sec\n",
              accepted, seconds, waves, concurrentPeak, fdLimit, aps);
  std::printf("{\"bench\": \"wire\", \"mode\": \"accept\", "
              "\"connections\": %zu, \"accepted\": %zu, "
              "\"concurrent_peak\": %zu, \"waves\": %zu, "
              "\"seconds\": %.3f, \"accepts_per_sec\": %.0f}\n",
              total, accepted, concurrentPeak, waves, seconds, aps);
  return accepted == total ? 0 : 1;
}

int runCbench(int argc, char** argv) {
  raiseFdLimit();
  ServeStack stack;
  std::string error;
  if (!stack.server.start(&error)) {
    std::fprintf(stderr, "bench_wire --cbench: %s\n", error.c_str());
    return 1;
  }

  net::CbenchClientConfig config;
  config.port = stack.server.port();
  config.connections =
      static_cast<std::size_t>(argValue(argc, argv, "--connections", 64));
  config.rounds =
      static_cast<std::size_t>(argValue(argc, argv, "--rounds", 20));
  config.roundTimeout = std::chrono::milliseconds(5000);

  auto start = std::chrono::steady_clock::now();
  net::CbenchClientResult result = net::runCbenchClient(config);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double rps = seconds > 0
                   ? static_cast<double>(result.roundsCompleted) / seconds
                   : 0;

  std::printf("cbench: %zu/%zu handshaked, %zu rounds, %zu timeouts — "
              "median=%.1fus p90=%.1fus mean=%.1fus (%.0f responses/sec)\n",
              result.handshaked, config.connections, result.roundsCompleted,
              result.timeouts, result.medianUs(), result.p90Us(),
              result.meanUs(), rps);
  std::printf("{\"bench\": \"wire\", \"mode\": \"cbench\", "
              "\"connections\": %zu, \"rounds\": %zu, \"handshaked\": %zu, "
              "\"timeouts\": %zu, \"latency_median_us\": %.3f, "
              "\"latency_p90_us\": %.3f, \"latency_mean_us\": %.3f, "
              "\"responses_per_sec\": %.1f, \"flow_mods\": %llu}\n",
              config.connections, config.rounds, result.handshaked,
              result.timeouts, result.medianUs(), result.p90Us(),
              result.meanUs(), rps,
              static_cast<unsigned long long>(result.flowModsReceived));
  if (!result.ok) {
    std::fprintf(stderr, "bench_wire --cbench: %s\n", result.error.c_str());
  }
  return result.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argFlag(argc, argv, "--framing")) return runFraming(argc, argv);
  if (argFlag(argc, argv, "--accept")) return runAccept(argc, argv);
  if (argFlag(argc, argv, "--cbench")) return runCbench(argc, argv);
  std::fprintf(stderr,
               "usage: bench_wire --framing [--duration-ms D]\n"
               "       bench_wire --accept  [--connections N] [--wave W]\n"
               "       bench_wire --cbench  [--connections N] [--rounds R]\n");
  return 2;
}
