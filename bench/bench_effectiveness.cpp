// Table I + §IX-B.1 — effectiveness of permission enforcement. Runs the four
// proof-of-concept attack apps on (a) the original monolithic controller and
// (b) SDNShield with the Scenario-1 reconciled permissions, observing the
// attack's *actual side effect* in the simulated network / host system.
// Claim to reproduce: 4/4 attacks succeed on the baseline, 0/4 under
// SDNShield.
#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/firewall.h"
#include "apps/malicious/flow_tunneler.h"
#include "apps/malicious/info_leaker.h"
#include "apps/malicious/route_hijacker.h"
#include "apps/malicious/rst_injector.h"
#include "apps/routing.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/reconcile/reconciler.h"
#include "isolation/api_proxy.h"
#include "switchsim/sim_network.h"

namespace {

using namespace sdnshield;
using namespace std::chrono_literals;

const of::Ipv4Address kEvilIp(203, 0, 113, 66);

struct Bed {
  Bed() : network(controller) {
    network.buildLinear(3);
    h1 = network.hostByIp(of::Ipv4Address(10, 0, 0, 1));
    h2 = network.hostByIp(of::Ipv4Address(10, 0, 0, 2));
    h3 = network.hostByIp(of::Ipv4Address(10, 0, 0, 3));
  }
  ctrl::Controller controller;
  sim::SimNetwork network;
  std::shared_ptr<sim::SimHost> h1, h2, h3;
};

of::Packet httpSyn(const sim::SimHost& src, const sim::SimHost& dst,
                   std::uint16_t port = 80, std::uint16_t srcPort = 40000) {
  return of::Packet::makeTcp(src.mac(), dst.mac(), src.ip(), dst.ip(), srcPort,
                             port, of::tcpflags::kSyn);
}

/// The Scenario-1 permissions, produced by actually running the
/// reconciliation engine on the paper's manifest + policy.
perm::PermissionSet scenario1Permissions() {
  auto manifest = lang::parseManifest(
      "APP monitoring\n"
      "PERM visible_topology LIMITING LocalTopo\n"
      "PERM read_statistics\n"
      "PERM network_access LIMITING AdminRange\n"
      "PERM insert_flow\n");
  reconcile::Reconciler reconciler(lang::parsePolicy(
      "LET LocalTopo = {SWITCH 1,2,3 LINK {(1,2),(2,3)}}\n"
      "LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}\n"
      "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n"));
  return reconciler.reconcile(manifest).finalPermissions;
}

bool attackRstInjection(bool shielded) {
  Bed bed;
  auto routing = std::make_shared<apps::ShortestPathRoutingApp>();
  auto attacker = std::make_shared<apps::RstInjectorApp>(80);
  std::unique_ptr<iso::BaselineRuntime> baseline;
  std::unique_ptr<iso::ShieldRuntime> shield;
  if (shielded) {
    shield = std::make_unique<iso::ShieldRuntime>(bed.controller);
    shield->loadApp(routing,
                    lang::parsePermissions(routing->requestedManifest()));
    shield->loadApp(attacker, scenario1Permissions());
  } else {
    baseline = std::make_unique<iso::BaselineRuntime>(bed.controller);
    baseline->loadApp(routing);
    baseline->loadApp(attacker);
  }
  bed.h1->send(httpSyn(*bed.h1, *bed.h3));
  bed.h3->waitForPackets(1, 1000ms);
  bed.h1->waitForPackets(1, shielded ? 300ms : 100ms);
  for (const of::Packet& packet : bed.h1->received()) {
    if (packet.tcp && (packet.tcp->flags & of::tcpflags::kRst)) return true;
  }
  return false;
}

bool attackInfoLeak(bool shielded) {
  Bed bed;
  auto attacker = std::make_shared<apps::InfoLeakerApp>(kEvilIp);
  if (shielded) {
    iso::ShieldRuntime shield(bed.controller);
    of::AppId id = shield.loadApp(attacker, scenario1Permissions());
    shield.container(id)->postAndWait([&] { attacker->leak(); });
    return !shield.hostSystem().netMessagesTo(kEvilIp).empty();
  }
  iso::BaselineRuntime runtime(bed.controller);
  runtime.loadApp(attacker);
  attacker->leak();
  return !runtime.hostSystem().netMessagesTo(kEvilIp).empty();
}

bool attackRouteHijack(bool shielded) {
  Bed bed;
  auto routing = std::make_shared<apps::ShortestPathRoutingApp>();
  auto attacker =
      std::make_shared<apps::RouteHijackerApp>(bed.h3->ip(), bed.h2->ip());
  std::unique_ptr<iso::BaselineRuntime> baseline;
  std::unique_ptr<iso::ShieldRuntime> shield;
  if (shielded) {
    shield = std::make_unique<iso::ShieldRuntime>(bed.controller);
    shield->loadApp(routing,
                    lang::parsePermissions(routing->requestedManifest()));
    shield->loadApp(attacker, scenario1Permissions());
  } else {
    baseline = std::make_unique<iso::BaselineRuntime>(bed.controller);
    baseline->loadApp(routing);
    baseline->loadApp(attacker);
  }
  bed.h1->send(httpSyn(*bed.h1, *bed.h3));
  bed.h3->waitForPackets(1, 1000ms);
  attacker->hijack();
  bed.h1->send(httpSyn(*bed.h1, *bed.h3, 80, 40001));
  bed.h2->waitForPackets(1, shielded ? 300ms : 100ms);
  // Success = traffic destined to the victim reached the attacker's host.
  for (const of::Packet& packet : bed.h2->received()) {
    if (packet.ipv4 && packet.ipv4->dst == bed.h3->ip()) return true;
  }
  return false;
}

bool attackFlowTunnel(bool shielded) {
  Bed bed;
  auto routing = std::make_shared<apps::ShortestPathRoutingApp>();
  auto firewall = std::make_shared<apps::FirewallApp>();
  auto attacker = std::make_shared<apps::FlowTunnelerApp>(23, 80);
  std::unique_ptr<iso::BaselineRuntime> baseline;
  std::unique_ptr<iso::ShieldRuntime> shield;
  if (shielded) {
    shield = std::make_unique<iso::ShieldRuntime>(bed.controller);
    shield->loadApp(routing,
                    lang::parsePermissions(routing->requestedManifest()));
    shield->loadApp(firewall,
                    lang::parsePermissions(firewall->requestedManifest()));
    shield->loadApp(attacker, scenario1Permissions());
  } else {
    baseline = std::make_unique<iso::BaselineRuntime>(bed.controller);
    baseline->loadApp(routing);
    baseline->loadApp(firewall);
    baseline->loadApp(attacker);
  }
  firewall->blockTcpDstPort(2, 23);
  // Warm the routing path with allowed traffic.
  bed.h1->send(httpSyn(*bed.h1, *bed.h3));
  bed.h3->waitForPackets(1, 1000ms);
  std::size_t before = bed.h3->receivedCount();
  attacker->establishTunnel(bed.h1->ip(), bed.h3->ip());
  bed.h1->send(httpSyn(*bed.h1, *bed.h3, 23, 40002));
  bed.h3->waitForPackets(before + 1, shielded ? 300ms : 100ms);
  // Success = blocked telnet traffic reached the destination.
  for (const of::Packet& packet : bed.h3->received()) {
    if (packet.tcp && packet.tcp->dstPort == 23) return true;
  }
  return false;
}

const char* cell(bool protectedHere) { return protectedHere ? "yes" : "no"; }

}  // namespace

int main() {
  struct AttackRow {
    const char* name;
    bool (*run)(bool shielded);
    // Table I's qualitative columns for the two prior approaches.
    bool trafficIsolation;
    bool stateAnalysis;
  };
  const AttackRow attacks[] = {
      {"Class 1: data-plane intrusion (RST inject)", attackRstInjection,
       false, false},
      {"Class 2: information leakage", attackInfoLeak, false, false},
      {"Class 3: rule manipulation (route hijack)", attackRouteHijack, false,
       true},
      {"Class 4: attacking other apps (flow tunnel)", attackFlowTunnel, false,
       true},
  };

  std::printf("=== §IX-B.1: proof-of-concept attacks, measured ===\n");
  std::printf("%-46s %-18s %-18s\n", "attack", "baseline", "SDNShield");
  int baselineSuccesses = 0;
  int shieldedSuccesses = 0;
  bool shieldProtects[4] = {};
  for (int i = 0; i < 4; ++i) {
    bool onBaseline = attacks[i].run(false);
    bool onShield = attacks[i].run(true);
    baselineSuccesses += onBaseline;
    shieldedSuccesses += onShield;
    shieldProtects[i] = !onShield;
    std::printf("%-46s %-18s %-18s\n", attacks[i].name,
                onBaseline ? "ATTACK SUCCEEDS" : "blocked",
                onShield ? "ATTACK SUCCEEDS" : "blocked");
  }
  std::printf("\nbaseline: %d/4 attacks succeed; SDNShield: %d/4 (paper: 4/4 "
              "and 0/4)\n",
              baselineSuccesses, shieldedSuccesses);

  std::printf("\n=== Table I: attack protection coverage ===\n");
  std::printf("%-46s %-18s %-16s %-12s\n", "attack class",
              "traffic isolation", "state analysis", "SDNShield");
  for (int i = 0; i < 4; ++i) {
    std::printf("%-46s %-18s %-16s %-12s\n", attacks[i].name,
                cell(attacks[i].trafficIsolation),
                cell(attacks[i].stateAnalysis), cell(shieldProtects[i]));
  }
  std::printf("\n(traffic-isolation / state-analysis columns follow the "
              "paper's qualitative\nassessment; the SDNShield column is "
              "measured above)\n");
  return shieldedSuccesses == 0 && baselineSuccesses == 4 ? 0 : 1;
}
