# Empty compiler generated dependencies file for virtual_big_switch.
# This may be replaced when dependencies are built.
