file(REMOVE_RECURSE
  "CMakeFiles/virtual_big_switch.dir/virtual_big_switch.cpp.o"
  "CMakeFiles/virtual_big_switch.dir/virtual_big_switch.cpp.o.d"
  "virtual_big_switch"
  "virtual_big_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_big_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
