# Empty compiler generated dependencies file for malicious_routing.
# This may be replaced when dependencies are built.
