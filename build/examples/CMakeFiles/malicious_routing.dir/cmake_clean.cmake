file(REMOVE_RECURSE
  "CMakeFiles/malicious_routing.dir/malicious_routing.cpp.o"
  "CMakeFiles/malicious_routing.dir/malicious_routing.cpp.o.d"
  "malicious_routing"
  "malicious_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malicious_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
