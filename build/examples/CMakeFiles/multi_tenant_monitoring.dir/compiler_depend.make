# Empty compiler generated dependencies file for multi_tenant_monitoring.
# This may be replaced when dependencies are built.
