file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_monitoring.dir/multi_tenant_monitoring.cpp.o"
  "CMakeFiles/multi_tenant_monitoring.dir/multi_tenant_monitoring.cpp.o.d"
  "multi_tenant_monitoring"
  "multi_tenant_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
