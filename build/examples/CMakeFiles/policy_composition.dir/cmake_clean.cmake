file(REMOVE_RECURSE
  "CMakeFiles/policy_composition.dir/policy_composition.cpp.o"
  "CMakeFiles/policy_composition.dir/policy_composition.cpp.o.d"
  "policy_composition"
  "policy_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
