# Empty dependencies file for policy_composition.
# This may be replaced when dependencies are built.
