file(REMOVE_RECURSE
  "CMakeFiles/sdns_reconcile.dir/core/reconcile/policy_templates.cpp.o"
  "CMakeFiles/sdns_reconcile.dir/core/reconcile/policy_templates.cpp.o.d"
  "CMakeFiles/sdns_reconcile.dir/core/reconcile/reconciler.cpp.o"
  "CMakeFiles/sdns_reconcile.dir/core/reconcile/reconciler.cpp.o.d"
  "libsdns_reconcile.a"
  "libsdns_reconcile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
