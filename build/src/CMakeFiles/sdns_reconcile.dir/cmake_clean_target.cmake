file(REMOVE_RECURSE
  "libsdns_reconcile.a"
)
