# Empty dependencies file for sdns_reconcile.
# This may be replaced when dependencies are built.
