file(REMOVE_RECURSE
  "CMakeFiles/sdns_engine.dir/core/engine/audit.cpp.o"
  "CMakeFiles/sdns_engine.dir/core/engine/audit.cpp.o.d"
  "CMakeFiles/sdns_engine.dir/core/engine/ownership.cpp.o"
  "CMakeFiles/sdns_engine.dir/core/engine/ownership.cpp.o.d"
  "CMakeFiles/sdns_engine.dir/core/engine/permission_engine.cpp.o"
  "CMakeFiles/sdns_engine.dir/core/engine/permission_engine.cpp.o.d"
  "CMakeFiles/sdns_engine.dir/core/engine/transaction.cpp.o"
  "CMakeFiles/sdns_engine.dir/core/engine/transaction.cpp.o.d"
  "libsdns_engine.a"
  "libsdns_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
