# Empty dependencies file for sdns_engine.
# This may be replaced when dependencies are built.
