file(REMOVE_RECURSE
  "libsdns_engine.a"
)
