
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine/audit.cpp" "src/CMakeFiles/sdns_engine.dir/core/engine/audit.cpp.o" "gcc" "src/CMakeFiles/sdns_engine.dir/core/engine/audit.cpp.o.d"
  "/root/repo/src/core/engine/ownership.cpp" "src/CMakeFiles/sdns_engine.dir/core/engine/ownership.cpp.o" "gcc" "src/CMakeFiles/sdns_engine.dir/core/engine/ownership.cpp.o.d"
  "/root/repo/src/core/engine/permission_engine.cpp" "src/CMakeFiles/sdns_engine.dir/core/engine/permission_engine.cpp.o" "gcc" "src/CMakeFiles/sdns_engine.dir/core/engine/permission_engine.cpp.o.d"
  "/root/repo/src/core/engine/transaction.cpp" "src/CMakeFiles/sdns_engine.dir/core/engine/transaction.cpp.o" "gcc" "src/CMakeFiles/sdns_engine.dir/core/engine/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdns_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_of.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
