# Empty compiler generated dependencies file for sdns_cbench.
# This may be replaced when dependencies are built.
