file(REMOVE_RECURSE
  "CMakeFiles/sdns_cbench.dir/cbench/generator.cpp.o"
  "CMakeFiles/sdns_cbench.dir/cbench/generator.cpp.o.d"
  "libsdns_cbench.a"
  "libsdns_cbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_cbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
