file(REMOVE_RECURSE
  "libsdns_cbench.a"
)
