# Empty compiler generated dependencies file for sdns_isolation.
# This may be replaced when dependencies are built.
