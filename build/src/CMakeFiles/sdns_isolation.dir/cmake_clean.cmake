file(REMOVE_RECURSE
  "CMakeFiles/sdns_isolation.dir/isolation/api_proxy.cpp.o"
  "CMakeFiles/sdns_isolation.dir/isolation/api_proxy.cpp.o.d"
  "CMakeFiles/sdns_isolation.dir/isolation/host_system.cpp.o"
  "CMakeFiles/sdns_isolation.dir/isolation/host_system.cpp.o.d"
  "CMakeFiles/sdns_isolation.dir/isolation/ksd.cpp.o"
  "CMakeFiles/sdns_isolation.dir/isolation/ksd.cpp.o.d"
  "CMakeFiles/sdns_isolation.dir/isolation/reference_monitor.cpp.o"
  "CMakeFiles/sdns_isolation.dir/isolation/reference_monitor.cpp.o.d"
  "CMakeFiles/sdns_isolation.dir/isolation/thread_container.cpp.o"
  "CMakeFiles/sdns_isolation.dir/isolation/thread_container.cpp.o.d"
  "libsdns_isolation.a"
  "libsdns_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
