file(REMOVE_RECURSE
  "libsdns_isolation.a"
)
