
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isolation/api_proxy.cpp" "src/CMakeFiles/sdns_isolation.dir/isolation/api_proxy.cpp.o" "gcc" "src/CMakeFiles/sdns_isolation.dir/isolation/api_proxy.cpp.o.d"
  "/root/repo/src/isolation/host_system.cpp" "src/CMakeFiles/sdns_isolation.dir/isolation/host_system.cpp.o" "gcc" "src/CMakeFiles/sdns_isolation.dir/isolation/host_system.cpp.o.d"
  "/root/repo/src/isolation/ksd.cpp" "src/CMakeFiles/sdns_isolation.dir/isolation/ksd.cpp.o" "gcc" "src/CMakeFiles/sdns_isolation.dir/isolation/ksd.cpp.o.d"
  "/root/repo/src/isolation/reference_monitor.cpp" "src/CMakeFiles/sdns_isolation.dir/isolation/reference_monitor.cpp.o" "gcc" "src/CMakeFiles/sdns_isolation.dir/isolation/reference_monitor.cpp.o.d"
  "/root/repo/src/isolation/thread_container.cpp" "src/CMakeFiles/sdns_isolation.dir/isolation/thread_container.cpp.o" "gcc" "src/CMakeFiles/sdns_isolation.dir/isolation/thread_container.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdns_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_of.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
