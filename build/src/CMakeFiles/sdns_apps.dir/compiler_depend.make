# Empty compiler generated dependencies file for sdns_apps.
# This may be replaced when dependencies are built.
