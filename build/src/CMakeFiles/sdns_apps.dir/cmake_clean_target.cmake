file(REMOVE_RECURSE
  "libsdns_apps.a"
)
