
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/alto.cpp" "src/CMakeFiles/sdns_apps.dir/apps/alto.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/alto.cpp.o.d"
  "/root/repo/src/apps/firewall.cpp" "src/CMakeFiles/sdns_apps.dir/apps/firewall.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/firewall.cpp.o.d"
  "/root/repo/src/apps/l2_learning.cpp" "src/CMakeFiles/sdns_apps.dir/apps/l2_learning.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/l2_learning.cpp.o.d"
  "/root/repo/src/apps/malicious/flow_tunneler.cpp" "src/CMakeFiles/sdns_apps.dir/apps/malicious/flow_tunneler.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/malicious/flow_tunneler.cpp.o.d"
  "/root/repo/src/apps/malicious/info_leaker.cpp" "src/CMakeFiles/sdns_apps.dir/apps/malicious/info_leaker.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/malicious/info_leaker.cpp.o.d"
  "/root/repo/src/apps/malicious/route_hijacker.cpp" "src/CMakeFiles/sdns_apps.dir/apps/malicious/route_hijacker.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/malicious/route_hijacker.cpp.o.d"
  "/root/repo/src/apps/malicious/rst_injector.cpp" "src/CMakeFiles/sdns_apps.dir/apps/malicious/rst_injector.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/malicious/rst_injector.cpp.o.d"
  "/root/repo/src/apps/monitoring.cpp" "src/CMakeFiles/sdns_apps.dir/apps/monitoring.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/monitoring.cpp.o.d"
  "/root/repo/src/apps/routing.cpp" "src/CMakeFiles/sdns_apps.dir/apps/routing.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/routing.cpp.o.d"
  "/root/repo/src/apps/traffic_engineering.cpp" "src/CMakeFiles/sdns_apps.dir/apps/traffic_engineering.cpp.o" "gcc" "src/CMakeFiles/sdns_apps.dir/apps/traffic_engineering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdns_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_isolation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_of.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
