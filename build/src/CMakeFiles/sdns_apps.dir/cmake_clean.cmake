file(REMOVE_RECURSE
  "CMakeFiles/sdns_apps.dir/apps/alto.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/alto.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/firewall.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/firewall.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/l2_learning.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/l2_learning.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/malicious/flow_tunneler.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/malicious/flow_tunneler.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/malicious/info_leaker.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/malicious/info_leaker.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/malicious/route_hijacker.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/malicious/route_hijacker.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/malicious/rst_injector.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/malicious/rst_injector.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/monitoring.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/monitoring.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/routing.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/routing.cpp.o.d"
  "CMakeFiles/sdns_apps.dir/apps/traffic_engineering.cpp.o"
  "CMakeFiles/sdns_apps.dir/apps/traffic_engineering.cpp.o.d"
  "libsdns_apps.a"
  "libsdns_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
