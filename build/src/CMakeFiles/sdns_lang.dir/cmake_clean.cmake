file(REMOVE_RECURSE
  "CMakeFiles/sdns_lang.dir/core/lang/lexer.cpp.o"
  "CMakeFiles/sdns_lang.dir/core/lang/lexer.cpp.o.d"
  "CMakeFiles/sdns_lang.dir/core/lang/perm_parser.cpp.o"
  "CMakeFiles/sdns_lang.dir/core/lang/perm_parser.cpp.o.d"
  "CMakeFiles/sdns_lang.dir/core/lang/policy_parser.cpp.o"
  "CMakeFiles/sdns_lang.dir/core/lang/policy_parser.cpp.o.d"
  "CMakeFiles/sdns_lang.dir/core/lang/printer.cpp.o"
  "CMakeFiles/sdns_lang.dir/core/lang/printer.cpp.o.d"
  "libsdns_lang.a"
  "libsdns_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
