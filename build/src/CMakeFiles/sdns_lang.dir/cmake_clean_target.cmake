file(REMOVE_RECURSE
  "libsdns_lang.a"
)
