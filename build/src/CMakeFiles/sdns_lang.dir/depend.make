# Empty dependencies file for sdns_lang.
# This may be replaced when dependencies are built.
