
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/lang/lexer.cpp" "src/CMakeFiles/sdns_lang.dir/core/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/sdns_lang.dir/core/lang/lexer.cpp.o.d"
  "/root/repo/src/core/lang/perm_parser.cpp" "src/CMakeFiles/sdns_lang.dir/core/lang/perm_parser.cpp.o" "gcc" "src/CMakeFiles/sdns_lang.dir/core/lang/perm_parser.cpp.o.d"
  "/root/repo/src/core/lang/policy_parser.cpp" "src/CMakeFiles/sdns_lang.dir/core/lang/policy_parser.cpp.o" "gcc" "src/CMakeFiles/sdns_lang.dir/core/lang/policy_parser.cpp.o.d"
  "/root/repo/src/core/lang/printer.cpp" "src/CMakeFiles/sdns_lang.dir/core/lang/printer.cpp.o" "gcc" "src/CMakeFiles/sdns_lang.dir/core/lang/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdns_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_of.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
