
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/perm/api_call.cpp" "src/CMakeFiles/sdns_perm.dir/core/perm/api_call.cpp.o" "gcc" "src/CMakeFiles/sdns_perm.dir/core/perm/api_call.cpp.o.d"
  "/root/repo/src/core/perm/filter.cpp" "src/CMakeFiles/sdns_perm.dir/core/perm/filter.cpp.o" "gcc" "src/CMakeFiles/sdns_perm.dir/core/perm/filter.cpp.o.d"
  "/root/repo/src/core/perm/filter_expr.cpp" "src/CMakeFiles/sdns_perm.dir/core/perm/filter_expr.cpp.o" "gcc" "src/CMakeFiles/sdns_perm.dir/core/perm/filter_expr.cpp.o.d"
  "/root/repo/src/core/perm/normal_form.cpp" "src/CMakeFiles/sdns_perm.dir/core/perm/normal_form.cpp.o" "gcc" "src/CMakeFiles/sdns_perm.dir/core/perm/normal_form.cpp.o.d"
  "/root/repo/src/core/perm/permission.cpp" "src/CMakeFiles/sdns_perm.dir/core/perm/permission.cpp.o" "gcc" "src/CMakeFiles/sdns_perm.dir/core/perm/permission.cpp.o.d"
  "/root/repo/src/core/perm/token.cpp" "src/CMakeFiles/sdns_perm.dir/core/perm/token.cpp.o" "gcc" "src/CMakeFiles/sdns_perm.dir/core/perm/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdns_of.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
