# Empty dependencies file for sdns_perm.
# This may be replaced when dependencies are built.
