file(REMOVE_RECURSE
  "CMakeFiles/sdns_perm.dir/core/perm/api_call.cpp.o"
  "CMakeFiles/sdns_perm.dir/core/perm/api_call.cpp.o.d"
  "CMakeFiles/sdns_perm.dir/core/perm/filter.cpp.o"
  "CMakeFiles/sdns_perm.dir/core/perm/filter.cpp.o.d"
  "CMakeFiles/sdns_perm.dir/core/perm/filter_expr.cpp.o"
  "CMakeFiles/sdns_perm.dir/core/perm/filter_expr.cpp.o.d"
  "CMakeFiles/sdns_perm.dir/core/perm/normal_form.cpp.o"
  "CMakeFiles/sdns_perm.dir/core/perm/normal_form.cpp.o.d"
  "CMakeFiles/sdns_perm.dir/core/perm/permission.cpp.o"
  "CMakeFiles/sdns_perm.dir/core/perm/permission.cpp.o.d"
  "CMakeFiles/sdns_perm.dir/core/perm/token.cpp.o"
  "CMakeFiles/sdns_perm.dir/core/perm/token.cpp.o.d"
  "libsdns_perm.a"
  "libsdns_perm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_perm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
