file(REMOVE_RECURSE
  "libsdns_perm.a"
)
