file(REMOVE_RECURSE
  "CMakeFiles/sdns_controller.dir/controller/controller.cpp.o"
  "CMakeFiles/sdns_controller.dir/controller/controller.cpp.o.d"
  "CMakeFiles/sdns_controller.dir/controller/data_store.cpp.o"
  "CMakeFiles/sdns_controller.dir/controller/data_store.cpp.o.d"
  "CMakeFiles/sdns_controller.dir/controller/event.cpp.o"
  "CMakeFiles/sdns_controller.dir/controller/event.cpp.o.d"
  "CMakeFiles/sdns_controller.dir/controller/manifest_recorder.cpp.o"
  "CMakeFiles/sdns_controller.dir/controller/manifest_recorder.cpp.o.d"
  "CMakeFiles/sdns_controller.dir/controller/services.cpp.o"
  "CMakeFiles/sdns_controller.dir/controller/services.cpp.o.d"
  "libsdns_controller.a"
  "libsdns_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
