
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/controller.cpp" "src/CMakeFiles/sdns_controller.dir/controller/controller.cpp.o" "gcc" "src/CMakeFiles/sdns_controller.dir/controller/controller.cpp.o.d"
  "/root/repo/src/controller/data_store.cpp" "src/CMakeFiles/sdns_controller.dir/controller/data_store.cpp.o" "gcc" "src/CMakeFiles/sdns_controller.dir/controller/data_store.cpp.o.d"
  "/root/repo/src/controller/event.cpp" "src/CMakeFiles/sdns_controller.dir/controller/event.cpp.o" "gcc" "src/CMakeFiles/sdns_controller.dir/controller/event.cpp.o.d"
  "/root/repo/src/controller/manifest_recorder.cpp" "src/CMakeFiles/sdns_controller.dir/controller/manifest_recorder.cpp.o" "gcc" "src/CMakeFiles/sdns_controller.dir/controller/manifest_recorder.cpp.o.d"
  "/root/repo/src/controller/services.cpp" "src/CMakeFiles/sdns_controller.dir/controller/services.cpp.o" "gcc" "src/CMakeFiles/sdns_controller.dir/controller/services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdns_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_of.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
