file(REMOVE_RECURSE
  "libsdns_controller.a"
)
