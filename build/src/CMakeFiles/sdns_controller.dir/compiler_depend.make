# Empty compiler generated dependencies file for sdns_controller.
# This may be replaced when dependencies are built.
