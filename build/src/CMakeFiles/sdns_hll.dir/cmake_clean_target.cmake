file(REMOVE_RECURSE
  "libsdns_hll.a"
)
