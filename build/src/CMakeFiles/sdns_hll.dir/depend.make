# Empty dependencies file for sdns_hll.
# This may be replaced when dependencies are built.
