file(REMOVE_RECURSE
  "CMakeFiles/sdns_hll.dir/hll/install.cpp.o"
  "CMakeFiles/sdns_hll.dir/hll/install.cpp.o.d"
  "CMakeFiles/sdns_hll.dir/hll/policy.cpp.o"
  "CMakeFiles/sdns_hll.dir/hll/policy.cpp.o.d"
  "libsdns_hll.a"
  "libsdns_hll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_hll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
