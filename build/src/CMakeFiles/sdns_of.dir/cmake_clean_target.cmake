file(REMOVE_RECURSE
  "libsdns_of.a"
)
