
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/of/actions.cpp" "src/CMakeFiles/sdns_of.dir/of/actions.cpp.o" "gcc" "src/CMakeFiles/sdns_of.dir/of/actions.cpp.o.d"
  "/root/repo/src/of/flow_table.cpp" "src/CMakeFiles/sdns_of.dir/of/flow_table.cpp.o" "gcc" "src/CMakeFiles/sdns_of.dir/of/flow_table.cpp.o.d"
  "/root/repo/src/of/match.cpp" "src/CMakeFiles/sdns_of.dir/of/match.cpp.o" "gcc" "src/CMakeFiles/sdns_of.dir/of/match.cpp.o.d"
  "/root/repo/src/of/packet.cpp" "src/CMakeFiles/sdns_of.dir/of/packet.cpp.o" "gcc" "src/CMakeFiles/sdns_of.dir/of/packet.cpp.o.d"
  "/root/repo/src/of/types.cpp" "src/CMakeFiles/sdns_of.dir/of/types.cpp.o" "gcc" "src/CMakeFiles/sdns_of.dir/of/types.cpp.o.d"
  "/root/repo/src/of/wire.cpp" "src/CMakeFiles/sdns_of.dir/of/wire.cpp.o" "gcc" "src/CMakeFiles/sdns_of.dir/of/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
