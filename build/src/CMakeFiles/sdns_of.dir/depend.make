# Empty dependencies file for sdns_of.
# This may be replaced when dependencies are built.
