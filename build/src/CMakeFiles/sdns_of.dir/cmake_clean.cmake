file(REMOVE_RECURSE
  "CMakeFiles/sdns_of.dir/of/actions.cpp.o"
  "CMakeFiles/sdns_of.dir/of/actions.cpp.o.d"
  "CMakeFiles/sdns_of.dir/of/flow_table.cpp.o"
  "CMakeFiles/sdns_of.dir/of/flow_table.cpp.o.d"
  "CMakeFiles/sdns_of.dir/of/match.cpp.o"
  "CMakeFiles/sdns_of.dir/of/match.cpp.o.d"
  "CMakeFiles/sdns_of.dir/of/packet.cpp.o"
  "CMakeFiles/sdns_of.dir/of/packet.cpp.o.d"
  "CMakeFiles/sdns_of.dir/of/types.cpp.o"
  "CMakeFiles/sdns_of.dir/of/types.cpp.o.d"
  "CMakeFiles/sdns_of.dir/of/wire.cpp.o"
  "CMakeFiles/sdns_of.dir/of/wire.cpp.o.d"
  "libsdns_of.a"
  "libsdns_of.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_of.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
