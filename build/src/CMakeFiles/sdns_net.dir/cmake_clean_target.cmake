file(REMOVE_RECURSE
  "libsdns_net.a"
)
