file(REMOVE_RECURSE
  "CMakeFiles/sdns_net.dir/net/topology.cpp.o"
  "CMakeFiles/sdns_net.dir/net/topology.cpp.o.d"
  "CMakeFiles/sdns_net.dir/net/virtual_topology.cpp.o"
  "CMakeFiles/sdns_net.dir/net/virtual_topology.cpp.o.d"
  "libsdns_net.a"
  "libsdns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
