# Empty compiler generated dependencies file for sdns_net.
# This may be replaced when dependencies are built.
