file(REMOVE_RECURSE
  "CMakeFiles/sdns_switchsim.dir/switchsim/sim_network.cpp.o"
  "CMakeFiles/sdns_switchsim.dir/switchsim/sim_network.cpp.o.d"
  "CMakeFiles/sdns_switchsim.dir/switchsim/sim_switch.cpp.o"
  "CMakeFiles/sdns_switchsim.dir/switchsim/sim_switch.cpp.o.d"
  "CMakeFiles/sdns_switchsim.dir/switchsim/wire_conn.cpp.o"
  "CMakeFiles/sdns_switchsim.dir/switchsim/wire_conn.cpp.o.d"
  "libsdns_switchsim.a"
  "libsdns_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdns_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
