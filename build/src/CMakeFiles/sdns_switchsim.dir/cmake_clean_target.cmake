file(REMOVE_RECURSE
  "libsdns_switchsim.a"
)
