# Empty compiler generated dependencies file for sdns_switchsim.
# This may be replaced when dependencies are built.
