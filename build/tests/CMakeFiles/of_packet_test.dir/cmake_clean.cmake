file(REMOVE_RECURSE
  "CMakeFiles/of_packet_test.dir/of_packet_test.cpp.o"
  "CMakeFiles/of_packet_test.dir/of_packet_test.cpp.o.d"
  "of_packet_test"
  "of_packet_test.pdb"
  "of_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/of_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
