# Empty compiler generated dependencies file for of_packet_test.
# This may be replaced when dependencies are built.
