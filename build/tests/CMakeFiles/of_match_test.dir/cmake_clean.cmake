file(REMOVE_RECURSE
  "CMakeFiles/of_match_test.dir/of_match_test.cpp.o"
  "CMakeFiles/of_match_test.dir/of_match_test.cpp.o.d"
  "of_match_test"
  "of_match_test.pdb"
  "of_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/of_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
