# Empty dependencies file for of_match_test.
# This may be replaced when dependencies are built.
