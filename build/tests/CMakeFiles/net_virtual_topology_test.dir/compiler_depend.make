# Empty compiler generated dependencies file for net_virtual_topology_test.
# This may be replaced when dependencies are built.
