file(REMOVE_RECURSE
  "CMakeFiles/of_types_test.dir/of_types_test.cpp.o"
  "CMakeFiles/of_types_test.dir/of_types_test.cpp.o.d"
  "of_types_test"
  "of_types_test.pdb"
  "of_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/of_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
