# Empty dependencies file for of_types_test.
# This may be replaced when dependencies are built.
