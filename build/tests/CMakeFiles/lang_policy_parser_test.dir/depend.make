# Empty dependencies file for lang_policy_parser_test.
# This may be replaced when dependencies are built.
