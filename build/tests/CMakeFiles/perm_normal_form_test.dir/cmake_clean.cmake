file(REMOVE_RECURSE
  "CMakeFiles/perm_normal_form_test.dir/perm_normal_form_test.cpp.o"
  "CMakeFiles/perm_normal_form_test.dir/perm_normal_form_test.cpp.o.d"
  "perm_normal_form_test"
  "perm_normal_form_test.pdb"
  "perm_normal_form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perm_normal_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
