# Empty dependencies file for perm_normal_form_test.
# This may be replaced when dependencies are built.
