file(REMOVE_RECURSE
  "CMakeFiles/perm_permission_test.dir/perm_permission_test.cpp.o"
  "CMakeFiles/perm_permission_test.dir/perm_permission_test.cpp.o.d"
  "perm_permission_test"
  "perm_permission_test.pdb"
  "perm_permission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perm_permission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
