# Empty compiler generated dependencies file for perm_permission_test.
# This may be replaced when dependencies are built.
