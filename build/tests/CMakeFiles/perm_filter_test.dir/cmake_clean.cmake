file(REMOVE_RECURSE
  "CMakeFiles/perm_filter_test.dir/perm_filter_test.cpp.o"
  "CMakeFiles/perm_filter_test.dir/perm_filter_test.cpp.o.d"
  "perm_filter_test"
  "perm_filter_test.pdb"
  "perm_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perm_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
