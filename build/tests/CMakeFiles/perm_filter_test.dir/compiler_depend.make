# Empty compiler generated dependencies file for perm_filter_test.
# This may be replaced when dependencies are built.
