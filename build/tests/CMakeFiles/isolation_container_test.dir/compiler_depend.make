# Empty compiler generated dependencies file for isolation_container_test.
# This may be replaced when dependencies are built.
