file(REMOVE_RECURSE
  "CMakeFiles/isolation_container_test.dir/isolation_container_test.cpp.o"
  "CMakeFiles/isolation_container_test.dir/isolation_container_test.cpp.o.d"
  "isolation_container_test"
  "isolation_container_test.pdb"
  "isolation_container_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
