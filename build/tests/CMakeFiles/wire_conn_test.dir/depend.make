# Empty dependencies file for wire_conn_test.
# This may be replaced when dependencies are built.
