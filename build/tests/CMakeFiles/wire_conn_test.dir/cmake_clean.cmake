file(REMOVE_RECURSE
  "CMakeFiles/wire_conn_test.dir/wire_conn_test.cpp.o"
  "CMakeFiles/wire_conn_test.dir/wire_conn_test.cpp.o.d"
  "wire_conn_test"
  "wire_conn_test.pdb"
  "wire_conn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_conn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
