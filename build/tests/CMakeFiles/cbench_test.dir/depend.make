# Empty dependencies file for cbench_test.
# This may be replaced when dependencies are built.
