file(REMOVE_RECURSE
  "CMakeFiles/cbench_test.dir/cbench_test.cpp.o"
  "CMakeFiles/cbench_test.dir/cbench_test.cpp.o.d"
  "cbench_test"
  "cbench_test.pdb"
  "cbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
