file(REMOVE_RECURSE
  "CMakeFiles/perm_expr_test.dir/perm_expr_test.cpp.o"
  "CMakeFiles/perm_expr_test.dir/perm_expr_test.cpp.o.d"
  "perm_expr_test"
  "perm_expr_test.pdb"
  "perm_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perm_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
