file(REMOVE_RECURSE
  "CMakeFiles/of_flow_table_test.dir/of_flow_table_test.cpp.o"
  "CMakeFiles/of_flow_table_test.dir/of_flow_table_test.cpp.o.d"
  "of_flow_table_test"
  "of_flow_table_test.pdb"
  "of_flow_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/of_flow_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
