# Empty dependencies file for of_flow_table_test.
# This may be replaced when dependencies are built.
