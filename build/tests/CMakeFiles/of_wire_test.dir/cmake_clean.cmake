file(REMOVE_RECURSE
  "CMakeFiles/of_wire_test.dir/of_wire_test.cpp.o"
  "CMakeFiles/of_wire_test.dir/of_wire_test.cpp.o.d"
  "of_wire_test"
  "of_wire_test.pdb"
  "of_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/of_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
