# Empty compiler generated dependencies file for of_wire_test.
# This may be replaced when dependencies are built.
