# Empty compiler generated dependencies file for isolation_channel_test.
# This may be replaced when dependencies are built.
