file(REMOVE_RECURSE
  "CMakeFiles/isolation_channel_test.dir/isolation_channel_test.cpp.o"
  "CMakeFiles/isolation_channel_test.dir/isolation_channel_test.cpp.o.d"
  "isolation_channel_test"
  "isolation_channel_test.pdb"
  "isolation_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
