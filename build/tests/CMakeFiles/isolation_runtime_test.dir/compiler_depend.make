# Empty compiler generated dependencies file for isolation_runtime_test.
# This may be replaced when dependencies are built.
