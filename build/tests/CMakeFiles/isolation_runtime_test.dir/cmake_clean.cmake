file(REMOVE_RECURSE
  "CMakeFiles/isolation_runtime_test.dir/isolation_runtime_test.cpp.o"
  "CMakeFiles/isolation_runtime_test.dir/isolation_runtime_test.cpp.o.d"
  "isolation_runtime_test"
  "isolation_runtime_test.pdb"
  "isolation_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
