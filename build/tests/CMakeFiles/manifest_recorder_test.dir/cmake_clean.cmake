file(REMOVE_RECURSE
  "CMakeFiles/manifest_recorder_test.dir/manifest_recorder_test.cpp.o"
  "CMakeFiles/manifest_recorder_test.dir/manifest_recorder_test.cpp.o.d"
  "manifest_recorder_test"
  "manifest_recorder_test.pdb"
  "manifest_recorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manifest_recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
