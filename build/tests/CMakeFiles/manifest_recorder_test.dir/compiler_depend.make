# Empty compiler generated dependencies file for manifest_recorder_test.
# This may be replaced when dependencies are built.
