file(REMOVE_RECURSE
  "CMakeFiles/policy_templates_test.dir/policy_templates_test.cpp.o"
  "CMakeFiles/policy_templates_test.dir/policy_templates_test.cpp.o.d"
  "policy_templates_test"
  "policy_templates_test.pdb"
  "policy_templates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_templates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
