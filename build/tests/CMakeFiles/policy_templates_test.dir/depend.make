# Empty dependencies file for policy_templates_test.
# This may be replaced when dependencies are built.
