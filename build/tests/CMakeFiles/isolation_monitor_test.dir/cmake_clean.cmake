file(REMOVE_RECURSE
  "CMakeFiles/isolation_monitor_test.dir/isolation_monitor_test.cpp.o"
  "CMakeFiles/isolation_monitor_test.dir/isolation_monitor_test.cpp.o.d"
  "isolation_monitor_test"
  "isolation_monitor_test.pdb"
  "isolation_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
