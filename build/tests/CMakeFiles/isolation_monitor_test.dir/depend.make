# Empty dependencies file for isolation_monitor_test.
# This may be replaced when dependencies are built.
