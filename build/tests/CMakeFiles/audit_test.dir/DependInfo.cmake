
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/audit_test.cpp" "tests/CMakeFiles/audit_test.dir/audit_test.cpp.o" "gcc" "tests/CMakeFiles/audit_test.dir/audit_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdns_reconcile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_cbench.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_isolation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_hll.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdns_of.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
