file(REMOVE_RECURSE
  "CMakeFiles/ownership_test.dir/ownership_test.cpp.o"
  "CMakeFiles/ownership_test.dir/ownership_test.cpp.o.d"
  "ownership_test"
  "ownership_test.pdb"
  "ownership_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ownership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
