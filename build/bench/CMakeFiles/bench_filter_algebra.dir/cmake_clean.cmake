file(REMOVE_RECURSE
  "CMakeFiles/bench_filter_algebra.dir/bench_filter_algebra.cpp.o"
  "CMakeFiles/bench_filter_algebra.dir/bench_filter_algebra.cpp.o.d"
  "bench_filter_algebra"
  "bench_filter_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
