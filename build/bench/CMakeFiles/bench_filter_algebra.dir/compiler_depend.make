# Empty compiler generated dependencies file for bench_filter_algebra.
# This may be replaced when dependencies are built.
