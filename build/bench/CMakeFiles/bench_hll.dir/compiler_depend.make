# Empty compiler generated dependencies file for bench_hll.
# This may be replaced when dependencies are built.
