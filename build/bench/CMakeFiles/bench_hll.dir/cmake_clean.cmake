file(REMOVE_RECURSE
  "CMakeFiles/bench_hll.dir/bench_hll.cpp.o"
  "CMakeFiles/bench_hll.dir/bench_hll.cpp.o.d"
  "bench_hll"
  "bench_hll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
