# Empty compiler generated dependencies file for bench_effectiveness.
# This may be replaced when dependencies are built.
