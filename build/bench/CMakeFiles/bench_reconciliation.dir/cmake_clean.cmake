file(REMOVE_RECURSE
  "CMakeFiles/bench_reconciliation.dir/bench_reconciliation.cpp.o"
  "CMakeFiles/bench_reconciliation.dir/bench_reconciliation.cpp.o.d"
  "bench_reconciliation"
  "bench_reconciliation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconciliation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
