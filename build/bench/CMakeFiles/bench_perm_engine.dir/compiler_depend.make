# Empty compiler generated dependencies file for bench_perm_engine.
# This may be replaced when dependencies are built.
