file(REMOVE_RECURSE
  "CMakeFiles/bench_perm_engine.dir/bench_perm_engine.cpp.o"
  "CMakeFiles/bench_perm_engine.dir/bench_perm_engine.cpp.o.d"
  "bench_perm_engine"
  "bench_perm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
